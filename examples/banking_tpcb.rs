//! TPC-B banking workload under DORA, with a consistency audit at the end:
//! after any number of concurrent account updates the branch, teller and
//! account balance totals must agree — the ACID property the paper insists
//! DORA preserves while bypassing the centralized lock manager.
//!
//! ```text
//! cargo run --release --example banking_tpcb
//! ```

use std::sync::Arc;
use std::time::Duration;

use dora_repro::common::config::num_cpus;
use dora_repro::common::prelude::*;
use dora_repro::engine::{build_engine, ClientDriver, DriverConfig};
use dora_repro::storage::Database;
use dora_repro::workloads::{TpcB, Workload};

fn main() {
    let branches = 50;
    let db = Database::new(SystemConfig::default());
    let workload: Arc<dyn Workload> = Arc::new(TpcB::new(branches));
    workload.setup(&db).expect("load TPC-B");
    println!("loaded TPC-B with {branches} branches");

    // The engine is built and bound through the unified ExecutionEngine
    // seam; swap EngineKind::Dora for any registered architecture and the
    // rest of the example is unchanged.
    let engine = build_engine(EngineKind::Dora, Arc::clone(&db));
    engine
        .bind(Arc::clone(&workload), (num_cpus() / 4).max(2))
        .expect("bind");

    let driver = ClientDriver::new(DriverConfig {
        clients: num_cpus(),
        duration: Duration::from_secs(1),
        warmup: Duration::from_millis(100),
        hardware_contexts: num_cpus(),
    });
    let result = driver.run_engine(Arc::clone(&engine));
    println!(
        "{} executed {} account updates ({:.0} tps)",
        engine.name(),
        result.committed,
        result.throughput_tps
    );

    // Consistency audit.
    let check = db.begin();
    let mut branch_total = 0.0;
    let mut teller_total = 0.0;
    let mut account_total = 0.0;
    db.scan_table(
        &check,
        db.table_id("branch").unwrap(),
        CcMode::Full,
        |_, row| {
            branch_total += row[1].as_float().unwrap();
        },
    )
    .unwrap();
    db.scan_table(
        &check,
        db.table_id("teller").unwrap(),
        CcMode::Full,
        |_, row| {
            teller_total += row[2].as_float().unwrap();
        },
    )
    .unwrap();
    db.scan_table(
        &check,
        db.table_id("account").unwrap(),
        CcMode::Full,
        |_, row| {
            account_total += row[2].as_float().unwrap();
        },
    )
    .unwrap();
    db.commit(&check).unwrap();
    println!("audit: branches {branch_total:.2} | tellers {teller_total:.2} | accounts {account_total:.2}");
    assert!(
        (branch_total - teller_total).abs() < 1e-3,
        "teller totals diverged"
    );
    assert!(
        (branch_total - account_total).abs() < 1e-3,
        "account totals diverged"
    );
    println!("ACID audit passed: all three totals agree");
    engine.shutdown();
}
