//! Run-time load balancing (Appendix A.2.1): skew the load towards a few
//! subscribers, let the resource manager detect the imbalance and move the
//! routing-rule boundaries, and keep executing throughout.
//!
//! ```text
//! cargo run --release --example load_rebalance
//! ```

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine, ResourceManager};
use dora_repro::storage::Database;
use dora_repro::workloads::{Tm1, Tm1Mix, Workload};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

fn main() {
    let subscribers = 10_000i64;
    let db = Database::new(SystemConfig::default());
    let workload = Tm1::new(subscribers).with_mix(Tm1Mix::GetSubscriberDataOnly);
    workload.setup(&db).expect("load TM1");

    let dora = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::default()));
    workload.bind_dora(&dora, 4).expect("bind");
    let subscriber_table = db.table_id("subscriber").unwrap();
    println!(
        "initial rule: {:?}",
        dora.routing().rule(subscriber_table).unwrap()
    );

    // Hammer the low end of the key space: executor 0 gets almost all work.
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..2_000 {
        let graph = workload
            .get_subscriber_data_program(&db, 1 + (rng.next_u64() % 500) as i64)
            .expect("program")
            .compile_dora();
        dora.execute(graph).expect("probe");
    }
    println!(
        "executor loads after skewed phase: {:?}",
        dora.executor_loads(subscriber_table).unwrap()
    );

    // Let the resource manager react.
    let manager = ResourceManager::new(DoraConfig::default());
    let rebalanced = manager
        .rebalance_if_skewed(&dora, subscriber_table, 1, subscribers)
        .expect("rebalance");
    println!("rebalanced: {rebalanced}");
    println!(
        "new rule: {:?}",
        dora.routing().rule(subscriber_table).unwrap()
    );

    // Work continues under the new rule.
    for s_id in [10i64, 5_000, 9_999] {
        let graph = workload
            .get_subscriber_data_program(&db, s_id)
            .expect("program")
            .compile_dora();
        dora.execute(graph).expect("probe after rebalance");
    }
    println!(
        "probes after the rebalance succeeded; executor loads: {:?}",
        dora.executor_loads(subscriber_table).unwrap()
    );
    dora.shutdown();
}
