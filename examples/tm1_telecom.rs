//! TM1 (TATP) telecom workload: drive both engines with a multi-client load
//! and compare throughput and the lock classes they acquire — a miniature of
//! the paper's Figures 5 and 6.
//!
//! ```text
//! cargo run --release --example tm1_telecom
//! ```

use std::sync::Arc;
use std::time::Duration;

use dora_repro::common::config::num_cpus;
use dora_repro::common::SystemConfig;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::{BaselineEngine, ClientDriver, DriverConfig};
use dora_repro::storage::Database;
use dora_repro::workloads::{Tm1, Workload};

fn main() {
    let clients = num_cpus();
    let subscribers = 20_000;
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: Duration::from_secs(1),
        warmup: Duration::from_millis(200),
        hardware_contexts: num_cpus(),
    });

    // Conventional engine.
    let db = Database::new(SystemConfig::default());
    let workload = Arc::new(Tm1::new(subscribers));
    workload.setup(&db).expect("load TM1");
    let baseline = BaselineEngine::new(Arc::clone(&db));
    let result = {
        let workload = Arc::clone(&workload);
        driver.run(move |_, rng| workload.run_baseline(&baseline, rng))
    };
    let (row, higher, local) = result.locks_per_100_txns();
    println!("Baseline: {:>8.0} tps | aborts {:>5.1}% | locks/100txn: row {:.0} higher {:.0} local {:.0}",
        result.throughput_tps, 100.0 * result.abort_rate(), row, higher, local);
    println!("          breakdown: {}", result.breakdown);

    // DORA engine.
    let db = Database::new(SystemConfig::default());
    let workload = Arc::new(Tm1::new(subscribers));
    workload.setup(&db).expect("load TM1");
    let dora = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::default()));
    workload.bind_dora(&dora, (num_cpus() / 4).max(1)).expect("bind");
    let result = {
        let workload = Arc::clone(&workload);
        let dora = Arc::clone(&dora);
        driver.run(move |_, rng| workload.run_dora(&dora, rng))
    };
    let (row, higher, local) = result.locks_per_100_txns();
    println!("DORA:     {:>8.0} tps | aborts {:>5.1}% | locks/100txn: row {:.0} higher {:.0} local {:.0}",
        result.throughput_tps, 100.0 * result.abort_rate(), row, higher, local);
    println!("          breakdown: {}", result.breakdown);
    dora.shutdown();
}
