//! TM1 (TATP) telecom workload: drive every registered execution engine with
//! a multi-client load and compare throughput and the lock classes they
//! acquire — a miniature of the paper's Figures 5 and 6.
//!
//! All engines are driven through the unified `ExecutionEngine` seam, so a
//! newly registered architecture shows up here with no code changes.
//!
//! ```text
//! cargo run --release --example tm1_telecom
//! ```

use std::sync::Arc;
use std::time::Duration;

use dora_repro::common::config::num_cpus;
use dora_repro::common::{EngineKind, SystemConfig};
use dora_repro::engine::{build_engine, ClientDriver, DriverConfig};
use dora_repro::storage::Database;
use dora_repro::workloads::{Tm1, Workload};

fn main() {
    let clients = num_cpus();
    let subscribers = 20_000;
    let driver = ClientDriver::new(DriverConfig {
        clients,
        duration: Duration::from_secs(1),
        warmup: Duration::from_millis(200),
        hardware_contexts: num_cpus(),
    });

    for kind in EngineKind::ALL {
        let db = Database::new(SystemConfig::default());
        let workload: Arc<dyn Workload> = Arc::new(Tm1::new(subscribers));
        workload.setup(db.as_ref()).expect("load TM1");
        let engine = build_engine(kind, db);
        engine
            .bind(workload, (num_cpus() / 4).max(1))
            .expect("bind");

        let result = driver.run_engine(Arc::clone(&engine));
        let (row, higher, local) = result.locks_per_100_txns();
        println!(
            "{:<9} {:>8.0} tps | aborts {:>5.1}% (gave up {}) | locks/100txn: row {:.0} higher {:.0} local {:.0}",
            format!("{}:", engine.name()),
            result.throughput_tps,
            100.0 * result.abort_rate(),
            result.gave_up,
            row,
            higher,
            local
        );
        println!("          breakdown: {}", result.breakdown);
        engine.shutdown();
    }
}
