//! Quickstart: create a database, bind a DORA engine to it and run a few
//! transactions under both execution architectures.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{ActionSpec, DoraConfig, DoraEngine, FlowGraph, LocalMode};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::{ColumnDef, Database, TableSchema};

fn main() {
    // 1. A tiny inventory table.
    let db = Database::new(SystemConfig::default());
    let inventory = db
        .create_table(TableSchema::new(
            "inventory",
            vec![
                ColumnDef::new("sku", ValueType::Int),
                ColumnDef::new("name", ValueType::Text),
                ColumnDef::new("on_hand", ValueType::Int),
            ],
            vec![0],
        ))
        .expect("create table");
    for sku in 1..=1_000i64 {
        db.load_row(
            inventory,
            vec![
                Value::Int(sku),
                Value::Text(format!("sku-{sku}")),
                Value::Int(100),
            ],
        )
        .expect("load");
    }

    // 2. Conventional (thread-to-transaction) execution: the transaction runs
    //    on the calling thread with full centralized locking.
    let baseline = BaselineEngine::new(Arc::clone(&db));
    baseline
        .execute(|db, txn| {
            db.update_primary(txn, inventory, &Key::int(42), CcMode::Full, |row| {
                let on_hand = row[2].as_int()?;
                row[2] = Value::Int(on_hand - 1);
                Ok(())
            })
        })
        .expect("baseline transaction");
    println!("baseline engine: decremented sku 42");

    // 3. DORA (thread-to-data) execution: the table is bound to executors,
    //    each owning a range of SKUs; the transaction becomes a flow graph of
    //    actions routed to those executors.
    let dora = DoraEngine::new(Arc::clone(&db), DoraConfig::default());
    dora.bind_table(inventory, 4, 1, 1_000).expect("bind table");

    let mut graph = FlowGraph::new();
    for sku in [7i64, 400, 901] {
        graph.push(ActionSpec::new(
            "restock",
            inventory,
            Key::int(sku),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .update_primary(ctx.txn, inventory, &Key::int(sku), CcMode::None, |row| {
                        let on_hand = row[2].as_int()?;
                        row[2] = Value::Int(on_hand + 10);
                        Ok(())
                    })
            },
        ));
    }
    dora.execute(graph).expect("DORA transaction");
    println!("DORA engine: restocked skus 7, 400, 901 in parallel on their executors");

    // 4. Verify.
    let check = db.begin();
    let (_, row) = db
        .probe_primary(&check, inventory, &Key::int(7), false, CcMode::Full)
        .expect("probe")
        .expect("sku 7 exists");
    println!("sku 7 now has {} on hand", row[2]);
    db.commit(&check).expect("commit");
    dora.shutdown();
}
