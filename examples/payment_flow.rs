//! The paper's running example: the TPC-C Payment transaction, defined once
//! as a declarative `TxnProgram` and compiled to the DORA transaction flow
//! graph of Figure 4 (executed step by step, Figure 9) as well as to the
//! sequential body the conventional engine runs.
//!
//! ```text
//! cargo run --release --example payment_flow
//! ```

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::Database;
use dora_repro::workloads::tpcc::CustomerSelector;
use dora_repro::workloads::{Tpcc, Workload};

fn main() {
    let warehouses = 10;
    let workload = Tpcc::with_scale(warehouses, 60, 200);
    let db = Database::new(SystemConfig::default());
    workload.setup(&db).expect("load TPC-C");
    println!("loaded TPC-C with {warehouses} warehouses");

    // One declarative definition of Payment, compiled for DORA: the flow
    // graph the paper draws in Figure 4.
    let graph = workload
        .payment_program(
            &db,
            1,
            4,
            1,
            4,
            CustomerSelector::ByLastName("BARBARBAR".into()),
            42.0,
        )
        .expect("build program")
        .compile_dora();
    println!("\nPayment transaction flow graph:");
    for (index, phase) in graph.describe().iter().enumerate() {
        println!("  phase {}: {}", index + 1, phase.join(", "));
        println!("  --- RVP{} ---", index + 1);
    }

    // Execute payments under DORA: warehouse/district/customer updates are
    // routed to the executors owning those datasets, the History insert runs
    // in the second phase, and the terminal RVP commits.
    let dora = DoraEngine::new(Arc::clone(&db), DoraConfig::default());
    workload.bind_dora(&dora, 4).expect("bind");
    for w_id in 1..=warehouses {
        let graph = workload
            .payment_program(&db, w_id, 1, w_id, 1, CustomerSelector::ById(1), 10.0)
            .expect("program")
            .compile_dora();
        dora.execute(graph).expect("payment");
    }
    println!("\nexecuted {warehouses} Payment transactions under DORA");

    // 15% of payments touch a customer of a *remote* warehouse. A
    // shared-nothing system would need a distributed transaction; DORA simply
    // routes the customer action to the remote warehouse's executor.
    let graph = workload
        .payment_program(&db, 1, 1, 7, 3, CustomerSelector::ById(2), 99.0)
        .expect("program")
        .compile_dora();
    dora.execute(graph).expect("remote payment");
    println!("executed a remote-customer Payment (home warehouse 1, customer warehouse 7)");

    // The *same definition* under the conventional engine: compile_baseline
    // lowers the steps to a sequential body with full centralized locking.
    let baseline = BaselineEngine::new(Arc::clone(&db));
    let program = workload
        .payment_program(&db, 2, 2, 2, 2, CustomerSelector::ById(3), 15.0)
        .expect("program");
    baseline.execute_program(program).expect("baseline payment");
    println!("executed one Payment under the conventional engine");

    let check = db.begin();
    let warehouse_table = db.table_id("warehouse").unwrap();
    let (_, row) = db
        .probe_primary(&check, warehouse_table, &Key::int(1), false, CcMode::Full)
        .unwrap()
        .unwrap();
    println!("\nwarehouse 1 year-to-date total is now {}", row[2]);
    db.commit(&check).unwrap();
    dora.shutdown();
}
