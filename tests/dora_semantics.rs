//! Additional end-to-end checks of DORA's semantics through the public API:
//! local-lock serialization across clients, secondary-index deleted-flag
//! behaviour, read-only transactions bypassing the log, and the breakdown
//! accounting the harness relies on.

use std::sync::Arc;
use std::time::Duration;

use dora_repro::common::prelude::*;
use dora_repro::dora::{ActionSpec, DoraConfig, DoraEngine, FlowGraph, LocalMode};
use dora_repro::metrics::{global, CounterKind, TimeBreakdown, TimeCategory};
use dora_repro::storage::{ColumnDef, Database, IndexSpec, TableSchema};

fn ledger_db() -> (Arc<Database>, TableId, IndexId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "ledger",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("owner", ValueType::Text),
                ColumnDef::new("amount", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    let index = db
        .create_index(IndexSpec {
            name: "ledger_by_owner".into(),
            table,
            key_columns: vec![1],
            unique: false,
        })
        .unwrap();
    for id in 1..=100i64 {
        db.load_row(
            table,
            vec![
                Value::Int(id),
                Value::Text(format!("owner-{}", id % 10)),
                Value::Int(0),
            ],
        )
        .unwrap();
    }
    (db, table, index)
}

/// Two concurrent transactions read-modify-write the same row through
/// different executors? No — the routing rule sends them to the same
/// executor, whose local lock table serializes them; the final value must
/// reflect both updates even with `CcMode::None`.
#[test]
fn same_dataset_transactions_serialize_without_centralized_locks() {
    let (db, table, _) = ledger_db();
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, 4, 1, 100).unwrap();

    let before = global().snapshot();
    let clients = 6;
    let per_client = 30i64;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for _ in 0..per_client {
                    let mut graph = FlowGraph::new();
                    graph.push(ActionSpec::new(
                        "add",
                        table,
                        Key::int(55),
                        LocalMode::Exclusive,
                        move |ctx| {
                            ctx.db.update_primary(
                                ctx.txn,
                                table,
                                &Key::int(55),
                                CcMode::None,
                                |row| {
                                    row[2] = Value::Int(row[2].as_int()? + 1);
                                    Ok(())
                                },
                            )
                        },
                    ));
                    engine.execute(graph).unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    engine.shutdown();
    let delta = global().snapshot().since(&before);
    assert!(delta.counter(CounterKind::DoraLocalLock) >= (clients as u64) * (per_client as u64));

    let check = db.begin();
    let (_, row) = db
        .probe_primary(&check, table, &Key::int(55), false, CcMode::Full)
        .unwrap()
        .unwrap();
    assert_eq!(row[2], Value::Int(clients as i64 * per_client));
    db.commit(&check).unwrap();
}

/// A DORA delete leaves the secondary-index entry in place until commit, then
/// flags it; an aborted delete leaves the entry live. Both behaviours are
/// observable through the public probe API.
#[test]
fn dora_delete_flags_secondary_entries_only_after_commit() {
    let (db, table, index) = ledger_db();
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
    engine.bind_table(table, 2, 1, 100).unwrap();

    let delete_graph = |id: i64, fail: bool| {
        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "delete",
            table,
            Key::int(id),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .delete_primary(ctx.txn, table, &Key::int(id), CcMode::RowOnly)?;
                if fail {
                    return Err(DbError::TxnAborted {
                        txn: ctx.txn.id(),
                        reason: "forced".into(),
                    });
                }
                Ok(())
            },
        ));
        graph
    };

    // Committed delete: row 31 (owner-1) disappears from the index.
    engine.execute(delete_graph(31, false)).unwrap();
    // Aborted delete: row 41 (owner-1) must remain findable.
    assert!(engine.execute(delete_graph(41, true)).is_err());
    engine.shutdown();

    let check = db.begin();
    let owner1 = db
        .probe_secondary(&check, index, &Key::from_values(["owner-1"]), CcMode::Full)
        .unwrap();
    let rids: Vec<_> = owner1.iter().map(|e| e.rid).collect();
    // Rows with id % 10 == 1: 1, 11, ..., 91 → 10 rows, minus the deleted 31.
    assert_eq!(
        rids.len(),
        9,
        "committed delete must hide exactly one entry"
    );
    assert!(db
        .probe_primary(&check, table, &Key::int(41), false, CcMode::Full)
        .unwrap()
        .is_some());
    assert!(db
        .probe_primary(&check, table, &Key::int(31), false, CcMode::Full)
        .unwrap()
        .is_none());
    db.commit(&check).unwrap();
}

/// Read-only transactions do not append or flush anything to the log.
#[test]
fn read_only_transactions_skip_the_log_flush() {
    let (db, table, _) = ledger_db();
    let log_len_before = db.log_manager().len();
    let flushes_before = dora_repro::metrics::current_thread_snapshot();
    let txn = db.begin();
    for id in [1i64, 2, 3] {
        db.probe_primary(&txn, table, &Key::int(id), false, CcMode::Full)
            .unwrap();
    }
    db.commit(&txn).unwrap();
    let flushes_after = dora_repro::metrics::current_thread_snapshot();
    // Zero log traffic: the Begin record is appended lazily with the first
    // data change, so a read-only transaction appends nothing at all —
    // no Begin, no Commit record, no flush.
    assert_eq!(db.log_manager().len(), log_len_before);
    assert_eq!(
        flushes_after
            .since(&flushes_before)
            .counter(CounterKind::LogFlushes),
        0,
        "a read-only commit must not flush the log"
    );
}

/// The time-breakdown roll-up the harness plots accounts lock waits as
/// lock-manager contention and log waits as other contention.
#[test]
fn breakdown_rollup_matches_figure_categories() {
    let before = dora_repro::metrics::current_thread_snapshot();
    dora_repro::metrics::record_time(TimeCategory::Work, Duration::from_micros(60));
    dora_repro::metrics::record_time(TimeCategory::LockWait, Duration::from_micros(30));
    dora_repro::metrics::record_time(TimeCategory::LogWait, Duration::from_micros(10));
    let delta = dora_repro::metrics::current_thread_snapshot().since(&before);
    let breakdown = TimeBreakdown::from_snapshot(&delta);
    assert!(breakdown.lock_mgr_contention_nanos >= 30_000);
    assert!(breakdown.other_contention_nanos >= 10_000);
    assert!(breakdown.work_fraction() > 0.5);
}

/// Executors keep serving other datasets while one dataset's transaction is
/// long-running: a transaction holding a local lock on one key must not block
/// transactions on a different executor's keys.
#[test]
fn unrelated_datasets_do_not_block_each_other() {
    let (db, table, _) = ledger_db();
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, 2, 1, 100).unwrap();

    // Submit (without waiting) a transaction that parks on key 10 by holding
    // its local lock while sleeping briefly inside the action.
    let mut slow = FlowGraph::new();
    slow.push(ActionSpec::new(
        "slow",
        table,
        Key::int(10),
        LocalMode::Exclusive,
        move |ctx| {
            std::thread::sleep(Duration::from_millis(300));
            ctx.db
                .update_primary(ctx.txn, table, &Key::int(10), CcMode::None, |row| {
                    row[2] = Value::Int(1);
                    Ok(())
                })
        },
    ));
    let slow_handle = engine.submit(slow).unwrap();

    // A transaction on key 90 (the other executor) finishes well before the
    // slow one, proving the executors are independent.
    let started = std::time::Instant::now();
    let mut fast = FlowGraph::new();
    fast.push(ActionSpec::new(
        "fast",
        table,
        Key::int(90),
        LocalMode::Exclusive,
        move |ctx| {
            ctx.db
                .update_primary(ctx.txn, table, &Key::int(90), CcMode::None, |row| {
                    row[2] = Value::Int(2);
                    Ok(())
                })
        },
    ));
    engine.execute(fast).unwrap();
    let fast_elapsed = started.elapsed();
    assert!(
        fast_elapsed < Duration::from_millis(200),
        "independent dataset took {fast_elapsed:?}, it must not wait for the slow executor"
    );
    slow_handle.wait().unwrap();
    engine.shutdown();
}
