//! Abort handling and isolation across engines: high-abort-rate workloads
//! must leave consistent state, conflicting transactions must serialize, and
//! deadlock-prone access patterns must resolve without hanging.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::Database;
use dora_repro::workloads::{Tm1, Tm1Mix, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Under the parallel UpdateSubscriberData plan, ~37.5% of transactions abort
/// after the Subscriber update has already been dispatched; every such abort
/// must be rolled back completely (bit_1 stays 0 unless the whole transaction
/// committed, in which case the facility update is present too).
#[test]
fn high_abort_rate_parallel_plan_keeps_tables_consistent() {
    let subscribers = 100;
    let db = Database::for_tests();
    let workload = Arc::new(
        Tm1::new(subscribers)
            .with_mix(Tm1Mix::UpdateSubscriberDataOnly)
            .with_serial_update_plan(false),
    );
    workload.setup(&db).unwrap();
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    workload.bind_dora(&engine, 2).unwrap();

    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            let workload = Arc::clone(&workload);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut committed = 0u64;
                let mut aborted = 0u64;
                for _ in 0..100 {
                    let program = workload.next_program(engine.db(), &mut rng).unwrap();
                    match engine.execute(program.compile_dora()) {
                        Ok(()) => committed += 1,
                        Err(_) => aborted += 1,
                    }
                }
                (committed, aborted)
            })
        })
        .collect();
    let (mut committed, mut aborted) = (0, 0);
    for handle in handles {
        let (c, a) = handle.join().unwrap();
        committed += c;
        aborted += a;
    }
    engine.shutdown();
    assert!(
        committed > 0,
        "some UpdateSubscriberData transactions must commit"
    );
    assert!(
        aborted > 0,
        "the workload is defined to abort for a large input fraction"
    );

    // Consistency: a subscriber whose bit_1 was flipped must belong to a
    // committed transaction, which also updated one of its facilities. We
    // can't know which facility, but updated subscribers must at least have
    // one facility (the abort case for missing facilities must have rolled
    // the bit flip back for subscribers without the chosen sf_type).
    let subscriber = db.table_id("subscriber").unwrap();
    let special_facility = db.table_id("special_facility").unwrap();
    let check = db.begin();
    let mut inconsistent = 0;
    for s_id in 1..=subscribers {
        let (_, sub) = db
            .probe_primary(&check, subscriber, &Key::int(s_id), false, CcMode::Full)
            .unwrap()
            .unwrap();
        if sub[2].as_int().unwrap() != 0 {
            // Subscriber was updated by some committed transaction: verify it
            // has at least one facility (otherwise every transaction on it
            // would have aborted).
            let mut facilities = 0;
            for sf_type in 1..=4 {
                if db
                    .probe_primary(
                        &check,
                        special_facility,
                        &Key::int2(s_id, sf_type),
                        false,
                        CcMode::Full,
                    )
                    .unwrap()
                    .is_some()
                {
                    facilities += 1;
                }
            }
            if facilities == 0 {
                inconsistent += 1;
            }
        }
    }
    db.commit(&check).unwrap();
    assert_eq!(
        inconsistent, 0,
        "bit flips must only survive for committable subscribers"
    );
}

/// The classic deadlock-prone pattern (two transactions updating the same two
/// records in opposite orders) must resolve via deadlock detection and
/// retries under the baseline engine, never hang, and preserve the final
/// invariant.
#[test]
fn baseline_deadlocks_are_detected_and_retried() {
    use dora_repro::storage::{ColumnDef, TableSchema};
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "pairs",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    db.load_row(table, vec![Value::Int(1), Value::Int(0)])
        .unwrap();
    db.load_row(table, vec![Value::Int(2), Value::Int(0)])
        .unwrap();
    let engine = BaselineEngine::new(Arc::clone(&db));

    let iterations = 60i64;
    let handles: Vec<_> = (0..2)
        .map(|direction| {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for _ in 0..iterations {
                    let (first, second) = if direction == 0 { (1, 2) } else { (2, 1) };
                    let outcome = engine
                        .execute(|db, txn| {
                            db.update_primary(txn, table, &Key::int(first), CcMode::Full, |row| {
                                row[1] = Value::Int(row[1].as_int()? + 1);
                                Ok(())
                            })?;
                            db.update_primary(txn, table, &Key::int(second), CcMode::Full, |row| {
                                row[1] = Value::Int(row[1].as_int()? + 1);
                                Ok(())
                            })
                        })
                        .unwrap();
                    assert_ne!(
                        outcome,
                        dora_repro::engine::baseline::BaselineOutcome::Aborted,
                        "deadlock victims are retried, not surfaced as workload aborts"
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let check = db.begin();
    let (_, a) = db
        .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
        .unwrap()
        .unwrap();
    let (_, b) = db
        .probe_primary(&check, table, &Key::int(2), false, CcMode::Full)
        .unwrap()
        .unwrap();
    db.commit(&check).unwrap();
    // Every committed transaction increments both rows once. Deadlock victims
    // are retried until they commit, so both counters equal 2 * iterations.
    assert_eq!(a[1], Value::Int(2 * iterations));
    assert_eq!(b[1], Value::Int(2 * iterations));
}
