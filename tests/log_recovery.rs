//! The write-ahead log captures committed state: replaying it into a fresh
//! database reconstructs exactly what the workload committed (and nothing
//! that aborted), across both execution engines.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::storage::Database;
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn dora_committed_state_survives_log_replay() {
    let branches = 3;
    let accounts = 40;
    let db = Database::for_tests();
    let workload = TpcB::with_accounts(branches, accounts);
    workload.setup(&db).unwrap();
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
    workload.bind_dora(&engine, 2).unwrap();
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..150 {
        let program = workload.next_program(&db, &mut rng).unwrap();
        let _ = engine.execute(program.compile_dora());
    }
    engine.shutdown();

    // Recover into a fresh database with the same schema (empty: the loader
    // rows were not logged, so compare the *delta* the transactions applied —
    // the history rows plus the balance changes).
    let fresh = Database::for_tests();
    let fresh_workload = TpcB::with_accounts(branches, accounts);
    fresh_workload.create_schema(&fresh).unwrap();
    fresh_workload.load(&fresh).unwrap();
    db.recover_into(&fresh).unwrap();

    let history = db.table_id("history_b").unwrap();
    assert_eq!(
        db.row_count(history).unwrap(),
        fresh
            .row_count(fresh.table_id("history_b").unwrap())
            .unwrap(),
        "every committed history insert must be replayed"
    );

    // Balances: the recovered database must show the same totals.
    for (table, column) in [("branch", 1usize), ("teller", 2), ("account", 2)] {
        let sum = |database: &Database| {
            let id = database.table_id(table).unwrap();
            let txn = database.begin();
            let mut total = 0.0;
            database
                .scan_table(&txn, id, CcMode::Full, |_, row| {
                    total += row[column].as_float().unwrap_or(0.0);
                })
                .unwrap();
            database.commit(&txn).unwrap();
            total
        };
        let original = sum(&db);
        let recovered = sum(&fresh);
        assert!(
            (original - recovered).abs() < 1e-6,
            "{table} totals diverged after replay: {original} vs {recovered}"
        );
    }
}
