//! Cross-engine equivalence: every registered execution engine must produce
//! identical database states when fed the same deterministic transaction
//! stream — DORA (and any future architecture) changes *where* code runs,
//! never *what* it computes.
//!
//! The tests are table-driven over `EngineKind::ALL` through the unified
//! `ExecutionEngine` seam: registering a third engine automatically enrolls
//! it in both tests with no changes here.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::DoraConfig;
use dora_repro::engine::{build_engine_with, ExecutionEngine};
use dora_repro::storage::Database;
use dora_repro::workloads::{AnalyticalScan, TpcB, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn table_totals(db: &Database, table_name: &str, column: usize) -> f64 {
    let table = db.table_id(table_name).unwrap();
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, table, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .unwrap();
    db.commit(&txn).unwrap();
    total
}

/// Builds a fresh TPC-B database bound to the given engine kind.
fn prepared_tpcb(kind: EngineKind, branches: i64, accounts: i64) -> Arc<dyn ExecutionEngine> {
    let db = Database::for_tests();
    let workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(branches, accounts));
    workload.setup(&db).unwrap();
    let engine = build_engine_with(kind, db, DoraConfig::for_tests());
    engine.bind(workload, 2).unwrap();
    engine
}

#[test]
fn tpcb_same_seed_same_state_across_all_engines() {
    // Run the identical deterministic stream through every registered engine
    // and compare each state against the first engine's.
    let mut reference: Option<(EngineKind, f64, f64, f64, usize)> = None;
    for kind in EngineKind::ALL {
        let engine = prepared_tpcb(kind, 4, 50);
        let mut rng = SmallRng::seed_from_u64(2024);
        for _ in 0..200 {
            engine.execute_one(&mut rng);
        }
        engine.shutdown();

        let db = engine.db();
        let branch = table_totals(db, "branch", 1);
        let teller = table_totals(db, "teller", 2);
        let account = table_totals(db, "account", 2);
        let history = db.row_count(db.table_id("history_b").unwrap()).unwrap();

        match &reference {
            None => reference = Some((kind, branch, teller, account, history)),
            Some((ref_kind, ref_branch, ref_teller, ref_account, ref_history)) => {
                let base = ref_kind.label();
                let this = kind.label();
                assert!(
                    (branch - ref_branch).abs() < 1e-6,
                    "branch totals diverged: {base} {ref_branch} vs {this} {branch}"
                );
                assert!(
                    (teller - ref_teller).abs() < 1e-6,
                    "teller totals diverged: {base} {ref_teller} vs {this} {teller}"
                );
                assert!(
                    (account - ref_account).abs() < 1e-6,
                    "account totals diverged: {base} {ref_account} vs {this} {account}"
                );
                assert_eq!(
                    history, *ref_history,
                    "{base} and {this} appended different history row counts"
                );
            }
        }
    }
}

/// The MVCC snapshot read path is an *execution* alternative, not a
/// semantic one: the same read-only program, over the same seeded state,
/// returns identical results whether it runs through the locked path or
/// against a snapshot — on every registered engine, and identically across
/// engines.
#[test]
fn snapshot_and_locked_paths_agree_on_read_only_programs() {
    fn assert_groups_match(
        context: &str,
        left: &std::collections::BTreeMap<i64, f64>,
        right: &std::collections::BTreeMap<i64, f64>,
    ) {
        assert_eq!(
            left.keys().collect::<Vec<_>>(),
            right.keys().collect::<Vec<_>>(),
            "{context}: different branch sets"
        );
        for (branch, total) in left {
            assert!(
                (total - right[branch]).abs() < 1e-6,
                "{context}: branch {branch} totals diverged: {total} vs {}",
                right[branch]
            );
        }
    }

    let mut reference: Option<(EngineKind, u64, std::collections::BTreeMap<i64, f64>)> = None;
    for kind in EngineKind::ALL {
        let engine = prepared_tpcb(kind, 4, 50);
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..150 {
            engine.execute_one(&mut rng);
        }
        let db = engine.db();
        let label = kind.label();

        let run = |snapshot_path: bool| {
            let sink = AnalyticalScan::sink();
            let program = AnalyticalScan::tpcb_branch_balances(db, Arc::clone(&sink)).unwrap();
            let prepared = engine.prepare(program).unwrap();
            assert!(prepared.is_read_only(), "{label}: scan must be read-only");
            let outcome = if snapshot_path {
                engine.execute_snapshot_checked(&prepared).unwrap()
            } else {
                engine.execute_prepared_checked(&prepared).unwrap()
            };
            assert!(!outcome.is_failure(), "{label}: scan did not commit");
            let summary = sink.lock();
            (summary.rows_scanned, summary.group_totals.clone())
        };

        let (locked_rows, locked_groups) = run(false);
        let (snap_rows, snap_groups) = run(true);
        assert_eq!(
            locked_rows, snap_rows,
            "{label}: the two paths scanned different row counts"
        );
        assert_groups_match(
            &format!("{label}: locked vs snapshot path"),
            &locked_groups,
            &snap_groups,
        );

        engine.shutdown();
        match &reference {
            None => reference = Some((kind, snap_rows, snap_groups)),
            Some((ref_kind, ref_rows, ref_groups)) => {
                assert_eq!(
                    snap_rows,
                    *ref_rows,
                    "{} and {label} scanned different row counts",
                    ref_kind.label()
                );
                assert_groups_match(
                    &format!("{} vs {label}", ref_kind.label()),
                    ref_groups,
                    &snap_groups,
                );
            }
        }
    }
}

#[test]
fn concurrent_clients_keep_tpcb_consistent_on_every_engine() {
    // The shape the paper cares about: many concurrent clients, transactions
    // decomposed across executors (for DORA), no centralized locking for
    // probes and updates — yet the money invariant holds on every engine.
    for kind in EngineKind::ALL {
        let engine = prepared_tpcb(kind, 6, 40);
        let handles: Vec<_> = (0..6u64)
            .map(|seed| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    for _ in 0..80 {
                        engine.execute_one(&mut rng);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        engine.shutdown();

        let db = engine.db();
        let branch = table_totals(db, "branch", 1);
        let teller = table_totals(db, "teller", 2);
        let account = table_totals(db, "account", 2);
        let label = kind.label();
        assert!(
            (branch - teller).abs() < 1e-6,
            "{label}: branch {branch} != teller {teller}"
        );
        assert!(
            (branch - account).abs() < 1e-6,
            "{label}: branch {branch} != account {account}"
        );
    }
}
