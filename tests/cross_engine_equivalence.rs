//! Cross-engine equivalence: the baseline (thread-to-transaction) and DORA
//! (thread-to-data) engines must produce identical database states when fed
//! the same deterministic transaction stream — DORA changes *where* code
//! runs, never *what* it computes.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::Database;
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn table_totals(db: &Database, table_name: &str, column: usize) -> f64 {
    let table = db.table_id(table_name).unwrap();
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, table, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .unwrap();
    db.commit(&txn).unwrap();
    total
}

#[test]
fn tpcb_same_seed_same_state() {
    let branches = 4;
    let accounts = 50;

    // Baseline run.
    let db_base = Database::for_tests();
    let workload_base = TpcB::with_accounts(branches, accounts);
    workload_base.setup(&db_base).unwrap();
    let baseline = BaselineEngine::new(Arc::clone(&db_base));
    let mut rng = SmallRng::seed_from_u64(2024);
    for _ in 0..200 {
        workload_base.run_baseline(&baseline, &mut rng);
    }

    // DORA run with the same seed (and therefore the same inputs).
    let db_dora = Database::for_tests();
    let workload_dora = TpcB::with_accounts(branches, accounts);
    workload_dora.setup(&db_dora).unwrap();
    let dora = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
    workload_dora.bind_dora(&dora, 2).unwrap();
    let mut rng = SmallRng::seed_from_u64(2024);
    for _ in 0..200 {
        workload_dora.run_dora(&dora, &mut rng);
    }
    dora.shutdown();

    for (table, column) in [("branch", 1), ("teller", 2), ("account", 2)] {
        let base_total = table_totals(&db_base, table, column);
        let dora_total = table_totals(&db_dora, table, column);
        assert!(
            (base_total - dora_total).abs() < 1e-6,
            "{table} totals diverged: baseline {base_total} vs DORA {dora_total}"
        );
    }
    assert_eq!(
        db_base.row_count(db_base.table_id("history_b").unwrap()).unwrap(),
        db_dora.row_count(db_dora.table_id("history_b").unwrap()).unwrap(),
        "both engines must have appended the same number of history rows"
    );
}

#[test]
fn dora_concurrent_clients_keep_tpcb_consistent() {
    // The shape the paper cares about: many concurrent clients, transactions
    // decomposed across executors, no centralized locking for probes and
    // updates — yet the money invariant holds.
    let db = Database::for_tests();
    let workload = Arc::new(TpcB::with_accounts(6, 40));
    workload.setup(&db).unwrap();
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    workload.bind_dora(&engine, 3).unwrap();

    let handles: Vec<_> = (0..6u64)
        .map(|seed| {
            let workload = Arc::clone(&workload);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                for _ in 0..80 {
                    workload.run_dora(&engine, &mut rng);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    engine.shutdown();

    let branch = table_totals(&db, "branch", 1);
    let teller = table_totals(&db, "teller", 2);
    let account = table_totals(&db, "account", 2);
    assert!((branch - teller).abs() < 1e-6);
    assert!((branch - account).abs() < 1e-6);
}
