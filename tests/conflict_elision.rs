//! Soundness tests for the bind-time conflict analysis and the lock-probe
//! elision it drives:
//!
//! 1. the solver's route-disjointness verdict is checked against brute
//!    force — randomized route templates that the solver declares disjoint
//!    must never instantiate to overlapping keys, under any parameter
//!    assignment;
//! 2. the matrices the real workloads declare prove exactly the steps the
//!    analysis should prove (TM1's read mix, TPC-C's item/customer reads),
//!    and never a writer;
//! 3. a full run under contention with elision off and on leaves identical
//!    table contents, while the elided run demonstrably skips probes
//!    (`LockProbesElided` > 0, fewer `DoraLocalLock` acquisitions).

use std::collections::HashMap;
use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{
    routes_may_overlap, ConflictMatrix, DoraConfig, DoraEngine, KeyAtom, OnMissing,
    ProgramTemplate, Step, StepTemplate, TxnProgram,
};
use dora_repro::metrics::{global, CounterKind};
use dora_repro::storage::{ColumnDef, Database, TableSchema};
use dora_repro::workloads::{Tm1, Tpcc, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random route template: constants from a tiny domain (collisions
/// likely), parameters from a small shared name pool, and the occasional
/// `Unique` atom (an inserted key containing a fresh txn-unique component).
fn random_route(rng: &mut SmallRng) -> Vec<KeyAtom> {
    let len = rng.random_range(1..=3usize);
    (0..len)
        .map(|_| match rng.random_range(0..100u32) {
            0..=49 => KeyAtom::Const(Value::Int(rng.random_range(0..4u32) as i64)),
            50..=84 => KeyAtom::Param(["p0", "p1", "p2"][rng.random_range(0..3u32) as usize]),
            _ => KeyAtom::Unique,
        })
        .collect()
}

/// Instantiates a route template to a concrete key. Each parameter binds
/// once per instantiation (a program binds each input once); `Unique` atoms
/// draw from a monotonically increasing counter no other instantiation can
/// ever produce.
fn instantiate(route: &[KeyAtom], rng: &mut SmallRng, unique: &mut i64) -> Key {
    let mut params: HashMap<&'static str, i64> = HashMap::new();
    Key::from_values(route.iter().map(|atom| match atom {
        KeyAtom::Const(value) => value.clone(),
        KeyAtom::Param(name) => {
            let v = *params
                .entry(name)
                .or_insert_with(|| rng.random_range(0..4u32) as i64);
            Value::Int(v)
        }
        KeyAtom::Unique => {
            *unique += 1;
            Value::Int(1_000_000 + *unique)
        }
    }))
}

#[test]
fn disjoint_route_verdicts_survive_brute_force() {
    let mut rng = SmallRng::seed_from_u64(0xC0F1);
    let mut unique = 0i64;
    let mut disjoint_pairs = 0u32;
    for _ in 0..500 {
        let a = random_route(&mut rng);
        let b = random_route(&mut rng);
        if routes_may_overlap(&a, &b) {
            continue; // "may overlap" is allowed to be conservative
        }
        disjoint_pairs += 1;
        // The solver says these can never cover the same records: no
        // parameter assignment may produce prefix-overlapping keys.
        for _ in 0..50 {
            let ka = instantiate(&a, &mut rng, &mut unique);
            let kb = instantiate(&b, &mut rng, &mut unique);
            assert!(
                !ka.overlaps(&kb),
                "solver called {a:?} and {b:?} disjoint, but {ka:?} overlaps {kb:?}"
            );
        }
    }
    assert!(
        disjoint_pairs > 20,
        "only {disjoint_pairs} disjoint pairs generated — the check is vacuous"
    );
}

#[test]
fn tm1_matrix_proves_the_read_mix_safe_and_only_it() {
    let db = Database::for_tests();
    let tm1 = Tm1::new(200);
    tm1.setup(&db).unwrap();
    let templates = tm1.conflict_templates(&db).unwrap();
    let matrix =
        ConflictMatrix::analyze(&templates, DoraConfig::default().serialize_abort_threshold);

    // The read-dominated bulk of the mix is provably safe: GetSubscriberData
    // and GetAccessData touch tables nothing writes in conflict with them,
    // and the facility probes read columns the updater does not write.
    for (program, label) in [
        (Tm1::GET_SUBSCRIBER_DATA, "get-subscriber"),
        (Tm1::GET_NEW_DESTINATION, "probe-facility"),
        (Tm1::GET_ACCESS_DATA, "get-access-data"),
        (Tm1::INSERT_CALL_FORWARDING, "probe-facility"),
    ] {
        assert!(
            matrix.is_probe_free(program, label),
            "{program}/{label} should be probe-free"
        );
    }
    // Writers and anything racing the forwarding inserts/deletes keep their
    // probes.
    for (program, label) in [
        (Tm1::UPDATE_SUBSCRIBER_DATA, "update-subscriber"),
        (Tm1::UPDATE_SUBSCRIBER_DATA, "update-facility"),
        (Tm1::UPDATE_LOCATION, "update-location"),
        (Tm1::GET_NEW_DESTINATION, "probe-forwarding"),
        (Tm1::INSERT_CALL_FORWARDING, "insert-forwarding"),
        (Tm1::DELETE_CALL_FORWARDING, "delete-forwarding"),
    ] {
        assert!(
            !matrix.is_probe_free(program, label),
            "{program}/{label} must keep its probe"
        );
    }
    // UpdateSubscriberData (two conflicted writes, high abort rate) is the
    // Figure 11 candidate the analysis auto-derives as a serialized plan.
    // Other programs may or may not cross the threshold — what matters is
    // that pure reads never do.
    assert!(matrix.should_serialize(Tm1::UPDATE_SUBSCRIBER_DATA));
    assert!(!matrix.should_serialize(Tm1::GET_SUBSCRIBER_DATA));
    assert!(!matrix.should_serialize(Tm1::GET_ACCESS_DATA));
    // UpdateLocation's sub_nbr resolution is a declared secondary: the
    // coverage report must name it instead of warning at runtime.
    assert!(
        matrix
            .coverage_gaps()
            .iter()
            .any(|gap| gap.program == Tm1::UPDATE_LOCATION && gap.declared),
        "declared secondary missing from the coverage report: {:?}",
        matrix.coverage_gaps()
    );
}

#[test]
fn tpcc_matrix_dismisses_reads_but_not_stock() {
    let db = Database::for_tests();
    let tpcc = Tpcc::new(2);
    tpcc.setup(&db).unwrap();
    let templates = tpcc.conflict_templates(&db).unwrap();
    let matrix =
        ConflictMatrix::analyze(&templates, DoraConfig::default().serialize_abort_threshold);

    for (program, label) in [
        (Tpcc::NEW_ORDER, "neworder-customer"),
        (Tpcc::NEW_ORDER, "neworder-item"),
        (Tpcc::PAYMENT, "payment-history"),
        (Tpcc::ORDER_STATUS, "orderstatus-customer"),
    ] {
        assert!(
            matrix.is_probe_free(program, label),
            "{program}/{label} should be probe-free"
        );
    }
    // StockLevel reads s_quantity, which NewOrder writes — the solver must
    // NOT dismiss it. Same for the customer/district/warehouse writers.
    for (program, label) in [
        (Tpcc::STOCK_LEVEL, "stocklevel-stock"),
        (Tpcc::NEW_ORDER, "neworder-stock"),
        (Tpcc::PAYMENT, "payment-customer"),
        (Tpcc::PAYMENT, "payment-warehouse"),
        (Tpcc::DELIVERY, "delivery-customer"),
    ] {
        assert!(
            !matrix.is_probe_free(program, label),
            "{program}/{label} must keep its probe"
        );
    }
    // TPC-C abort rates are tiny; no program crosses the serialization
    // threshold.
    for program in [
        Tpcc::NEW_ORDER,
        Tpcc::PAYMENT,
        Tpcc::ORDER_STATUS,
        Tpcc::DELIVERY,
        Tpcc::STOCK_LEVEL,
    ] {
        assert!(
            !matrix.should_serialize(program),
            "{program} should stay parallel"
        );
    }
}

const KEYS: i64 = 16;
const THREADS: usize = 4;
const TXNS_PER_THREAD: i64 = 60;

fn mini_db() -> (Arc<Database>, TableId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::new("b", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    for id in 1..=KEYS {
        db.load_row(table, vec![Value::Int(id), Value::Int(0), Value::Int(id)])
            .unwrap();
    }
    (db, table)
}

fn writer_program(table: TableId, key: i64) -> TxnProgram {
    TxnProgram::new("mini-writer").step(Step::update(
        "bump-a",
        table,
        Key::int(key),
        Key::int(key),
        OnMissing::Abort("missing"),
        |_ctx, row| {
            let n = row[1].as_int()?;
            row[1] = Value::Int(n + 1);
            Ok(())
        },
    ))
}

fn reader_program(table: TableId, key: i64) -> TxnProgram {
    TxnProgram::new("mini-reader").step(Step::read(
        "read-b",
        table,
        Key::int(key),
        Key::int(key),
        OnMissing::Abort("missing"),
        |_ctx, row| {
            let _ = row[2].as_int()?;
            Ok(())
        },
    ))
}

fn mini_matrix(table: TableId) -> ConflictMatrix {
    let templates = vec![
        ProgramTemplate::new("mini-writer")
            .step(StepTemplate::write("bump-a", table, vec![KeyAtom::Param("id")]).writes([1])),
        ProgramTemplate::new("mini-reader")
            .step(StepTemplate::read("read-b", table, vec![KeyAtom::Param("id")]).reads([2])),
    ];
    ConflictMatrix::analyze(&templates, 0.1)
}

fn table_contents(db: &Database, table: TableId) -> Vec<(i64, i64, i64)> {
    let txn = db.begin();
    let mut rows = Vec::new();
    db.scan_table(&txn, table, CcMode::Full, |_, row| {
        rows.push((
            row[0].as_int().unwrap(),
            row[1].as_int().unwrap(),
            row[2].as_int().unwrap(),
        ));
    })
    .unwrap();
    db.commit(&txn).unwrap();
    rows.sort_unstable();
    rows
}

/// Runs the contended mini-workload and returns the final table plus the
/// measured (local-lock acquisitions, elided probes) deltas.
fn run_contended(elide: bool) -> (Vec<(i64, i64, i64)>, u64, u64) {
    let (db, table) = mini_db();
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, 2, 1, KEYS).unwrap();
    let matrix = Arc::new(mini_matrix(table));
    assert!(matrix.is_probe_free("mini-reader", "read-b"));
    assert!(!matrix.is_probe_free("mini-writer", "bump-a"));

    let before = global().snapshot();
    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let matrix = Arc::clone(&matrix);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5EED + thread as u64);
                for i in 0..TXNS_PER_THREAD {
                    // Deliberately overlapping keys across threads: readers
                    // race writers on the same records.
                    let key = rng.random_range(1..=KEYS as u64) as i64;
                    let program = if i % 2 == 0 {
                        writer_program(table, key)
                    } else {
                        reader_program(table, key)
                    };
                    let program = if elide {
                        program.with_conflicts(&matrix)
                    } else {
                        program
                    };
                    engine.execute(program.compile_dora()).unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let delta = global().snapshot().since(&before);
    engine.shutdown();
    (
        table_contents(&db, table),
        delta.counter(CounterKind::DoraLocalLock),
        delta.counter(CounterKind::LockProbesElided),
    )
}

/// The off and on runs happen sequentially inside ONE test so the
/// process-global counter deltas are attributable; this file's other tests
/// never execute an engine, so they cannot pollute the two windows.
#[test]
fn elision_preserves_results_under_contention() {
    let (rows_off, locks_off, elided_off) = run_contended(false);
    let (rows_on, locks_on, elided_on) = run_contended(true);

    assert_eq!(
        rows_off, rows_on,
        "elision changed the outcome of a contended run"
    );
    assert_eq!(elided_off, 0, "nothing may be elided with the matrix off");
    assert!(elided_on > 0, "the probe-free reader never skipped a probe");
    assert!(
        locks_on < locks_off,
        "elision must reduce local-lock acquisitions ({locks_on} vs {locks_off})"
    );
    // Half the transactions are probe-free readers: the elided run must
    // skip roughly that share (every reader, none of the writers).
    let total = (THREADS as i64 * TXNS_PER_THREAD) as u64;
    assert_eq!(
        elided_on,
        total / 2,
        "exactly the readers should skip probes"
    );
}
