//! Property-based tests over the core data structures and invariants, using
//! the public API of the workspace crates.
//!
//! The build environment cannot fetch `proptest`, so these use a small
//! seeded-random harness: each property is checked against a few hundred
//! randomly generated cases, and failures report the generated inputs so
//! the case can be replayed by seed.

use dora_repro::common::prelude::*;
use dora_repro::dora::adaptive::balanced_rule;
use dora_repro::dora::routing::RoutingRule;
use dora_repro::storage::btree::{BTreeIndex, IndexEntry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 300;

/// Every key in the domain maps to exactly one executor, executor indexes
/// are within range, and the mapping is monotone in the key (range rules
/// partition the domain into contiguous datasets).
#[test]
fn routing_rule_partitions_domain() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA100 + case);
        let executors = rng.random_range(1usize..12);
        let low = rng.random_range(-1_000i64..1_000);
        let span = rng.random_range(1i64..5_000);
        let high = low + span;
        let rule = RoutingRule::even_ranges(low, high, executors);
        assert_eq!(rule.executor_count(), executors, "case {case}");

        let mut probes: Vec<i64> = (0..rng.random_range(1usize..50))
            .map(|_| rng.random_range(-2_000i64..7_000))
            .collect();
        probes.sort_unstable();
        let mut last: Option<(i64, usize)> = None;
        for value in probes {
            let executor = rule.route(&Key::int(value)).unwrap();
            assert!(
                executor < executors,
                "case {case}: executor {executor} out of range"
            );
            if let Some((previous_value, previous_executor)) = last {
                if value >= previous_value {
                    assert!(
                        executor >= previous_executor,
                        "case {case}: routing not monotone at key {value}"
                    );
                }
            }
            last = Some((value, executor));
        }
    }
}

/// Checks that a range rule tiles the entire key domain with no gaps or
/// overlaps: executor datasets are contiguous, every in-domain dataset is at
/// least `min_width` keys wide, and routing agrees with the reported
/// ownership at both edges of every dataset.
fn assert_rule_tiles(rule: &RoutingRule, low: i64, high: i64, min_width: i64, context: &str) {
    let executors = rule.executor_count();
    let mut expected_low = i64::MIN;
    for index in 0..executors {
        let (range_low, range_high) = rule
            .range_of(index)
            .unwrap_or_else(|| panic!("{context}: executor {index} has no range"));
        assert_eq!(range_low, expected_low, "{context}: gap/overlap at {index}");
        assert!(
            range_low <= range_high,
            "{context}: inverted range at {index}"
        );
        let clipped = range_high.min(high) - range_low.max(low) + 1;
        assert!(
            clipped >= min_width,
            "{context}: dataset {index} narrower than {min_width} in-domain keys"
        );
        if range_high < i64::MAX {
            assert_eq!(
                rule.route(&Key::int(range_high)),
                Some(index),
                "{context}: top edge of {index} routes elsewhere"
            );
        }
        if range_low > i64::MIN {
            assert_eq!(
                rule.route(&Key::int(range_low)),
                Some(index),
                "{context}: bottom edge of {index} routes elsewhere"
            );
        }
        if index + 1 == executors {
            assert_eq!(range_high, i64::MAX, "{context}: open top end missing");
        } else {
            expected_low = range_high + 1;
        }
    }
}

/// Any rule the skew detector synthesizes — over arbitrary current rules,
/// load vectors, domains and minimum widths — still tiles the full key
/// domain with no gaps or overlaps, keeps the executor count, and honors
/// the minimum range width.
#[test]
fn skew_detector_rules_tile_the_domain() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB100 + case);
        let executors = rng.random_range(2usize..10);
        let low = rng.random_range(-500i64..500);
        let min_width = rng.random_range(1i64..6);
        let span = rng.random_range(executors as i64 * min_width..4_000);
        let high = low + span - 1;
        let current = RoutingRule::even_ranges(low, high, executors);
        let loads: Vec<u64> = (0..executors)
            .map(|_| rng.random_range(0u64..10_000))
            .collect();
        let Some(rebalanced) = balanced_rule(&current, &loads, (low, high), min_width) else {
            continue; // balanced already, or zero load — nothing to check
        };
        assert_eq!(
            rebalanced.executor_count(),
            executors,
            "case {case}: executor count changed"
        );
        assert_rule_tiles(&rebalanced, low, high, min_width, &format!("case {case}"));
    }
}

/// Iterated rebalancing (the controller's steady state) preserves the same
/// invariants at every step of a random split/merge sequence: the output of
/// one resize is the input of the next.
#[test]
fn iterated_rebalances_stay_sound() {
    for case in 0..60 {
        let mut rng = SmallRng::seed_from_u64(0xB200 + case);
        let executors = rng.random_range(2usize..8);
        let low = rng.random_range(-100i64..100);
        let span = rng.random_range(executors as i64 * 4..2_000);
        let high = low + span - 1;
        let mut rule = RoutingRule::even_ranges(low, high, executors);
        for step in 0..12 {
            // Skewed load: one random executor gets the lion's share, so
            // every step both splits (the hot range) and merges (cold ones).
            let hot = rng.random_range(0usize..executors);
            let loads: Vec<u64> = (0..executors)
                .map(|i| {
                    if i == hot {
                        rng.random_range(5_000u64..50_000)
                    } else {
                        rng.random_range(0u64..500)
                    }
                })
                .collect();
            let Some(next) = balanced_rule(&rule, &loads, (low, high), 2) else {
                continue;
            };
            assert_rule_tiles(&next, low, high, 2, &format!("case {case} step {step}"));
            rule = next;
        }
    }
}

/// A composite identifier routes to the same executor as its leading routing
/// field alone — the property DORA relies on when it merges actions and
/// routes secondary-index accesses.
#[test]
fn routing_ignores_trailing_fields() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA200 + case);
        let executors = rng.random_range(1usize..8);
        let key = rng.random_range(1i64..10_000);
        let trailing = rng.random_range(-100i64..100);
        let rule = RoutingRule::even_ranges(1, 10_000, executors);
        assert_eq!(
            rule.route(&Key::int(key)),
            rule.route(&Key::int2(key, trailing)),
            "case {case}: trailing field changed the route of {key}"
        );
    }
}

/// Key prefix overlap is symmetric and equality always overlaps.
#[test]
fn key_prefix_overlap_is_symmetric() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA300 + case);
        let len_a = rng.random_range(0usize..4);
        let len_b = rng.random_range(0usize..4);
        let a: Vec<i64> = (0..len_a).map(|_| rng.random_range(0i64..6)).collect();
        let b: Vec<i64> = (0..len_b).map(|_| rng.random_range(0i64..6)).collect();
        let key_a = Key::from_values(a);
        let key_b = Key::from_values(b);
        assert_eq!(
            key_a.overlaps(&key_b),
            key_b.overlaps(&key_a),
            "case {case}: overlap not symmetric for {key_a:?} / {key_b:?}"
        );
        assert!(
            key_a.overlaps(&key_a),
            "case {case}: key must overlap itself"
        );
    }
}

/// The B-Tree behaves exactly like a sorted map: everything inserted is
/// found, everything removed disappears, and range scans return sorted,
/// correct windows.
#[test]
fn btree_matches_model() {
    for case in 0..60 {
        let mut rng = SmallRng::seed_from_u64(0xA400 + case);
        let index = BTreeIndex::new(true);
        let mut model = std::collections::BTreeMap::new();

        let inserts = rng.random_range(1usize..300);
        let mut keys = std::collections::BTreeSet::new();
        for _ in 0..inserts {
            keys.insert(rng.random_range(0i64..2_000));
        }
        for (slot, key) in keys.iter().enumerate() {
            let rid = Rid::new((slot / 100) as u32, (slot % 100) as u16);
            index
                .insert(&Key::int(*key), IndexEntry::new(rid, Key::empty()))
                .unwrap();
            model.insert(*key, rid);
        }
        for _ in 0..rng.random_range(0usize..100) {
            let key = rng.random_range(0i64..2_000);
            if let Some(rid) = model.remove(&key) {
                index.remove(&Key::int(key), rid).unwrap();
            }
        }
        assert_eq!(index.len(), model.len(), "case {case}: size diverged");
        for (key, rid) in &model {
            let found = index.get(&Key::int(*key));
            assert_eq!(found.len(), 1, "case {case}: key {key} not unique");
            assert_eq!(found[0].rid, *rid, "case {case}: key {key} wrong rid");
        }
        let start = rng.random_range(0i64..2_000);
        let len = rng.random_range(1i64..500);
        let range = KeyRange::new(Some(Key::int(start)), Some(Key::int(start + len)));
        let scanned: Vec<i64> = index
            .range(&range)
            .iter()
            .map(|(key, _)| key.leading_int().unwrap())
            .collect();
        let expected: Vec<i64> = model.range(start..start + len).map(|(k, _)| *k).collect();
        assert_eq!(scanned, expected, "case {case}: range scan diverged");
    }
}

/// Row encode/decode round-trips arbitrary rows.
#[test]
fn row_codec_roundtrip() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA500 + case);
        let mut row: Row = Vec::new();
        for _ in 0..rng.random_range(0usize..6) {
            row.push(Value::Int(rng.random_range(i64::MIN..=i64::MAX)));
        }
        for _ in 0..rng.random_range(0usize..4) {
            // f64 from random bits, skipping NaN (NaN != NaN under Eq-by-cmp).
            let f = f64::from_bits(rng.random_range(0u64..=u64::MAX));
            if !f.is_nan() {
                row.push(Value::Float(f));
            }
        }
        for _ in 0..rng.random_range(0usize..4) {
            let len = rng.random_range(0usize..24);
            let text: String = (0..len)
                .map(|_| char::from(rng.random_range(32u8..127)))
                .collect();
            row.push(Value::Text(text));
        }
        let decoded = Value::decode_row(&Value::encode_row(&row)).unwrap();
        assert_eq!(decoded, row, "case {case}: row did not round-trip");
    }
}

/// A random short-ish value: small domains so equality, prefix and overlap
/// relations actually occur between independently drawn keys.
fn random_key_value(rng: &mut SmallRng) -> Value {
    match rng.random_range(0u8..4) {
        0 | 1 => Value::Int(rng.random_range(-3i64..3)),
        2 => Value::Float(rng.random_range(0i64..3) as f64 / 2.0),
        _ => Value::Text(
            (0..rng.random_range(0usize..3))
                .map(|_| char::from(rng.random_range(97u8..100)))
                .collect(),
        ),
    }
}

/// The inline (stack) and heap representations of a `Key` are an invisible
/// implementation detail: for the same logical value sequence they must be
/// equal, hash identically, order identically against arbitrary other keys
/// (of either representation), and agree on every prefix/overlap relation
/// the DORA local lock tables rely on.
#[test]
fn key_inline_and_heap_representations_are_equivalent() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let fingerprint = |key: &Key| {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish()
    };
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD100 + case);
        let values: Vec<Value> = (0..rng.random_range(0usize..5))
            .map(|_| random_key_value(&mut rng))
            .collect();
        let other_values: Vec<Value> = (0..rng.random_range(0usize..5))
            .map(|_| random_key_value(&mut rng))
            .collect();

        // `from_values` keeps short keys inline; `From<Vec<_>>` adopts the
        // vector, i.e. always heap.
        let inline = Key::from_values(values.clone());
        let heap = Key::from(values.clone());
        assert_eq!(
            inline.is_inline(),
            values.len() <= Key::INLINE_LEN,
            "case {case}"
        );
        assert!(!heap.is_inline(), "case {case}");

        assert_eq!(inline, heap, "case {case}: representations must be equal");
        assert_eq!(inline.values(), values.as_slice(), "case {case}");
        assert_eq!(heap.values(), values.as_slice(), "case {case}");
        assert_eq!(fingerprint(&inline), fingerprint(&heap), "case {case}");
        assert_eq!(inline.cmp(&heap), std::cmp::Ordering::Equal, "case {case}");

        // Relations against an independent key must not depend on either
        // side's representation.
        let other_inline = Key::from_values(other_values.clone());
        let other_heap = Key::from(other_values.clone());
        assert_eq!(
            inline.cmp(&other_inline),
            heap.cmp(&other_heap),
            "case {case}: ordering differs across representations"
        );
        assert_eq!(
            inline.is_prefix_of(&other_inline),
            heap.is_prefix_of(&other_heap),
            "case {case}: prefix relation differs"
        );
        assert_eq!(
            inline.overlaps(&other_inline),
            heap.overlaps(&other_heap),
            "case {case}: overlap relation differs"
        );

        // Prefixes and extensions agree component-wise regardless of the
        // source representation.
        let cut = rng.random_range(0usize..=values.len().max(1));
        assert_eq!(inline.prefix(cut), heap.prefix(cut), "case {case}");
        let extra = random_key_value(&mut rng);
        assert_eq!(
            inline.extend(extra.clone()),
            heap.extend(extra),
            "case {case}"
        );

        // A HashMap keyed by one representation must be probed by the other.
        let mut map = std::collections::HashMap::new();
        map.insert(inline, case);
        assert_eq!(map.get(&heap), Some(&case), "case {case}: map probe");
    }
}
