//! Property-based tests over the core data structures and invariants, using
//! the public API of the workspace crates.

use dora_repro::common::prelude::*;
use dora_repro::dora::routing::RoutingRule;
use dora_repro::storage::btree::{BTreeIndex, IndexEntry};
use proptest::prelude::*;

proptest! {
    /// Every key in the domain maps to exactly one executor, executor indexes
    /// are within range, and the mapping is monotone in the key (range rules
    /// partition the domain into contiguous datasets).
    #[test]
    fn routing_rule_partitions_domain(
        executors in 1usize..12,
        low in -1_000i64..1_000,
        span in 1i64..5_000,
        probes in proptest::collection::vec(-2_000i64..7_000, 1..50),
    ) {
        let high = low + span;
        let rule = RoutingRule::even_ranges(low, high, executors);
        prop_assert_eq!(rule.executor_count(), executors);
        let mut last_for_sorted: Option<(i64, usize)> = None;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for value in sorted {
            let executor = rule.route(&Key::int(value)).unwrap();
            prop_assert!(executor < executors);
            if let Some((previous_value, previous_executor)) = last_for_sorted {
                if value >= previous_value {
                    prop_assert!(executor >= previous_executor);
                }
            }
            last_for_sorted = Some((value, executor));
        }
    }

    /// A composite identifier routes to the same executor as its leading
    /// routing field alone — the property DORA relies on when it merges
    /// actions and routes secondary-index accesses.
    #[test]
    fn routing_ignores_trailing_fields(
        executors in 1usize..8,
        key in 1i64..10_000,
        trailing in -100i64..100,
    ) {
        let rule = RoutingRule::even_ranges(1, 10_000, executors);
        prop_assert_eq!(
            rule.route(&Key::int(key)),
            rule.route(&Key::int2(key, trailing))
        );
    }

    /// Key prefix overlap is symmetric and equality always overlaps.
    #[test]
    fn key_prefix_overlap_is_symmetric(
        a in proptest::collection::vec(0i64..6, 0..4),
        b in proptest::collection::vec(0i64..6, 0..4),
    ) {
        let key_a = Key::from_values(a.clone());
        let key_b = Key::from_values(b.clone());
        prop_assert_eq!(key_a.overlaps(&key_b), key_b.overlaps(&key_a));
        prop_assert!(key_a.overlaps(&key_a));
    }

    /// The B-Tree behaves exactly like a sorted map: everything inserted is
    /// found, everything removed disappears, and range scans return sorted,
    /// correct windows.
    #[test]
    fn btree_matches_model(
        keys in proptest::collection::btree_set(0i64..2_000, 1..300),
        removals in proptest::collection::vec(0i64..2_000, 0..100),
        window in (0i64..2_000, 1i64..500),
    ) {
        let index = BTreeIndex::new(true);
        let mut model = std::collections::BTreeMap::new();
        for (slot, key) in keys.iter().enumerate() {
            let rid = Rid::new((slot / 100) as u32, (slot % 100) as u16);
            index.insert(&Key::int(*key), IndexEntry::new(rid, Key::empty())).unwrap();
            model.insert(*key, rid);
        }
        for key in &removals {
            if let Some(rid) = model.remove(key) {
                index.remove(&Key::int(*key), rid).unwrap();
            }
        }
        prop_assert_eq!(index.len(), model.len());
        for (key, rid) in &model {
            let found = index.get(&Key::int(*key));
            prop_assert_eq!(found.len(), 1);
            prop_assert_eq!(found[0].rid, *rid);
        }
        let (start, len) = window;
        let range = KeyRange::new(Some(Key::int(start)), Some(Key::int(start + len)));
        let scanned: Vec<i64> = index
            .range(&range)
            .iter()
            .map(|(key, _)| key.leading_int().unwrap())
            .collect();
        let expected: Vec<i64> = model.range(start..start + len).map(|(k, _)| *k).collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Row encode/decode round-trips arbitrary rows.
    #[test]
    fn row_codec_roundtrip(
        ints in proptest::collection::vec(any::<i64>(), 0..6),
        floats in proptest::collection::vec(any::<f64>(), 0..4),
        texts in proptest::collection::vec(".{0,24}", 0..4),
    ) {
        let mut row: Row = Vec::new();
        row.extend(ints.into_iter().map(Value::Int));
        row.extend(floats.into_iter().filter(|f| !f.is_nan()).map(Value::Float));
        row.extend(texts.into_iter().map(Value::Text));
        let decoded = Value::decode_row(&Value::encode_row(&row)).unwrap();
        prop_assert_eq!(decoded, row);
    }
}
