//! Crash consistency under asynchronous group commit with early lock
//! release on a *partitioned* log: replaying any combination of per-stream
//! torn prefixes yields exactly the maximal commit-sequence-dense prefix of
//! fully fenced transactions — no torn transactions, no ELR ghosts.
//!
//! Three failure shapes must be impossible behind every set of per-stream
//! flush horizons:
//!
//! * **Torn transactions** — a replayed transaction missing some of its data
//!   records. Impossible because a commit fence is appended to a stream only
//!   after all of the transaction's data records on that stream, and a
//!   transaction replays only when *every* touched stream holds its fence.
//! * **ELR ghosts** — effects of a transaction whose locks were released
//!   early but whose fences missed the prefixes. Impossible because recovery
//!   replays only fully fenced transactions.
//! * **Dependency inversions** — a dependent transaction surviving a crash
//!   that tore the transaction it read from (its after-images embed the
//!   writer's effects). Impossible because the commit sequence is assigned
//!   while locks are held, so a dependent always carries a higher sequence
//!   number, and recovery stops at the first gap in the fenced sequence.
//!
//! Exercised for both execution engines with group commit, ELR and multiple
//! log streams enabled; a final section checks that fuzzy-checkpoint
//! recovery reconstructs the same state as a full log replay.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::{Database, LogRecordKind, Lsn};
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BRANCHES: i64 = 3;
const ACCOUNTS: i64 = 40;
const TXNS: usize = 120;
const STREAMS: usize = 3;

fn async_elr_config() -> SystemConfig {
    SystemConfig {
        // A small simulated device latency so groups actually form and
        // commits genuinely spend time in the not-yet-durable window.
        log_flush_micros: 20,
        durability: DurabilityConfig {
            group_commit: true,
            early_lock_release: true,
            // These tests cut arbitrary per-stream prefixes and compare
            // checkpoint recovery against genuine full-history replay, so
            // the log must keep every record even after a checkpoint.
            reclaim_log_at_checkpoint: false,
            ..DurabilityConfig::default()
        }
        .with_log_streams(STREAMS),
        ..SystemConfig::for_tests()
    }
}

/// Runs the TPC-B workload on the given engine and returns the loaded
/// database (whose log the prefixes are cut from).
fn run_workload(kind: EngineKind, seed: u64) -> Arc<Database> {
    let db = Database::new(async_elr_config());
    let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    workload.setup(&db).unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        EngineKind::Baseline => {
            let engine = BaselineEngine::new(Arc::clone(&db));
            for _ in 0..TXNS {
                let program = workload.next_program(&db, &mut rng).unwrap();
                let _ = engine.execute_program(program);
            }
        }
        EngineKind::Dora => {
            let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
            workload.bind_dora(&engine, 2).unwrap();
            for _ in 0..TXNS {
                let program = workload.next_program(&db, &mut rng).unwrap();
                let _ = engine.execute(program.compile_dora());
            }
            engine.shutdown();
        }
    }
    db
}

/// A fresh database with the TPC-B schema and initial rows, ready for
/// replay (loader rows are not logged, so replay reconstructs the delta).
fn fresh_replica() -> Arc<Database> {
    let fresh = Database::new(async_elr_config());
    let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    workload.create_schema(&fresh).unwrap();
    workload.load(&fresh).unwrap();
    fresh
}

fn balance_total(db: &Database, table: &str, column: usize) -> f64 {
    let id = db.table_id(table).unwrap();
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, id, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .unwrap();
    db.commit(&txn).unwrap();
    total
}

/// Replays the log up to the per-stream cuts into a fresh replica and checks
/// the two crash invariants: the replayed transaction set equals what the
/// log manager reports committed inside the cuts (one history row per TPC-B
/// transaction), and money is conserved across branches/tellers/accounts.
fn check_cuts(kind: EngineKind, db: &Database, cuts: &[Lsn]) {
    let fresh = fresh_replica();
    db.recover_prefixes_into(&fresh, cuts).unwrap();

    let history = fresh.table_id("history_b").unwrap();
    let committed_txns = {
        let prefix = db.log_manager().committed_changes_in_prefixes(cuts);
        let set: std::collections::HashSet<TxnId> = prefix.iter().map(|r| r.txn).collect();
        set.len()
    };
    assert_eq!(
        fresh.row_count(history).unwrap(),
        committed_txns,
        "{}: cuts {cuts:?} replayed a torn or ghost transaction",
        kind.label()
    );

    // Money conservation behind every crash point: each committed
    // transaction applies the same delta to its branch, teller and account,
    // so the three totals always agree.
    let branches = balance_total(&fresh, "branch", 1);
    let tellers = balance_total(&fresh, "teller", 2);
    let accounts = balance_total(&fresh, "account", 2);
    assert!(
        (branches - tellers).abs() < 1e-6 && (tellers - accounts).abs() < 1e-6,
        "{}: cuts {cuts:?} broke balance consistency: {branches} {tellers} {accounts}",
        kind.label()
    );
}

#[test]
fn any_torn_multi_stream_prefix_recovers_exactly_the_fenced_set() {
    for kind in EngineKind::ALL {
        let db = run_workload(kind, 0xC0FFEE + kind as u64);
        let log = db.log_manager();
        let streams = log.records_snapshot();
        assert_eq!(streams.len(), STREAMS);
        assert!(!log.is_empty(), "{}: workload must log", kind.label());
        let lens: Vec<u64> = streams.iter().map(|s| s.len() as u64).collect();
        if kind == EngineKind::Dora {
            assert!(
                streams.iter().filter(|s| !s.is_empty()).count() > 1,
                "{}: executors must spread appends over several streams, got {lens:?}",
                kind.label()
            );
        }

        // Structural no-torn-transactions invariant, per stream: a
        // transaction's commit fence on a stream is its highest LSN there,
        // so cut membership of the fence implies cut membership of every
        // data record on that stream.
        let mut fences = 0usize;
        for records in &streams {
            let fence_lsn: std::collections::HashMap<TxnId, Lsn> = records
                .iter()
                .filter(|r| matches!(r.kind, LogRecordKind::Commit { .. }))
                .map(|r| (r.txn, r.lsn))
                .collect();
            fences += fence_lsn.len();
            for record in records {
                if let Some(&fence) = fence_lsn.get(&record.txn) {
                    assert!(
                        record.lsn <= fence,
                        "{}: record {:?} of {} past its fence {:?}",
                        kind.label(),
                        record.lsn,
                        record.txn,
                        fence
                    );
                }
            }
        }
        assert!(
            fences >= TXNS / 2,
            "{}: too few commit fences recorded ({fences})",
            kind.label()
        );

        // Structured probes: nothing flushed, everything flushed, and every
        // single-stream-torn shape (one stream cut to zero / to half, the
        // rest intact) — the crashes that expose cross-stream tearing.
        let full: Vec<Lsn> = lens.iter().map(|&n| Lsn(n)).collect();
        check_cuts(kind, &db, &[Lsn(0); STREAMS]);
        check_cuts(kind, &db, &full);
        for victim in 0..STREAMS {
            for fraction in [0u64, 2, 3] {
                let mut cuts = full.clone();
                cuts[victim] = Lsn(lens[victim].checked_div(fraction).unwrap_or(0));
                check_cuts(kind, &db, &cuts);
            }
        }

        // Arbitrary torn prefixes: every stream cut independently at random.
        let mut rng = SmallRng::seed_from_u64(0xBAD5EED ^ kind as u64);
        for _ in 0..24 {
            let cuts: Vec<Lsn> = lens.iter().map(|&n| Lsn(rng.random_range(0..=n))).collect();
            check_cuts(kind, &db, &cuts);
        }

        // Sanity: replaying the full cuts equals recover_into, which equals
        // the parallel replay path.
        let via_prefix = fresh_replica();
        db.recover_prefixes_into(&via_prefix, &full).unwrap();
        let via_full = fresh_replica();
        db.recover_into(&via_full).unwrap();
        let via_parallel = fresh_replica();
        db.recover_into_parallel(&via_parallel, 4).unwrap();
        let history = via_full.table_id("history_b").unwrap();
        assert_eq!(
            via_prefix.row_count(history).unwrap(),
            via_full.row_count(history).unwrap()
        );
        assert_eq!(
            via_parallel.row_count(history).unwrap(),
            via_full.row_count(history).unwrap()
        );
        assert!(
            (balance_total(&via_parallel, "account", 2) - balance_total(&via_full, "account", 2))
                .abs()
                < 1e-6
        );
    }
}

#[test]
fn checkpoint_recovery_matches_full_replay() {
    for kind in EngineKind::ALL {
        let db = run_workload(kind, 0xFEED + kind as u64);
        // Take the checkpoint after the fact (the workload ran with
        // checkpointing disabled) so the delta past the low-water marks is
        // empty and the snapshot alone must reconstruct the state; then run
        // more work on top to exercise checkpoint + delta replay.
        db.log_manager().take_checkpoint();
        let checkpoint = db
            .log_manager()
            .checkpoint_snapshot()
            .expect("checkpoint was just taken");
        assert!(checkpoint.row_count() > 0);

        let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
        let engine = BaselineEngine::new(Arc::clone(&db));
        let mut rng = SmallRng::seed_from_u64(0xD17A + kind as u64);
        for _ in 0..TXNS / 2 {
            let program = workload.next_program(&db, &mut rng).unwrap();
            let _ = engine.execute_program(program);
        }

        let via_checkpoint = fresh_replica();
        db.recover_checkpoint_into(&via_checkpoint, 4).unwrap();
        let via_full = fresh_replica();
        db.recover_into(&via_full).unwrap();

        let history = via_full.table_id("history_b").unwrap();
        assert_eq!(
            via_checkpoint.row_count(history).unwrap(),
            via_full.row_count(history).unwrap(),
            "{}: checkpoint recovery diverged from full replay",
            kind.label()
        );
        for (table, column) in [("branch", 1), ("teller", 2), ("account", 2)] {
            assert!(
                (balance_total(&via_checkpoint, table, column)
                    - balance_total(&via_full, table, column))
                .abs()
                    < 1e-6,
                "{}: {table} totals diverged after checkpoint recovery",
                kind.label()
            );
        }
    }
}
