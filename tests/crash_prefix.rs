//! Crash consistency under asynchronous group commit with early lock
//! release: replaying *any* prefix of the log yields exactly the set of
//! transactions whose commit record lies inside that prefix.
//!
//! Two failure shapes must be impossible behind every flush horizon:
//!
//! * **Torn transactions** — a replayed transaction missing some of its data
//!   records. Impossible because a commit record is appended only after all
//!   of the transaction's data records, so any prefix containing the commit
//!   contains the whole transaction.
//! * **ELR ghosts** — effects of a transaction whose locks were released
//!   early but whose commit record missed the prefix. Impossible because
//!   prefix recovery replays only transactions whose `Commit` record is
//!   inside the prefix, and dependent transactions commit at strictly higher
//!   LSNs in the single log.
//!
//! Exercised for both execution engines with group commit and ELR enabled.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::engine::BaselineEngine;
use dora_repro::storage::{Database, LogRecordKind, Lsn};
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BRANCHES: i64 = 3;
const ACCOUNTS: i64 = 40;
const TXNS: usize = 120;

fn async_elr_config() -> SystemConfig {
    SystemConfig {
        // A small simulated device latency so groups actually form and
        // commits genuinely spend time in the not-yet-durable window.
        log_flush_micros: 20,
        durability: DurabilityConfig {
            group_commit: true,
            early_lock_release: true,
            ..DurabilityConfig::default()
        },
        ..SystemConfig::for_tests()
    }
}

/// Runs the TPC-B workload on the given engine and returns the loaded
/// database (whose log the prefixes are cut from).
fn run_workload(kind: EngineKind, seed: u64) -> Arc<Database> {
    let db = Database::new(async_elr_config());
    let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    workload.setup(&db).unwrap();
    let mut rng = SmallRng::seed_from_u64(seed);
    match kind {
        EngineKind::Baseline => {
            let engine = BaselineEngine::new(Arc::clone(&db));
            for _ in 0..TXNS {
                let program = workload.next_program(&db, &mut rng).unwrap();
                let _ = engine.execute_program(program);
            }
        }
        EngineKind::Dora => {
            let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
            workload.bind_dora(&engine, 2).unwrap();
            for _ in 0..TXNS {
                let program = workload.next_program(&db, &mut rng).unwrap();
                let _ = engine.execute(program.compile_dora());
            }
            engine.shutdown();
        }
    }
    db
}

/// A fresh database with the TPC-B schema and initial rows, ready for
/// replay (loader rows are not logged, so replay reconstructs the delta).
fn fresh_replica() -> Arc<Database> {
    let fresh = Database::new(async_elr_config());
    let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    workload.create_schema(&fresh).unwrap();
    workload.load(&fresh).unwrap();
    fresh
}

fn balance_total(db: &Database, table: &str, column: usize) -> f64 {
    let id = db.table_id(table).unwrap();
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, id, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .unwrap();
    db.commit(&txn).unwrap();
    total
}

#[test]
fn any_flushed_prefix_recovers_exactly_the_committed_set() {
    for kind in EngineKind::ALL {
        let db = run_workload(kind, 0xC0FFEE + kind as u64);
        let log = db.log_manager();
        let records = log.records_snapshot();
        assert!(!records.is_empty(), "{}: workload must log", kind.label());
        let len = records.len() as u64;

        // Structural no-torn-transactions invariant: a transaction's commit
        // record is its highest LSN, so prefix membership of the commit
        // implies prefix membership of every data record.
        let commit_lsn: std::collections::HashMap<TxnId, Lsn> = records
            .iter()
            .filter(|r| matches!(r.kind, LogRecordKind::Commit))
            .map(|r| (r.txn, r.lsn))
            .collect();
        for record in &records {
            if let Some(&commit) = commit_lsn.get(&record.txn) {
                assert!(
                    record.lsn <= commit,
                    "{}: record {:?} of {} past its commit {:?}",
                    kind.label(),
                    record.lsn,
                    record.txn,
                    commit
                );
            }
        }

        // Every commit-record LSN is a flush-boundary candidate; probe a
        // sample of them plus a spread of arbitrary crash points.
        let mut commit_points: Vec<u64> = commit_lsn.values().map(|lsn| lsn.0).collect();
        commit_points.sort_unstable();
        assert!(
            commit_points.len() >= TXNS / 2,
            "{}: too few commits recorded ({})",
            kind.label(),
            commit_points.len()
        );

        let step = (commit_points.len() / 12).max(1);
        let mut probes: Vec<u64> = commit_points.iter().copied().step_by(step).collect();
        probes.extend([0, 1, len / 3, len / 2, len - 1, len]);
        probes.sort_unstable();
        probes.dedup();

        for &upto in &probes {
            let fresh = fresh_replica();
            db.recover_prefix_into(&fresh, Lsn(upto)).unwrap();

            // Exactly the transactions whose commit record is inside the
            // prefix: each TPC-B transaction inserts exactly one history row.
            let history = fresh.table_id("history_b").unwrap();
            let committed_txns = {
                let prefix = db.log_manager().committed_changes_in_prefix(Lsn(upto));
                let set: std::collections::HashSet<TxnId> = prefix.iter().map(|r| r.txn).collect();
                set.len()
            };
            assert_eq!(
                fresh.row_count(history).unwrap(),
                committed_txns,
                "{}: prefix {upto} replayed a torn or ghost transaction",
                kind.label()
            );

            // Money conservation behind every crash point: each committed
            // transaction applies the same delta to its branch, teller and
            // account, so the three totals always agree.
            let branches = balance_total(&fresh, "branch", 1);
            let tellers = balance_total(&fresh, "teller", 2);
            let accounts = balance_total(&fresh, "account", 2);
            assert!(
                (branches - tellers).abs() < 1e-6 && (tellers - accounts).abs() < 1e-6,
                "{}: prefix {upto} broke balance consistency: {branches} {tellers} {accounts}",
                kind.label()
            );
        }

        // Sanity: replaying the full log equals recover_into.
        let via_prefix = fresh_replica();
        db.recover_prefix_into(&via_prefix, Lsn(len)).unwrap();
        let via_full = fresh_replica();
        db.recover_into(&via_full).unwrap();
        let history = via_full.table_id("history_b").unwrap();
        assert_eq!(
            via_prefix.row_count(history).unwrap(),
            via_full.row_count(history).unwrap()
        );
    }
}
