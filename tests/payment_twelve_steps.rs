//! Integration test for the Figure 9 walk-through: the execution of one
//! TPC-C Payment transaction in DORA, step by step.
//!
//! Steps 1-5: the dispatcher enqueues the phase-1 actions (Warehouse,
//! District, Customer); each executor acquires its local lock, runs the
//! action and reports to RVP1; the last one initiates phase 2.
//! Steps 6-9: the History executor runs the insert (which takes a
//! centralized row lock), zeroes the terminal RVP and calls for commit.
//! Steps 10-12: after the storage manager commits, completion messages fan
//! out to the involved executors, which release their local locks and resume
//! any blocked actions.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine};
use dora_repro::metrics::{global, CounterKind};
use dora_repro::storage::Database;
use dora_repro::workloads::tpcc::CustomerSelector;
use dora_repro::workloads::{Tpcc, Workload};

#[test]
fn payment_twelve_steps() {
    let db = Database::for_tests();
    let workload = Tpcc::with_scale(2, 30, 50);
    workload.setup(&db).unwrap();
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
    workload.bind_dora(&engine, 2).unwrap();

    let warehouse = db.table_id("warehouse").unwrap();
    let district = db.table_id("district").unwrap();
    let customer = db.table_id("customer").unwrap();
    let history = db.table_id("history_c").unwrap();

    let before = global().snapshot();

    // Steps 1-9: submit and wait for one Payment.
    let graph = workload
        .payment_program(&db, 1, 3, 1, 3, CustomerSelector::ById(7), 120.0)
        .unwrap()
        .compile_dora();
    assert_eq!(
        graph.phase_count(),
        2,
        "Figure 4: two phases separated by RVP1"
    );
    assert_eq!(
        graph.actions_in(0),
        3,
        "warehouse, district and customer actions"
    );
    assert_eq!(graph.actions_in(1), 1, "history insert");
    engine.execute(graph).unwrap();

    let delta = global().snapshot().since(&before);

    // Step 8: exactly the History insert interfaced the centralized lock
    // manager (1 row-level lock out of the many a conventional execution
    // would take).
    assert!(delta.counter(CounterKind::RowLevelLock) >= 1);
    // Steps 2-7: four actions executed, each acquiring a thread-local lock.
    assert!(delta.counter(CounterKind::ActionsExecuted) >= 4);
    assert!(delta.counter(CounterKind::DoraLocalLock) >= 4);
    // Steps 1, 5, 10-11: messages flowed between the dispatcher, the
    // executors and back (phase dispatches plus completion notifications).
    assert!(delta.counter(CounterKind::DoraMessages) >= 6);
    assert!(delta.counter(CounterKind::TxnCommitted) >= 1);

    // Effects: all four tables reflect the payment.
    let check = db.begin();
    let (_, wh) = db
        .probe_primary(&check, warehouse, &Key::int(1), false, CcMode::Full)
        .unwrap()
        .unwrap();
    assert_eq!(wh[2], Value::Float(120.0));
    let (_, di) = db
        .probe_primary(&check, district, &Key::int2(1, 3), false, CcMode::Full)
        .unwrap()
        .unwrap();
    assert_eq!(di[3], Value::Float(120.0));
    let (_, cu) = db
        .probe_primary(&check, customer, &Key::int3(1, 3, 7), false, CcMode::Full)
        .unwrap()
        .unwrap();
    assert_eq!(
        cu[4],
        Value::Float(-130.0),
        "initial balance -10 minus the 120 payment"
    );
    assert_eq!(db.row_count(history).unwrap(), 1);
    db.commit(&check).unwrap();

    // Step 12: after completion the local locks are gone, so a conflicting
    // payment on the same district commits immediately.
    let graph = workload
        .payment_program(&db, 1, 3, 1, 3, CustomerSelector::ById(7), 30.0)
        .unwrap()
        .compile_dora();
    engine.execute(graph).unwrap();
    engine.shutdown();
}

#[test]
fn remote_customer_payment_is_not_a_distributed_transaction() {
    // Section 4.1.2: 15% of payments touch a remote warehouse's customer;
    // DORA handles them by routing the customer action to another executor,
    // with no change in the commit protocol.
    let db = Database::for_tests();
    let workload = Tpcc::with_scale(3, 30, 50);
    workload.setup(&db).unwrap();
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
    workload.bind_dora(&engine, 3).unwrap();

    let graph = workload
        .payment_program(&db, 1, 1, 3, 9, CustomerSelector::ById(11), 55.0)
        .unwrap()
        .compile_dora();
    engine.execute(graph).unwrap();

    let customer = db.table_id("customer").unwrap();
    let check = db.begin();
    let (_, cu) = db
        .probe_primary(&check, customer, &Key::int3(3, 9, 11), false, CcMode::Full)
        .unwrap()
        .unwrap();
    assert_eq!(cu[4], Value::Float(-65.0));
    db.commit(&check).unwrap();
    engine.shutdown();
}
