//! Snapshot isolation properties of the multi-version storage layer, checked
//! end-to-end through the public API while real engines write concurrently:
//!
//! * **Consistency** — every snapshot shows a transaction-consistent state:
//!   branch, teller and account totals agree with each other *and* with the
//!   sum of the history deltas visible at the same horizon, so uncommitted
//!   or torn effects can never leak in (a half-applied transfer would break
//!   the equality; a visible effect without its history row, or vice versa,
//!   would break the tie to the commit records).
//! * **Repeatability** — re-reading through the same snapshot yields exactly
//!   the same rows no matter how much the writers committed in between.
//! * **Lock-freedom** — the reading thread performs zero lock-manager and
//!   zero DORA-local-lock acquisitions, verified through its thread-local
//!   counters.
//! * **No ELR ghosts** — with asynchronous group commit and early lock
//!   release, a *durable* snapshot never shows a transaction that a crash at
//!   the current flush horizons would lose: everything it shows survives a
//!   `recover_prefixes_into` replay cut at those horizons.
//! * **Bounded history** — version chains are reclaimable once the snapshots
//!   pinning them are gone.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::DoraConfig;
use dora_repro::engine::{build_engine_with, ExecutionEngine};
use dora_repro::metrics::{current_thread_snapshot, CounterKind};
use dora_repro::storage::{Database, Snapshot};
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const BRANCHES: i64 = 4;
const ACCOUNTS: i64 = 40;

/// TPC-B system under concurrent load: the engine plus its writer threads,
/// which keep committing transfers until [`WriterPool::stop`].
struct WriterPool {
    engine: Arc<dyn ExecutionEngine>,
    stop: Arc<AtomicBool>,
    writers: Vec<std::thread::JoinHandle<()>>,
}

impl WriterPool {
    fn start(kind: EngineKind, db: Arc<Database>, threads: usize) -> Self {
        let workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(BRANCHES, ACCOUNTS));
        workload.setup(&db).unwrap();
        let engine = build_engine_with(kind, db, DoraConfig::for_tests());
        engine.bind(workload, 2).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let writers = (0..threads as u64)
            .map(|seed| {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5EED ^ seed);
                    while !stop.load(Ordering::Relaxed) {
                        engine.execute_one(&mut rng);
                    }
                })
            })
            .collect();
        Self {
            engine,
            stop,
            writers,
        }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        for writer in self.writers {
            writer.join().unwrap();
        }
        self.engine.shutdown();
    }
}

/// Everything one snapshot shows of the TPC-B state: the three balance
/// totals, plus the visible history rows' transaction ids and delta sum.
#[derive(Debug, PartialEq)]
struct View {
    branch: f64,
    teller: f64,
    account: f64,
    history_sum: f64,
    history_tids: Vec<i64>,
}

fn view_at(db: &Database, snapshot: &Arc<Snapshot>) -> View {
    let total = |table: &str, column: usize| {
        let id = db.table_id(table).unwrap();
        let txn = db.begin_snapshot(Arc::clone(snapshot));
        let mut sum = 0.0;
        db.scan_table(&txn, id, CcMode::Full, |_, row| {
            sum += row[column].as_float().unwrap_or(0.0);
        })
        .unwrap();
        db.commit(&txn).unwrap();
        sum
    };
    let history = db.table_id("history_b").unwrap();
    let txn = db.begin_snapshot(Arc::clone(snapshot));
    let mut history_sum = 0.0;
    let mut history_tids = Vec::new();
    db.scan_table(&txn, history, CcMode::Full, |_, row| {
        history_sum += row[3].as_float().unwrap_or(0.0);
        history_tids.push(row[4].as_int().unwrap());
    })
    .unwrap();
    db.commit(&txn).unwrap();
    history_tids.sort_unstable();
    View {
        branch: total("branch", 1),
        teller: total("teller", 2),
        account: total("account", 2),
        history_sum,
        history_tids,
    }
}

fn assert_consistent(label: &str, probe: usize, view: &View) {
    for (name, total) in [
        ("teller", view.teller),
        ("account", view.account),
        ("history", view.history_sum),
    ] {
        assert!(
            (view.branch - total).abs() < 1e-6,
            "{label} probe {probe}: branch total {} disagrees with {name} total {} — \
             the snapshot exposed an uncommitted or torn state",
            view.branch,
            total
        );
    }
    assert_eq!(
        view.history_tids.len(),
        view.history_tids.iter().collect::<HashSet<_>>().len(),
        "{label} probe {probe}: duplicate history rows visible"
    );
}

/// Snapshots taken while both engines commit transfers at full speed are
/// transaction-consistent, tie exactly to the visible commit records,
/// re-read identically, and cost the reader zero lock acquisitions.
#[test]
fn snapshots_stay_consistent_and_repeatable_under_concurrent_writers() {
    for kind in EngineKind::ALL {
        let db = Database::for_tests();
        let pool = WriterPool::start(kind, Arc::clone(&db), 4);
        let label = kind.label();

        let before = current_thread_snapshot();
        let mut last_history = 0usize;
        for probe in 0..25 {
            let snapshot = Arc::new(pool.engine.snapshot());
            let first = view_at(&db, &snapshot);
            assert_consistent(label, probe, &first);

            // Repeatability: the writers keep committing, the view must not.
            let again = view_at(&db, &snapshot);
            assert_eq!(
                first, again,
                "{label} probe {probe}: the same snapshot returned different rows"
            );

            // Snapshots pinned later never travel backwards.
            assert!(
                first.history_tids.len() >= last_history,
                "{label} probe {probe}: a newer snapshot saw fewer commits"
            );
            last_history = first.history_tids.len();
        }
        let delta = current_thread_snapshot().since(&before);
        for counter in [
            CounterKind::RowLevelLock,
            CounterKind::HigherLevelLock,
            CounterKind::DoraLocalLock,
        ] {
            assert_eq!(
                delta.counter(counter),
                0,
                "{label}: snapshot reader acquired {counter:?} locks"
            );
        }
        assert!(
            delta.counter(CounterKind::SnapshotReads) > 0,
            "{label}: reads did not go through the snapshot path"
        );

        pool.stop();

        // Quiesced, a fresh snapshot agrees with a classic locked read.
        let snapshot = Arc::new(db.snapshot());
        let quiesced = view_at(&db, &snapshot);
        assert_consistent(label, usize::MAX, &quiesced);
        let history = db.table_id("history_b").unwrap();
        assert_eq!(
            quiesced.history_tids.len(),
            db.row_count(history).unwrap(),
            "{label}: final snapshot must see every committed transaction"
        );
    }
}

/// With asynchronous group commit and early lock release, *durable*
/// snapshots never show ELR ghosts: every transaction visible through one
/// survives a crash cut at per-stream flush horizons captured afterwards.
#[test]
fn durable_snapshots_never_observe_elr_ghosts() {
    let config = SystemConfig {
        // A simulated device latency so commits genuinely spend time in the
        // not-yet-durable window the ghosts would hide in.
        log_flush_micros: 50,
        durability: DurabilityConfig {
            group_commit: true,
            early_lock_release: true,
            reclaim_log_at_checkpoint: false,
            ..DurabilityConfig::default()
        }
        .with_log_streams(3),
        ..SystemConfig::for_tests()
    };
    for kind in EngineKind::ALL {
        let db = Database::new(config.clone());
        let pool = WriterPool::start(kind, Arc::clone(&db), 3);
        let label = kind.label();

        for probe in 0..8 {
            // Order matters: pin the durable horizon first, then capture the
            // flush horizons — the cut can only be *ahead* of whatever made
            // the snapshot's transactions durable, never behind.
            let snapshot = Arc::new(db.snapshot_durable());
            let view = view_at(&db, &snapshot);
            assert_consistent(label, probe, &view);
            let cuts: Vec<_> = (0..db.log_manager().stream_count())
                .map(|stream| {
                    db.log_manager()
                        .flushed_lsn(dora_repro::storage::log::StreamId(stream))
                })
                .collect();

            let replica = Database::new(config.clone());
            let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
            workload.create_schema(&replica).unwrap();
            workload.load(&replica).unwrap();
            db.recover_prefixes_into(&replica, &cuts).unwrap();

            let history = replica.table_id("history_b").unwrap();
            let mut recovered = HashSet::new();
            let txn = replica.begin();
            replica
                .scan_table(&txn, history, CcMode::Full, |_, row| {
                    recovered.insert(row[4].as_int().unwrap());
                })
                .unwrap();
            replica.commit(&txn).unwrap();

            for tid in &view.history_tids {
                assert!(
                    recovered.contains(tid),
                    "{label} probe {probe}: durable snapshot showed transaction {tid}, \
                     which a crash at cuts {cuts:?} loses — an ELR ghost"
                );
            }
        }
        pool.stop();
    }
}

/// Version history is bounded: chains accumulate while a snapshot pins them
/// and are reclaimed once it releases.
#[test]
fn version_chains_are_reclaimed_after_the_last_snapshot_releases() {
    let db = Database::for_tests();
    let pool = WriterPool::start(EngineKind::Dora, Arc::clone(&db), 2);

    // Pin an early horizon so every later update has to keep history.
    let pinned = Arc::new(db.snapshot());
    while db.mvcc_stats().versions < 200 {
        std::thread::yield_now();
    }
    pool.stop();

    let held = db.mvcc_stats().versions;
    assert!(held >= 200, "writers must have accumulated history");
    drop(pinned);

    // With no snapshot left alive, one collection pass prunes everything
    // behind the published horizon.
    db.version_store().gc_once();
    let after = db.mvcc_stats();
    assert!(
        after.versions < held,
        "GC reclaimed nothing ({held} -> {} versions)",
        after.versions
    );
    assert_eq!(
        after.oldest_snapshot, None,
        "no snapshot may remain registered"
    );
}
