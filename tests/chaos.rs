//! Chaos property test: a seeded deterministic fault schedule — transient
//! log-device write errors, latency spikes, flusher stalls, injected
//! executor panics — drives both execution engines under concurrent load,
//! and the self-healing paths must keep every promise the clean system
//! makes:
//!
//! * **Exact accounting** — every submission resolves to exactly one
//!   [`SubmitOutcome`]; nothing hangs, nothing double-reports.
//! * **No torn transactions after a crash mid-chaos** — cutting arbitrary
//!   per-stream log prefixes (a crash at any instant of the chaotic run)
//!   and replaying yields exactly the fenced transaction set, and money is
//!   conserved behind every cut.
//! * **Cross-engine convergence** — the same submission list, retried only
//!   through outcomes that are safe to resubmit, leaves Baseline and DORA
//!   with identical balance tables.
//!
//! The fault rates are chosen so that with the healing paths on (flusher
//! write retries, supervision, server-side abort retries) no log stream
//! ever fails permanently — the schedule is a pure function of the seed,
//! so this holds on every run, not just probably.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use dora_repro::common::prelude::*;
use dora_repro::server::{AdmissionConfig, RetryPolicy, Server, ServerConfig, SubmitOutcome};
use dora_repro::storage::{Database, Lsn};
use dora_repro::workloads::{TpcB, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const BRANCHES: i64 = 3;
const ACCOUNTS: i64 = 40;
const STREAMS: usize = 3;
const CLIENTS: usize = 4;
const TXNS_PER_CLIENT: usize = 60;

/// Moderate chaos with every self-healing path on. `max_write_retries` is
/// set high enough that a stream surviving needs no luck: at a 5% error
/// rate, seventeen consecutive failing draws never appear in this seed's
/// schedule (and the schedule is deterministic).
fn chaos_config(seed: u64) -> SystemConfig {
    SystemConfig {
        log_flush_micros: 10,
        durability: DurabilityConfig::default().with_log_streams(STREAMS),
        faults: FaultConfig {
            seed,
            device_error_rate: 0.05,
            device_spike_rate: 0.05,
            device_spike_micros: 200,
            flusher_stall_rate: 0.01,
            flusher_stall_micros: 500,
            executor_panic_rate: 0.02,
            max_write_retries: 16,
            retry_backoff_micros: 20,
        },
        ..SystemConfig::for_tests()
    }
}

fn open_server(db: &Arc<Database>, workload: &Arc<TpcB>, kind: EngineKind) -> Server {
    Server::open(
        Arc::clone(db),
        Arc::clone(workload) as Arc<dyn Workload>,
        ServerConfig::for_tests(kind)
            .with_admission(Some(AdmissionConfig {
                max_active: 4,
                max_queued: 8,
            }))
            .with_retry(RetryPolicy::retries(2)),
    )
    .expect("open server")
}

fn account_update_template(server: &Server, workload: &Arc<TpcB>) -> dora_repro::server::Statement {
    let spec = Arc::clone(workload);
    server.prepare_template(TpcB::ACCOUNT_UPDATE, move |db, params| {
        match params.as_slice() {
            [Value::Int(branch), Value::Int(account), Value::Int(teller), Value::Float(amount)] => {
                spec.account_update_program(db, *branch, *account, *teller, *amount)
            }
            _ => Err(DbError::InvalidOperation(
                "tpcb binding: [branch, account, teller, amount]".to_string(),
            )),
        }
    })
}

fn balance_total(db: &Database, table: &str, column: usize) -> f64 {
    let id = db.table_id(table).unwrap();
    let txn = db.begin();
    let mut total = 0.0;
    db.scan_table(&txn, id, CcMode::Full, |_, row| {
        total += row[column].as_float().unwrap_or(0.0);
    })
    .unwrap();
    db.commit(&txn).unwrap();
    total
}

fn assert_money_conserved(db: &Database, context: &str) {
    let branches = balance_total(db, "branch", 1);
    let tellers = balance_total(db, "teller", 2);
    let accounts = balance_total(db, "account", 2);
    assert!(
        (branches - tellers).abs() < 1e-6 && (tellers - accounts).abs() < 1e-6,
        "{context}: money not conserved: {branches} {tellers} {accounts}"
    );
}

/// A fresh database with the TPC-B schema and seed rows, ready for replay.
fn fresh_replica() -> Arc<Database> {
    // Faults off in the replica: recovery itself is not under test for
    // device errors here, only the surviving log's integrity.
    let fresh = Database::new(SystemConfig {
        faults: FaultConfig::default(),
        ..chaos_config(0)
    });
    let workload = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    workload.create_schema(&fresh).unwrap();
    workload.load(&fresh).unwrap();
    fresh
}

/// Replays the log up to per-stream cuts and checks the two crash
/// invariants: the replayed set equals the fenced-inside-the-cuts set (one
/// history row per TPC-B transaction) and money is conserved.
fn check_cuts(kind: EngineKind, db: &Database, cuts: &[Lsn]) {
    let fresh = fresh_replica();
    db.recover_prefixes_into(&fresh, cuts).unwrap();
    let history = fresh.table_id("history_b").unwrap();
    let fenced: HashSet<TxnId> = db
        .log_manager()
        .committed_changes_in_prefixes(cuts)
        .iter()
        .map(|r| r.txn)
        .collect();
    assert_eq!(
        fresh.row_count(history).unwrap(),
        fenced.len(),
        "{}: cuts {cuts:?} replayed a torn or ghost transaction",
        kind.label()
    );
    assert_money_conserved(&fresh, &format!("{} cuts {cuts:?}", kind.label()));
}

#[test]
fn chaos_flood_accounts_exactly_and_any_crash_recovers_consistently() {
    silence_injected_panics();
    for kind in EngineKind::ALL {
        let db = Database::new(chaos_config(0xC4A0 + kind as u64));
        let workload = Arc::new(TpcB::with_accounts(BRANCHES, ACCOUNTS));
        workload.setup(&db).unwrap();
        let server = Arc::new(open_server(&db, &workload, kind));
        let statement = account_update_template(&server, &workload);

        // submitted, committed, aborted, gave-up, shed, timed-out, failed.
        let tally: Arc<[AtomicU64; 7]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let server = Arc::clone(&server);
                let statement = statement.clone();
                let workload = Arc::clone(&workload);
                let tally = Arc::clone(&tally);
                thread::spawn(move || {
                    let session = server.session_with_window(1);
                    let mut rng = SmallRng::seed_from_u64(0x0DDB411 + client as u64);
                    for _ in 0..TXNS_PER_CLIENT {
                        let (branch, _, account, teller, amount) = workload.inputs(&mut rng);
                        let params = vec![
                            Value::Int(branch),
                            Value::Int(account),
                            Value::Int(teller),
                            Value::Float(amount),
                        ];
                        let outcome = session.execute_with(&statement, &params);
                        tally[0].fetch_add(1, Ordering::Relaxed);
                        let bucket = match outcome {
                            SubmitOutcome::Committed => 1,
                            SubmitOutcome::Aborted => 2,
                            SubmitOutcome::GaveUp => 3,
                            SubmitOutcome::Shed => 4,
                            SubmitOutcome::TimedOut => 5,
                            SubmitOutcome::Failed => 6,
                        };
                        tally[bucket].fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        server.close();

        // Every submission accounted exactly once.
        let counts: Vec<u64> = tally.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(
            counts[0],
            (CLIENTS * TXNS_PER_CLIENT) as u64,
            "{}: lost submissions",
            kind.label()
        );
        assert_eq!(
            counts[0],
            counts[1..].iter().sum::<u64>(),
            "{}: submitted != sum of outcomes ({counts:?})",
            kind.label()
        );
        assert!(counts[1] > 0, "{}: chaos drowned all commits", kind.label());
        // The healing config must never fail a stream for good: no ghost
        // commits, ever (deterministic given the seed).
        assert_eq!(counts[6], 0, "{}: durability lost for good", kind.label());

        // The plan actually fired: the device error site drew and the
        // executor panic site drew (per-database plan, so no cross-test
        // interference).
        let faults = db.faults();
        assert!(
            faults.draws(FaultSite::DeviceWriteError) > 0,
            "{}: no device writes drew a fault decision",
            kind.label()
        );
        assert!(
            faults.draws(FaultSite::ExecutorPanic) > 0,
            "{}: no action drew a panic decision",
            kind.label()
        );

        // Live state is consistent despite aborts, panics and retries.
        assert_money_conserved(&db, kind.label());

        // Crash at any instant of the chaotic run: nothing flushed,
        // everything flushed, and a dozen random per-stream torn prefixes.
        let lens: Vec<u64> = db
            .log_manager()
            .records_snapshot()
            .iter()
            .map(|s| s.len() as u64)
            .collect();
        assert_eq!(lens.len(), STREAMS);
        let full: Vec<Lsn> = lens.iter().map(|&n| Lsn(n)).collect();
        check_cuts(kind, &db, &[Lsn(0); STREAMS]);
        check_cuts(kind, &db, &full);
        let mut rng = SmallRng::seed_from_u64(0x70 + kind as u64);
        for _ in 0..12 {
            let cuts: Vec<Lsn> = lens.iter().map(|&n| Lsn(rng.random_range(0..=n))).collect();
            check_cuts(kind, &db, &cuts);
        }
    }
}

/// Balance column of every row of a TPC-B table, keyed by id.
fn balances_by_key(db: &Database, table: &str, column: usize) -> BTreeMap<i64, f64> {
    let id = db.table_id(table).unwrap();
    let txn = db.begin();
    let mut rows = BTreeMap::new();
    db.scan_table(&txn, id, CcMode::Full, |_, row| {
        rows.insert(row[0].as_int().unwrap(), row[column].as_float().unwrap());
    })
    .unwrap();
    db.commit(&txn).unwrap();
    rows
}

#[test]
fn both_engines_converge_to_identical_tables_under_the_same_fault_schedule() {
    silence_injected_panics();

    // One fixed submission list, drawn once.
    let spec = TpcB::with_accounts(BRANCHES, ACCOUNTS);
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let bindings: Vec<(i64, i64, i64, f64)> = (0..150)
        .map(|_| {
            let (branch, _, account, teller, amount) = spec.inputs(&mut rng);
            (branch, account, teller, amount)
        })
        .collect();

    // (account balances, teller balances, history row count) per engine.
    type EngineTables = (BTreeMap<i64, f64>, BTreeMap<i64, f64>, u64);
    let mut per_engine: Vec<EngineTables> = Vec::new();
    for kind in EngineKind::ALL {
        // Identical fault seed for both engines: same per-site schedules.
        let db = Database::new(chaos_config(0xD1CE));
        let workload = Arc::new(TpcB::with_accounts(BRANCHES, ACCOUNTS));
        workload.setup(&db).unwrap();
        let server = open_server(&db, &workload, kind);
        let statement = account_update_template(&server, &workload);
        let session = server.session();

        for &(branch, account, teller, amount) in &bindings {
            let params = vec![
                Value::Int(branch),
                Value::Int(account),
                Value::Int(teller),
                Value::Float(amount),
            ];
            // Resubmit only through outcomes that never executed or rolled
            // back fully; a Failed (ghost commit) must never be re-run, and
            // must never occur under the healing config.
            let mut outcome = session.execute_with(&statement, &params);
            let mut attempts = 0;
            while !outcome.is_committed() {
                assert!(
                    outcome.is_safe_to_resubmit(),
                    "{}: unsafe outcome {outcome:?} for {params:?}",
                    kind.label()
                );
                attempts += 1;
                assert!(
                    attempts < 50,
                    "{}: {params:?} refuses to commit",
                    kind.label()
                );
                outcome = session.execute_with(&statement, &params);
            }
        }
        server.close();

        assert_money_conserved(&db, kind.label());
        let history = db.table_id("history_b").unwrap();
        per_engine.push((
            balances_by_key(&db, "account", 2),
            balances_by_key(&db, "teller", 2),
            db.row_count(history).unwrap() as u64,
        ));
    }

    let (baseline_accounts, baseline_tellers, baseline_history) = &per_engine[0];
    let (dora_accounts, dora_tellers, dora_history) = &per_engine[1];
    // Each binding committed exactly once on each engine, so the engines
    // must agree on every single balance (floating-point sums of the same
    // multiset of amounts; orders differ, magnitudes keep error below 1e-6).
    assert_eq!(baseline_history, dora_history, "history row counts differ");
    assert_eq!(*baseline_history, bindings.len() as u64);
    for (ours, theirs, table) in [
        (baseline_accounts, dora_accounts, "account"),
        (baseline_tellers, dora_tellers, "teller"),
    ] {
        assert_eq!(ours.len(), theirs.len(), "{table}: row sets differ");
        for (key, balance) in ours {
            let other = theirs.get(key).unwrap_or_else(|| {
                panic!("{table} row {key} missing under DORA");
            });
            assert!(
                (balance - other).abs() < 1e-6,
                "{table} row {key} diverged: {balance} vs {other}"
            );
        }
    }
}
