//! The resource manager's dataset-resize protocol (Appendix A.2.1) exercised
//! while transactions keep flowing: routing-rule changes must never lose or
//! double-apply work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::adaptive::balanced_rule;
use dora_repro::dora::{ActionSpec, FlowGraph, LocalMode};
use dora_repro::dora::{DoraConfig, DoraEngine, ResourceManager, RoutingRule};
use dora_repro::storage::{ColumnDef, Database, TableSchema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn counters_db(rows: i64) -> (Arc<Database>, TableId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    for id in 1..=rows {
        db.load_row(table, vec![Value::Int(id), Value::Int(0)])
            .unwrap();
    }
    (db, table)
}

fn bump(table: TableId, id: i64) -> FlowGraph {
    let mut graph = FlowGraph::new();
    graph.push(ActionSpec::new(
        "bump",
        table,
        Key::int(id),
        LocalMode::Exclusive,
        move |ctx| {
            ctx.db
                .update_primary(ctx.txn, table, &Key::int(id), CcMode::None, |row| {
                    let n = row[1].as_int()?;
                    row[1] = Value::Int(n + 1);
                    Ok(())
                })
        },
    ));
    graph
}

#[test]
fn rebalances_while_transactions_keep_running() {
    let rows = 200i64;
    let (db, table) = counters_db(rows);
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, 4, 1, rows).unwrap();
    let manager = ResourceManager::new(DoraConfig::for_tests());

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4u64)
        .map(|seed| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut value = seed;
                while !stop.load(Ordering::Relaxed) {
                    value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let id = 1 + (value % rows as u64) as i64;
                    engine.execute(bump(table, id)).unwrap();
                    count += 1;
                }
                count
            })
        })
        .collect();

    // Swap the routing rule several times while the workers hammer the table.
    for boundaries in [
        vec![20, 40, 60],
        vec![50, 100, 150],
        vec![120, 160, 190],
        vec![50, 100, 150],
    ] {
        std::thread::sleep(std::time::Duration::from_millis(30));
        manager
            .rebalance(&engine, table, RoutingRule::Range { boundaries })
            .unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let total_executed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(total_executed > 0);

    // Every committed increment must be present exactly once: the sum of all
    // counters equals the number of executed transactions.
    let check = db.begin();
    let mut sum = 0i64;
    db.scan_table(&check, table, CcMode::Full, |_, row| {
        sum += row[1].as_int().unwrap();
    })
    .unwrap();
    db.commit(&check).unwrap();
    assert_eq!(
        sum as u64, total_executed,
        "no increment may be lost or applied twice across resizes"
    );
    engine.shutdown();
}

/// Resize control messages arriving *inside* a drained batch: the inboxes
/// are flooded with asynchronously submitted transactions so the executors
/// drain large batches, and several rebalances are issued back-to-back with
/// no settling time — each executor then finds `StartResize`/`FinishResize`
/// interleaved between actions of the same drain. The protocol must keep
/// the control messages' FIFO position relative to the actions: every
/// deferred action must be re-dispatched through the new rule exactly once.
#[test]
fn resize_messages_interleaved_inside_batches_stay_exact() {
    let rows = 120i64;
    let (db, table) = counters_db(rows);
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, 4, 1, rows).unwrap();
    let manager = ResourceManager::new(DoraConfig::for_tests());

    let mut submitted = 0u64;
    let mut pending = Vec::new();
    let mut value = 0x7EA5u64;
    let mut flood = |engine: &DoraEngine, pending: &mut Vec<_>, submitted: &mut u64| {
        for _ in 0..150 {
            value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = 1 + (value % rows as u64) as i64;
            pending.push(engine.submit(bump(table, id)).unwrap());
            *submitted += 1;
        }
    };

    // Flood, resize, flood, resize... with no sleeps: the StartResize /
    // FinishResize pairs land while hundreds of actions are still queued.
    for boundaries in [
        vec![10, 20, 30],
        vec![40, 80, 110],
        vec![30, 60, 90],
        vec![15, 95, 100],
    ] {
        flood(&engine, &mut pending, &mut submitted);
        manager
            .rebalance(&engine, table, RoutingRule::Range { boundaries })
            .unwrap();
    }
    flood(&engine, &mut pending, &mut submitted);
    for txn in pending {
        txn.wait().unwrap();
    }

    let check = db.begin();
    let mut sum = 0i64;
    db.scan_table(&check, table, CcMode::Full, |_, row| {
        sum += row[1].as_int().unwrap();
    })
    .unwrap();
    db.commit(&check).unwrap();
    assert_eq!(
        sum as u64, submitted,
        "a resize inside a drained batch lost or double-applied actions"
    );
    engine.shutdown();
}

/// The same exactly-once invariant, but with every new rule *synthesized by
/// the skew detector's rebalancer* from random load vectors — the split and
/// merge sequences the adaptive controller actually produces — instead of a
/// hand-picked boundary list.
#[test]
fn detector_synthesized_resizes_never_lose_or_double_apply() {
    let rows = 240i64;
    let executors = 4usize;
    let (db, table) = counters_db(rows);
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
    engine.bind_table(table, executors, 1, rows).unwrap();
    let manager = ResourceManager::new(DoraConfig::for_tests());

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4u64)
        .map(|seed| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut value = 0x5EED ^ seed;
                while !stop.load(Ordering::Relaxed) {
                    value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let id = 1 + (value % rows as u64) as i64;
                    engine.execute(bump(table, id)).unwrap();
                    count += 1;
                }
                count
            })
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut applied = 0usize;
    for _ in 0..12 {
        std::thread::sleep(std::time::Duration::from_millis(15));
        let current = engine.routing().rule(table).unwrap();
        // Random skewed load vector: what a drifting hot spot would report.
        let hot = rng.random_range(0usize..executors);
        let loads: Vec<u64> = (0..executors)
            .map(|i| {
                if i == hot {
                    rng.random_range(2_000u64..20_000)
                } else {
                    rng.random_range(0u64..300)
                }
            })
            .collect();
        if let Some(rule) = balanced_rule(&current, &loads, (1, rows), 2) {
            manager.rebalance(&engine, table, rule).unwrap();
            applied += 1;
        }
    }
    assert!(
        applied >= 4,
        "expected several synthesized resizes to apply"
    );

    std::thread::sleep(std::time::Duration::from_millis(15));
    stop.store(true, Ordering::Relaxed);
    let total_executed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    let check = db.begin();
    let mut sum = 0i64;
    db.scan_table(&check, table, CcMode::Full, |_, row| {
        sum += row[1].as_int().unwrap();
    })
    .unwrap();
    db.commit(&check).unwrap();
    assert_eq!(
        sum as u64, total_executed,
        "synthesized resize sequence lost or double-applied work"
    );
    engine.shutdown();
}
