//! The adaptive repartitioning acceptance test: under a zipfian (θ ≥ 0.99)
//! workload the engine must trigger at least one *live* resize — while
//! transactions keep flowing — and end the run with per-executor
//! serviced-action counts within 2× of each other, all without losing or
//! double-applying a single increment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dora_repro::common::config::AdaptiveConfig;
use dora_repro::common::prelude::*;
use dora_repro::dora::{DoraConfig, DoraEngine, RoutingRule};
use dora_repro::engine::{DoraExecution, ExecutionEngine};
use dora_repro::storage::Database;
use dora_repro::workloads::{SkewedCounters, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const KEYS: i64 = 400;
const EXECUTORS: usize = 4;
const CLIENTS: u64 = 4;

fn ratio(window: &[u64]) -> f64 {
    let max = window.iter().copied().max().unwrap_or(0).max(1);
    let min = window.iter().copied().min().unwrap_or(0).max(1);
    max as f64 / min as f64
}

#[test]
fn zipfian_load_triggers_live_resizes_and_balances_executors() {
    let db = Database::for_tests();
    let workload: Arc<dyn Workload> = Arc::new(SkewedCounters::new(KEYS, 0.99));
    workload.setup(&db).unwrap();

    let config = DoraConfig {
        adaptive: AdaptiveConfig::eager(),
        ..DoraConfig::for_tests()
    };
    let execution = Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
        Arc::clone(&db),
        config,
    ))));
    execution.bind(Arc::clone(&workload), EXECUTORS).unwrap();
    let table = db.table_id("skewed_counters").unwrap();
    let initial_rule = execution.dora().routing().rule(table).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|seed| {
            let execution = Arc::clone(&execution);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xADA7 + seed);
                let mut committed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if execution.execute_one(&mut rng) == TxnOutcome::Committed {
                        committed += 1;
                    }
                }
                committed
            })
        })
        .collect();

    // Let the controller adapt; declare success once at least one resize has
    // happened and a fresh measurement window is balanced. The loop gives
    // slow CI machines time to converge without making fast ones wait.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut balanced_window: Option<Vec<u64>> = None;
    while Instant::now() < deadline {
        let mark = execution.dora().executor_loads(table).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let now = execution.dora().executor_loads(table).unwrap();
        let window: Vec<u64> = now
            .iter()
            .zip(&mark)
            .map(|(n, m)| n.saturating_sub(*m))
            .collect();
        if execution.adaptive_resizes() >= 1
            && window.iter().sum::<u64>() > 100
            && ratio(&window) <= 2.0
        {
            balanced_window = Some(window);
            break;
        }
    }
    stop.store(true, Ordering::Relaxed);
    let committed: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();

    let resizes = execution.adaptive_resizes();
    assert!(
        resizes >= 1,
        "theta=0.99 load must trigger at least one live resize"
    );
    let window = balanced_window.unwrap_or_else(|| {
        panic!(
            "no balanced window within the deadline; resizes={resizes}, rule={:?}",
            execution.dora().routing().rule(table)
        )
    });
    assert!(
        ratio(&window) <= 2.0,
        "per-executor serviced counts must end within 2x: {window:?}"
    );

    let final_rule = execution.dora().routing().rule(table).unwrap();
    assert_ne!(
        initial_rule, final_rule,
        "the routing rule must actually have moved"
    );
    match &final_rule {
        RoutingRule::Range { boundaries } => {
            assert_eq!(boundaries.len(), EXECUTORS - 1);
            assert!(
                boundaries.windows(2).all(|w| w[0] < w[1]),
                "boundaries must stay strictly increasing: {boundaries:?}"
            );
        }
        other => panic!("adaptive rule must stay a range rule, got {other:?}"),
    }

    // No increment may be lost or applied twice across however many resizes
    // happened mid-flight.
    let check = db.begin();
    let mut sum = 0i64;
    db.scan_table(&check, table, CcMode::Full, |_, row| {
        sum += row[1].as_int().unwrap();
    })
    .unwrap();
    db.commit(&check).unwrap();
    assert_eq!(
        sum as u64, committed,
        "increments lost or double-applied across live resizes"
    );

    execution.shutdown();
}
