//! The batched executor message path: drains must preserve per-source FIFO
//! order of actions, the per-message baseline mode must stay semantically
//! equivalent, and the batching counters must stay consistent with the
//! message counts.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{ActionSpec, DoraConfig, DoraEngine, FlowGraph, LocalMode};
use dora_repro::metrics::CounterKind;
use dora_repro::storage::{ColumnDef, Database, TableSchema};

fn counters_db(rows: i64) -> (Arc<Database>, TableId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    for id in 1..=rows {
        db.load_row(table, vec![Value::Int(id), Value::Int(0)])
            .unwrap();
    }
    (db, table)
}

/// A single-action transaction applying `f` to the counter at `id`.
fn apply_graph(table: TableId, id: i64, f: impl Fn(i64) -> i64 + Send + 'static) -> FlowGraph {
    let mut graph = FlowGraph::new();
    graph.push(ActionSpec::new(
        "apply",
        table,
        Key::int(id),
        LocalMode::Exclusive,
        move |ctx| {
            ctx.db
                .update_primary(ctx.txn, table, &Key::int(id), CcMode::None, |row| {
                    let n = row[1].as_int()?;
                    row[1] = Value::Int(f(n));
                    Ok(())
                })
        },
    ));
    graph
}

fn counter_value(db: &Database, table: TableId, id: i64) -> i64 {
    let check = db.begin();
    let (_, row) = db
        .probe_primary(&check, table, &Key::int(id), false, CcMode::Full)
        .unwrap()
        .unwrap();
    let n = row[1].as_int().unwrap();
    db.commit(&check).unwrap();
    n
}

/// Non-commutative updates submitted asynchronously from one source thread
/// must apply in submission order even when the executor drains them in
/// batches: `n -> 3n+1` then `n -> n+7` gives a different result in any
/// other order, so the final value pins the exact sequence.
#[test]
fn batched_drain_preserves_per_source_fifo_order() {
    let (db, table) = counters_db(4);
    // A single executor serves the whole domain, so every submission lands
    // in the same inbox and large batches actually form.
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::default());
    engine.bind_table(table, 1, 1, 4).unwrap();

    let rounds = 200i64;
    let mut expected = 0i64;
    let mut pending = Vec::new();
    for round in 0..rounds {
        if round % 2 == 0 {
            expected = expected.wrapping_mul(3).wrapping_add(1);
            pending.push(
                engine
                    .submit(apply_graph(table, 1, |n| n.wrapping_mul(3).wrapping_add(1)))
                    .unwrap(),
            );
        } else {
            expected = expected.wrapping_add(7);
            pending.push(
                engine
                    .submit(apply_graph(table, 1, |n| n.wrapping_add(7)))
                    .unwrap(),
            );
        }
    }
    for txn in pending {
        txn.wait().unwrap();
    }
    assert_eq!(
        counter_value(&db, table, 1),
        expected,
        "a reordered drain would produce a different fold"
    );
    engine.shutdown();
}

/// Two source threads interleaving non-commutative updates on *different*
/// counters: batching may interleave the sources arbitrarily, but each
/// source's own sequence must stay in order.
#[test]
fn batched_drain_keeps_each_source_sequential() {
    let (db, table) = counters_db(4);
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::default()));
    engine.bind_table(table, 1, 1, 4).unwrap();

    let rounds = 150i64;
    let handles: Vec<_> = [1i64, 2i64]
        .into_iter()
        .map(|id| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut expected = 0i64;
                let mut pending = Vec::new();
                for round in 0..rounds {
                    if (round + id) % 2 == 0 {
                        expected = expected.wrapping_mul(3).wrapping_add(id);
                        pending.push(engine.submit(apply_graph(table, id, move |n| {
                            n.wrapping_mul(3).wrapping_add(id)
                        })));
                    } else {
                        expected = expected.wrapping_add(7);
                        pending.push(engine.submit(apply_graph(table, id, |n| n.wrapping_add(7))));
                    }
                }
                for txn in pending {
                    txn.unwrap().wait().unwrap();
                }
                expected
            })
        })
        .collect();
    let expected: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(counter_value(&db, table, 1), expected[0]);
    assert_eq!(counter_value(&db, table, 2), expected[1]);
    engine.shutdown();
}

/// The per-message baseline (`message_batching: false`) must preserve
/// exactly-once application — it is slower, not different.
#[test]
fn per_message_mode_preserves_exactly_once() {
    let (db, table) = counters_db(100);
    let config = DoraConfig {
        message_batching: false,
        ..DoraConfig::default()
    };
    let engine = Arc::new(DoraEngine::new(Arc::clone(&db), config));
    engine.bind_table(table, 4, 1, 100).unwrap();

    let threads = 4i64;
    let per_thread = 100i64;
    let handles: Vec<_> = (0..threads)
        .map(|seed| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                let mut value = 0xACE ^ seed as u64;
                for _ in 0..per_thread {
                    value = value.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let id = 1 + (value % 100) as i64;
                    // Multi-action transactions may abort as deadlock victims
                    // in this mode (dispatches are not latched atomically);
                    // single-action ones must all commit.
                    engine
                        .execute(apply_graph(table, id, |n| n + 1))
                        .expect("single-action txns cannot deadlock");
                    committed += 1;
                }
                committed
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    let check = db.begin();
    let mut sum = 0i64;
    db.scan_table(&check, table, CcMode::Full, |_, row| {
        sum += row[1].as_int().unwrap();
    })
    .unwrap();
    db.commit(&check).unwrap();
    assert_eq!(
        sum as u64, total,
        "per-message mode lost or duplicated work"
    );
    engine.shutdown();
}

/// The batching counters stay consistent with the message counts: every
/// batch carries at least one message on both the producer and the consumer
/// side, so neither counter may outrun `DoraMessages`. (Exact deltas cannot
/// be asserted here — the global metrics registry is shared by concurrently
/// running tests — but these inequalities hold monotonically across every
/// increment site.)
#[test]
fn batching_counters_never_outrun_messages() {
    let before = dora_repro::metrics::global().snapshot();
    let (db, table) = counters_db(16);
    let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::default());
    engine.bind_table(table, 2, 1, 16).unwrap();
    let mut pending = Vec::new();
    for round in 0..64i64 {
        let id = 1 + (round % 16);
        pending.push(engine.submit(apply_graph(table, id, |n| n + 1)).unwrap());
    }
    for txn in pending {
        txn.wait().unwrap();
    }
    engine.shutdown();
    let delta = dora_repro::metrics::global().snapshot().since(&before);
    let messages = delta.counter(CounterKind::DoraMessages);
    let batches = delta.counter(CounterKind::DispatchBatches);
    let drains = delta.counter(CounterKind::InboxDrains);
    assert!(batches > 0, "dispatches must be counted as batches");
    assert!(drains > 0, "consumer drains must be counted");
    assert!(
        batches <= messages,
        "every producer batch carries >= 1 message ({batches} batches, {messages} messages)"
    );
}
