//! Scratch review test: snapshot probe across a delete + re-insert of the
//! same key. DELETE BEFORE MERGING — review-only.

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::storage::{ColumnDef, Database, TableSchema};

fn accounts_db() -> (Arc<Database>, TableId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("owner", ValueType::Text),
                ColumnDef::new("balance", ValueType::Float),
            ],
            vec![0],
        ))
        .unwrap();
    (db, table)
}

fn account_row(id: i64, owner: &str, balance: f64) -> Row {
    vec![
        Value::Int(id),
        Value::Text(owner.into()),
        Value::Float(balance),
    ]
}

#[test]
fn snapshot_probe_survives_delete_then_reinsert() {
    let (db, table) = accounts_db();
    let setup = db.begin();
    db.insert(&setup, table, account_row(1, "alice", 100.0), CcMode::Full)
        .unwrap();
    db.commit(&setup).unwrap();

    let old = Arc::new(db.snapshot());

    // Delete key 1, then re-insert it (new RID), both after the snapshot.
    let deleter = db.begin();
    db.delete_primary(&deleter, table, &Key::int(1), CcMode::Full)
        .unwrap();
    db.commit(&deleter).unwrap();
    let inserter = db.begin();
    db.insert(
        &inserter,
        table,
        account_row(1, "alice-v2", 7.0),
        CcMode::Full,
    )
    .unwrap();
    db.commit(&inserter).unwrap();

    // The pinned snapshot predates both: it must still see the original row.
    let reader = db.begin_snapshot(Arc::clone(&old));
    let got = db
        .probe_primary(&reader, table, &Key::int(1), false, CcMode::Full)
        .unwrap();
    db.commit(&reader).unwrap();
    let (_, row) = got.expect("snapshot pinned before the delete must still see key 1");
    assert_eq!(row[1], Value::Text("alice".into()));
    assert_eq!(row[2], Value::Float(100.0));
}
