//! Property tests for the declarative transaction-program subsystem: for
//! randomly generated `TxnProgram`s,
//!
//! 1. `compile_dora()` tiles exactly over the steps — every step becomes
//!    exactly one action, phases split exactly at the RVP boundaries,
//!    secondary steps stay unrouted, and the serialized plan puts one action
//!    per phase — and
//! 2. executing the same seeded program sequence through the baseline
//!    compilation and through the DORA engine yields identical final table
//!    contents (the generic replacement for the per-workload cross-engine
//!    equivalence checks: any workload expressed in the DSL inherits this
//!    guarantee).

use std::sync::Arc;

use dora_repro::common::prelude::*;
use dora_repro::dora::{
    DoraConfig, DoraEngine, LocalMode, OnDuplicate, OnMissing, Step, TxnProgram,
};
use dora_repro::storage::{ColumnDef, Database, TableSchema, TxnHandle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KEYS: i64 = 40;

fn counters_db() -> (Arc<Database>, TableId) {
    let db = Database::for_tests();
    let table = db
        .create_table(TableSchema::new(
            "counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))
        .unwrap();
    for id in 1..=KEYS {
        db.load_row(table, vec![Value::Int(id), Value::Int(0)])
            .unwrap();
    }
    (db, table)
}

/// One generated step description — kept as data so the same description can
/// deterministically build identical `Step`s for both compilations.
#[derive(Debug, Clone, Copy)]
enum GenStep {
    /// Add `delta` to counter `key` (aborts the txn if the key is missing,
    /// e.g. deleted by an earlier program of the sequence).
    Update { key: i64, delta: i64 },
    /// Read counter `key`; aborts if missing.
    Read { key: i64 },
    /// Insert a fresh counter row.
    Insert { key: i64, value: i64 },
    /// Delete counter `key`; aborts if missing.
    Delete { key: i64 },
    /// An unrouted step: scan-count the table into the scratchpad.
    Secondary,
    /// A free-form routed step reading through the scratchpad.
    Custom { key: i64 },
}

fn build_step(table: TableId, gen: GenStep) -> Step {
    match gen {
        GenStep::Update { key, delta } => Step::update(
            "gen-update",
            table,
            Key::int(key),
            Key::int(key),
            OnMissing::Abort("update target missing"),
            move |_ctx, row| {
                let n = row[1].as_int()?;
                row[1] = Value::Int(n + delta);
                Ok(())
            },
        ),
        GenStep::Read { key } => Step::read(
            "gen-read",
            table,
            Key::int(key),
            Key::int(key),
            OnMissing::Abort("read target missing"),
            |_ctx, _row| Ok(()),
        ),
        GenStep::Insert { key, value } => Step::insert(
            "gen-insert",
            table,
            Key::int(key),
            OnDuplicate::Abort("already inserted"),
            move |_ctx| Ok(vec![Value::Int(key), Value::Int(value)]),
        ),
        GenStep::Delete { key } => Step::delete(
            "gen-delete",
            table,
            Key::int(key),
            Key::int(key),
            OnMissing::Abort("nothing to delete"),
        ),
        GenStep::Secondary => Step::secondary("gen-secondary", table, move |ctx| {
            let mut count = 0i64;
            ctx.db
                .scan_table(ctx.txn, table, CcMode::None, |_, _| count += 1)?;
            ctx.scratch.put("count", count);
            Ok(())
        }),
        GenStep::Custom { key } => Step::custom(
            "gen-custom",
            table,
            Key::int(key),
            LocalMode::Shared,
            move |ctx| {
                // Routed free-form step: probe through the context's CC mode.
                let _ = ctx
                    .db
                    .probe_primary(ctx.txn, table, &Key::int(key), false, ctx.cc())?;
                Ok(())
            },
        ),
    }
}

/// Generates a random program shape: distinct routed keys per program (so
/// concurrent actions of one phase never race on a record), random RVP
/// breaks, occasional secondary/insert/delete steps, occasionally the
/// serialized plan.
fn generate(rng: &mut SmallRng, fresh_base: i64) -> (Vec<GenStep>, Vec<bool>, bool) {
    let step_count = rng.random_range(1..=6usize);
    // Distinct keys for the routed steps.
    let mut keys: Vec<i64> = (1..=KEYS).collect();
    for i in (1..keys.len()).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        keys.swap(i, j);
    }
    let mut steps = Vec::with_capacity(step_count);
    let mut breaks = Vec::with_capacity(step_count.saturating_sub(1));
    for (index, &key) in keys.iter().enumerate().take(step_count) {
        let step = match rng.random_range(0..10u32) {
            0..=4 => GenStep::Update {
                key,
                delta: rng.random_range(1..=9u32) as i64,
            },
            5..=6 => GenStep::Read { key },
            7 => GenStep::Insert {
                key: fresh_base + rng.random_range(0..50u64) as i64,
                value: rng.random_range(0..100u64) as i64,
            },
            8 => GenStep::Delete {
                key: rng.random_range(1..=KEYS as u64) as i64,
            },
            _ => {
                if rng.random_range(0..2u32) == 0 {
                    GenStep::Secondary
                } else {
                    GenStep::Custom { key }
                }
            }
        };
        steps.push(step);
        if index + 1 < step_count {
            breaks.push(rng.random_range(0..3u32) == 0);
        }
    }
    let serial = rng.random_range(0..5u32) == 0;
    (steps, breaks, serial)
}

fn build_program(table: TableId, steps: &[GenStep], breaks: &[bool], serial: bool) -> TxnProgram {
    let mut program = TxnProgram::new("generated");
    for (index, gen) in steps.iter().enumerate() {
        program = program.step(build_step(table, *gen));
        if index < breaks.len() && breaks[index] {
            program = program.rvp();
        }
    }
    program.serialized(serial)
}

#[test]
fn compiled_graphs_tile_exactly_over_the_steps() {
    let (_db, table) = counters_db();
    let mut rng = SmallRng::seed_from_u64(0xD0_2A);
    for round in 0..200 {
        let (steps, breaks, serial) = generate(&mut rng, 1_000 + round * 100);
        let program = build_program(table, &steps, &breaks, serial);
        let step_count = program.step_count();
        let phase_count = program.phase_count();
        let secondary_count = program.secondary_count();
        assert_eq!(step_count, steps.len());

        let graph = program.compile_dora();
        // Every step lowers to exactly one action; none are dropped or
        // duplicated.
        assert_eq!(graph.action_count(), step_count, "steps: {steps:?}");
        if serial {
            // The DORA-S plan: one action per phase, program order.
            assert_eq!(graph.phase_count(), step_count);
            for phase in 0..graph.phase_count() {
                assert_eq!(graph.actions_in(phase), 1);
            }
        } else {
            // Phases split exactly at the RVP markers.
            assert_eq!(graph.phase_count(), phase_count, "steps: {steps:?}");
            let sizes: usize = (0..graph.phase_count()).map(|p| graph.actions_in(p)).sum();
            assert_eq!(sizes, step_count);
        }
        // Secondary steps stay unrouted through compilation.
        let described_secondary = graph
            .describe()
            .iter()
            .flatten()
            .filter(|entry| entry.contains("[secondary]"))
            .count();
        assert_eq!(described_secondary, secondary_count, "steps: {steps:?}");
    }
}

/// Runs a compiled baseline body as one transaction. The sequence is
/// single-threaded, so deadlock retries cannot occur: any error is a
/// deterministic program outcome and rolls the transaction back, exactly as
/// the DORA path does.
fn run_baseline(db: &Arc<Database>, body: impl Fn(&Database, &TxnHandle) -> DbResult<()>) {
    let txn = db.begin();
    match body(db, &txn) {
        Ok(()) => db.commit(&txn).unwrap(),
        Err(_) => {
            let _ = db.abort(&txn);
        }
    }
}

fn table_contents(db: &Database, table: TableId) -> Vec<(i64, i64)> {
    let txn = db.begin();
    let mut rows = Vec::new();
    db.scan_table(&txn, table, CcMode::Full, |_, row| {
        rows.push((row[0].as_int().unwrap(), row[1].as_int().unwrap()));
    })
    .unwrap();
    db.commit(&txn).unwrap();
    rows.sort_unstable();
    rows
}

#[test]
fn baseline_and_dora_compilations_of_the_same_sequence_agree() {
    let (db_base, table) = counters_db();
    let (db_dora, _) = counters_db();
    let engine = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
    // The routing domain covers the loaded keys plus every fresh key the
    // generator can produce for inserts.
    engine.bind_table(table, 2, 1, 20_000).unwrap();

    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    let mut committed = 0u32;
    let mut aborted = 0u32;
    for round in 0..120 {
        // One generated description, two identical programs, two compilers.
        let (steps, breaks, serial) = generate(&mut rng, 1_000 + round * 100);
        let base_program = build_program(table, &steps, &breaks, serial);
        let dora_program = build_program(table, &steps, &breaks, serial);

        run_baseline(&db_base, base_program.compile_baseline());
        match engine.execute(dora_program.compile_dora()) {
            Ok(()) => committed += 1,
            Err(_) => aborted += 1,
        }

        // Equivalence must hold after every single program, not just at the
        // end — a divergence would otherwise be maskable by later writes.
        assert_eq!(
            table_contents(&db_base, table),
            table_contents(&db_dora, table),
            "divergence after round {round}: {steps:?} breaks {breaks:?} serial {serial}"
        );
    }
    engine.shutdown();
    assert!(committed > 40, "only {committed} programs committed");
    assert!(aborted > 0, "the generator should produce some aborts");
}
