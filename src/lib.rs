//! Workspace facade re-exporting the public API of every crate.
pub use dora_common as common;
pub use dora_core as dora;
pub use dora_engine as engine;
pub use dora_metrics as metrics;
pub use dora_server as server;
pub use dora_storage as storage;
pub use dora_workloads as workloads;
