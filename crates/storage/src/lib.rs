//! A Shore-MT-like storage manager substrate, built from scratch.
//!
//! The DORA paper is an execution architecture layered *on top of* a
//! conventional storage engine (Shore-MT). To reproduce the paper we need
//! that substrate, with the specific properties the paper's analysis relies
//! on:
//!
//! * a **centralized, hierarchical lock manager** ([`lock`]) whose lock heads
//!   carry latched request lists — the component whose latch contention the
//!   paper measures and eliminates;
//! * **spin latches with contention accounting** ([`latch`]) so the harness
//!   can reproduce the time breakdowns of Figures 1–3;
//! * **slotted-page heap files** ([`page`], [`heap`]) addressed by RIDs,
//!   behind a **buffer pool** ([`buffer`]);
//! * **B-Tree indexes** ([`btree`]) including secondary indexes that store
//!   the routing fields and a `deleted` flag in their leaves, as DORA's
//!   secondary-action handling requires (Section 4.2.2);
//! * **ARIES-style write-ahead logging** ([`log`]) with per-transaction
//!   rollback and simulated flush-at-commit;
//! * a **transaction manager** ([`txn`]) doing strict two-phase locking for
//!   the conventional engine, with per-operation [`CcMode`] flags that let
//!   DORA bypass or reduce centralized concurrency control exactly as the
//!   paper's prototype modifies Shore-MT (Section 4.3).
//!
//! The [`Database`] facade in [`db`] ties these together behind the API both
//! execution engines (the baseline in `dora-engine` and DORA in `dora-core`)
//! program against.
//!
//! [`CcMode`]: dora_common::CcMode
//! [`Database`]: crate::db::Database

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod heap;
pub mod latch;
pub mod lock;
pub mod log;
pub mod mvcc;
pub mod page;
pub mod txn;

pub use catalog::{Catalog, ColumnDef, IndexSpec, TableSchema};
pub use db::{CommitHandle, Database, SecondaryEntry, TxnHandle};
pub use latch::{Latch, LatchGuard};
pub use lock::{LockId, LockManager, LockMode};
pub use log::{
    bind_executor_log_stream, bound_log_stream, Checkpoint, LogManager, LogRecord, LogRecordKind,
    Lsn, StreamId, StreamStats,
};
pub use mvcc::{ChainRead, MvccStats, Snapshot, VersionStore};
pub use txn::{TxnManager, TxnStatus};
