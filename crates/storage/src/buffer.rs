//! Buffer pool.
//!
//! Shore-MT keeps the database in a CLOCK-managed buffer pool; the paper's
//! experiments place the backing "disk" on an in-memory file system so the
//! CPU can be saturated. We reproduce the same structure: a [`PageStore`]
//! plays the role of the in-memory file system and the [`BufferPool`] caches
//! frames in front of it with a CLOCK replacement policy, pin counts and
//! dirty-page write-back. With the default configuration the working set fits
//! in the pool, exactly as in the paper, but the eviction path is real and
//! exercised by tests with tiny pools.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dora_common::prelude::*;
use dora_metrics::{incr, CounterKind, TimeCategory};

use crate::latch::Latch;
use crate::page::Page;

/// Key of a page across the whole database: which table's heap file it
/// belongs to and its page number within that file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Owning table.
    pub table: TableId,
    /// Page number within the table's heap file.
    pub page: PageId,
}

/// The "disk": an in-memory map from page key to the serialized page image.
///
/// This mirrors the paper's in-memory file system — durable enough to
/// exercise the write-back and recovery code paths, fast enough that the CPU,
/// not the I/O subsystem, is the bottleneck.
#[derive(Debug, Default)]
pub struct PageStore {
    pages: Mutex<HashMap<PageKey, Page>>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a page image back to the store.
    pub fn write(&self, key: PageKey, page: Page) {
        self.pages.lock().insert(key, page);
    }

    /// Reads a page image, if the page has ever been written back.
    pub fn read(&self, key: PageKey) -> Option<Page> {
        self.pages.lock().get(&key).cloned()
    }

    /// Number of page images in the store.
    pub fn len(&self) -> usize {
        self.pages.lock().len()
    }

    /// `true` if no page was ever written back.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A buffer-pool frame: a page plus replacement metadata. The page itself is
/// behind an `RwLock` acting as the page latch.
#[derive(Debug)]
pub struct Frame {
    /// The cached page. Readers take the lock shared, writers exclusive.
    pub page: RwLock<Page>,
    /// Number of active pins; a pinned frame cannot be evicted.
    pins: std::sync::atomic::AtomicU32,
    /// CLOCK reference bit.
    referenced: std::sync::atomic::AtomicBool,
    key: PageKey,
}

impl Frame {
    fn new(key: PageKey, page: Page) -> Self {
        Self {
            page: RwLock::new(page),
            pins: std::sync::atomic::AtomicU32::new(0),
            referenced: std::sync::atomic::AtomicBool::new(true),
            key,
        }
    }

    /// The page key this frame caches.
    pub fn key(&self) -> PageKey {
        self.key
    }

    /// Current pin count.
    pub fn pin_count(&self) -> u32 {
        self.pins.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A pinned frame. The pin is released when the guard drops, making the frame
/// evictable again.
#[derive(Debug)]
pub struct PinnedFrame {
    frame: Arc<Frame>,
}

impl PinnedFrame {
    /// Access the underlying frame (and through it, the page latch).
    pub fn frame(&self) -> &Frame {
        &self.frame
    }
}

impl std::ops::Deref for PinnedFrame {
    type Target = Frame;

    fn deref(&self) -> &Frame {
        &self.frame
    }
}

impl Drop for PinnedFrame {
    fn drop(&mut self) {
        self.frame
            .pins
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

struct PoolState {
    frames: HashMap<PageKey, Arc<Frame>>,
    clock: Vec<PageKey>,
    hand: usize,
}

/// CLOCK-managed buffer pool in front of a [`PageStore`].
pub struct BufferPool {
    state: Latch<PoolState>,
    store: Arc<PageStore>,
    capacity: usize,
    page_size: usize,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("page_size", &self.page_size)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool caching at most `capacity` pages of `page_size` bytes.
    pub fn new(store: Arc<PageStore>, capacity: usize, page_size: usize) -> Self {
        Self {
            state: Latch::new(PoolState {
                frames: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
            }),
            store,
            capacity: capacity.max(1),
            page_size,
        }
    }

    /// Page size used for newly allocated pages.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.state.lock(TimeCategory::OtherContention).frames.len()
    }

    /// Fetches (pinning) the frame for `key`, materializing it from the store
    /// or creating a fresh page if it was never written.
    pub fn pin(&self, key: PageKey) -> DbResult<PinnedFrame> {
        let mut state = self.state.lock(TimeCategory::OtherContention);
        if let Some(frame) = state.frames.get(&key) {
            incr(CounterKind::BufferHits);
            frame
                .pins
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            frame
                .referenced
                .store(true, std::sync::atomic::Ordering::Relaxed);
            return Ok(PinnedFrame {
                frame: Arc::clone(frame),
            });
        }
        incr(CounterKind::BufferMisses);
        if state.frames.len() >= self.capacity {
            self.evict_one(&mut state)?;
        }
        let page = self
            .store
            .read(key)
            .unwrap_or_else(|| Page::new(key.page, self.page_size));
        let frame = Arc::new(Frame::new(key, page));
        frame
            .pins
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        state.frames.insert(key, Arc::clone(&frame));
        state.clock.push(key);
        Ok(PinnedFrame { frame })
    }

    /// Writes every dirty cached page back to the store (checkpoint helper).
    pub fn flush_all(&self) {
        let state = self.state.lock(TimeCategory::OtherContention);
        for (key, frame) in state.frames.iter() {
            let mut page = frame.page.write();
            if page.is_dirty() {
                self.store.write(*key, page.clone());
                page.mark_clean();
            }
        }
    }

    /// CLOCK sweep: find an unpinned frame whose reference bit is clear,
    /// giving each referenced frame a second chance. Dirty victims are
    /// written back before being dropped.
    fn evict_one(&self, state: &mut PoolState) -> DbResult<()> {
        if state.clock.is_empty() {
            return Err(DbError::InvalidOperation(
                "buffer pool has no frames to evict".into(),
            ));
        }
        let mut sweeps = 0;
        let max_sweeps = state.clock.len() * 3;
        while sweeps < max_sweeps {
            let idx = state.hand % state.clock.len();
            state.hand = (state.hand + 1) % state.clock.len().max(1);
            let key = state.clock[idx];
            let evictable = {
                let frame = state.frames.get(&key).expect("clock entry has a frame");
                // Short-circuit keeps the reference bit untouched while the
                // frame is pinned.
                frame.pin_count() == 0
                    && !frame
                        .referenced
                        .swap(false, std::sync::atomic::Ordering::Relaxed)
            };
            if evictable {
                let frame = state.frames.remove(&key).expect("frame exists");
                state.clock.remove(idx);
                if state.hand > idx {
                    state.hand -= 1;
                }
                let mut page = frame.page.write();
                if page.is_dirty() {
                    self.store.write(key, page.clone());
                    page.mark_clean();
                }
                return Ok(());
            }
            sweeps += 1;
        }
        // Every frame is pinned: the pool is over-committed. Callers treat
        // this as "pool too small"; with realistic configurations it cannot
        // happen because each thread pins at most a couple of pages at once.
        Err(DbError::InvalidOperation(
            "all buffer pool frames are pinned".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table: u32, page: u32) -> PageKey {
        PageKey {
            table: TableId(table),
            page: PageId(page),
        }
    }

    #[test]
    fn pin_creates_fresh_page_and_hits_afterwards() {
        let store = Arc::new(PageStore::new());
        let pool = BufferPool::new(Arc::clone(&store), 8, 1024);
        {
            let pinned = pool.pin(key(1, 0)).unwrap();
            let mut page = pinned.page.write();
            page.insert(b"record").unwrap();
        }
        let pinned = pool.pin(key(1, 0)).unwrap();
        let page = pinned.page.read();
        assert_eq!(page.live_count(), 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let store = Arc::new(PageStore::new());
        let pool = BufferPool::new(Arc::clone(&store), 2, 512);
        {
            let pinned = pool.pin(key(1, 0)).unwrap();
            pinned.page.write().insert(b"zero").unwrap();
        }
        {
            let pinned = pool.pin(key(1, 1)).unwrap();
            pinned.page.write().insert(b"one").unwrap();
        }
        // Third page forces an eviction of one of the first two.
        let _pinned = pool.pin(key(1, 2)).unwrap();
        assert!(pool.cached_frames() <= 2);
        assert!(!store.is_empty());
        // Whatever was evicted can be read back with its contents intact.
        let p0 = pool.pin(key(1, 0)).unwrap();
        assert_eq!(p0.page.read().live_count(), 1);
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let store = Arc::new(PageStore::new());
        let pool = BufferPool::new(Arc::clone(&store), 2, 512);
        let p0 = pool.pin(key(1, 0)).unwrap();
        let p1 = pool.pin(key(1, 1)).unwrap();
        // Both frames pinned: a third pin must fail rather than evict.
        assert!(pool.pin(key(1, 2)).is_err());
        drop(p0);
        assert!(pool.pin(key(1, 2)).is_ok());
        drop(p1);
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let store = Arc::new(PageStore::new());
        let pool = BufferPool::new(Arc::clone(&store), 4, 512);
        {
            let pinned = pool.pin(key(3, 7)).unwrap();
            pinned.page.write().insert(b"x").unwrap();
        }
        assert!(store.is_empty());
        pool.flush_all();
        assert_eq!(store.len(), 1);
        assert_eq!(store.read(key(3, 7)).unwrap().live_count(), 1);
    }

    #[test]
    fn concurrent_pins_of_same_page_share_frame() {
        let store = Arc::new(PageStore::new());
        let pool = Arc::new(BufferPool::new(store, 8, 512));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let pinned = pool.pin(key(1, 0)).unwrap();
                        let mut page = pinned.page.write();
                        if page.live_count() == 0 {
                            page.insert(b"seed").unwrap();
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let pinned = pool.pin(key(1, 0)).unwrap();
        assert_eq!(pinned.page.read().live_count(), 1);
    }
}
