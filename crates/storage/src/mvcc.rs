//! Multi-version storage: version chains, snapshot horizons and the
//! version-chain garbage collector.
//!
//! Every committed write installs a new row version stamped with the
//! committing transaction's *global commit-order ticket* — the sequence the
//! fence protocol already mints while the writer's locks are still held, so
//! version order equals commit order by construction. A [`Snapshot`]
//! captures a ticket horizon and serves reads purely from the chains (plus
//! the untouched heap for rows no transaction ever modified), with no
//! centralized lock manager, no DORA routing and no local-lock-table probes
//! on the read path.
//!
//! The heap always holds the *newest* (possibly still uncommitted) bytes;
//! chains hold history. Rows that were only ever bulk-loaded or recovered
//! have no chain at all — they are "primordial", visible to every snapshot
//! straight from the heap. The first transactional touch of such a row seeds
//! its chain with a base version (sequence 0) carrying the pre-image
//! *before* the heap is mutated, so a concurrent snapshot read either finds
//! no chain (heap bytes are committed) or finds a chain whose base version
//! is exactly the committed pre-image — never a torn or uncommitted row.
//!
//! Two dense watermark clocks order everything:
//!
//! * `published` — a ticket enters a snapshot's world only once *every*
//!   ticket below it has had its versions installed, closing the race where
//!   a ticket has been drawn but its writes are not in the chains yet.
//! * `durable` — advanced only when a commit's fences actually hardened.
//!   [`VersionStore::durable_horizon`] therefore provably excludes ELR
//!   ghost commits (applied in memory, never durable): a ghost never
//!   advances the clock, so neither it nor anything after it on that clock
//!   is below the durable horizon.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use dora_common::prelude::*;
use dora_metrics::{incr, incr_by, CounterKind, ValueHistogram};

/// How often the background collector wakes to prune version chains. Kept
/// short: chains are pruned down to the oldest live snapshot, so a laggy
/// collector costs memory, never correctness.
const GC_INTERVAL: Duration = Duration::from_millis(10);

/// Number of chain shards; a power of two so the rid hash folds cheaply.
const SHARDS: usize = 64;

/// One row version: the row bytes as of commit ticket `seq`, or `None` when
/// the row did not exist at that ticket (pre-insert base or a delete).
#[derive(Debug, Clone)]
struct Version {
    seq: u64,
    row: Option<Bytes>,
}

/// A row's version history, ascending by commit ticket. The base entry
/// (ticket 0) is the copy-on-write pre-image seeded the first time a
/// primordial row is touched transactionally.
#[derive(Debug, Default)]
struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Installs `row` at `seq`, keeping the chain sorted. A repeated ticket
    /// (several writes by one transaction) keeps only the last write.
    fn install(&mut self, seq: u64, row: Option<Bytes>) -> bool {
        match self.versions.binary_search_by_key(&seq, |v| v.seq) {
            Ok(i) => {
                self.versions[i].row = row;
                false
            }
            Err(i) => {
                self.versions.insert(i, Version { seq, row });
                true
            }
        }
    }

    /// The newest version with ticket ≤ `horizon`, if any.
    fn at(&self, horizon: u64) -> Option<&Version> {
        self.versions
            .iter()
            .rev()
            .find(|version| version.seq <= horizon)
    }

    /// Drops every version older than the newest one at or below `bound`
    /// (which any snapshot at or above `bound` still needs as its base).
    /// Returns how many versions were reclaimed.
    fn prune(&mut self, bound: u64) -> usize {
        let keep_from = match self
            .versions
            .iter()
            .rposition(|version| version.seq <= bound)
        {
            Some(newest_visible) => newest_visible,
            None => return 0,
        };
        self.versions.drain(..keep_from).count()
    }

    /// `true` once the chain holds nothing but a single tombstone at or
    /// below `bound`: no snapshot can ever see this row again, the whole
    /// chain can go.
    fn is_dead(&self, bound: u64) -> bool {
        self.versions.len() == 1 && self.versions[0].row.is_none() && self.versions[0].seq <= bound
    }
}

/// What a chain lookup said about a row at a horizon.
#[derive(Debug)]
pub enum ChainRead {
    /// The row has no chain: it was never modified transactionally, so the
    /// heap bytes are committed and visible to every snapshot.
    Primordial,
    /// A chain exists but no version is visible at the horizon (the row was
    /// born after it) or the visible version is a delete.
    Invisible,
    /// The visible version's bytes.
    Visible(Bytes),
}

/// A dense watermark clock over the commit-ticket sequence: tickets are
/// marked done in any order, the frontier advances only through dense
/// prefixes. `frontier() == n` means every ticket `1..=n` is done.
#[derive(Debug, Default)]
struct WatermarkClock {
    frontier: AtomicU64,
    pending: Mutex<BTreeSet<u64>>,
}

impl WatermarkClock {
    fn mark(&self, seq: u64) {
        let mut pending = self.pending.lock();
        pending.insert(seq);
        let mut frontier = self.frontier.load(Ordering::Relaxed);
        while pending.remove(&(frontier + 1)) {
            frontier += 1;
        }
        self.frontier.store(frontier, Ordering::Release);
    }

    fn frontier(&self) -> u64 {
        self.frontier.load(Ordering::Acquire)
    }
}

/// Stop signal shared with the background collector thread.
#[derive(Default)]
struct GcSignal {
    stop: Mutex<bool>,
    cond: Condvar,
}

/// Aggregate health of the version store, for reports and tests.
#[derive(Debug, Clone)]
pub struct MvccStats {
    /// Live version chains (rows with any transactional history retained).
    pub chains: usize,
    /// Live versions across all chains.
    pub versions: usize,
    /// The published (snapshot-visible) ticket horizon.
    pub published: u64,
    /// The durable ticket horizon (never advanced past a lost commit).
    pub durable: u64,
    /// Horizon of the oldest live snapshot, if any.
    pub oldest_snapshot: Option<u64>,
    /// Distribution of live chain lengths.
    pub chain_lengths: ValueHistogram,
}

/// The multi-version store: sharded version chains, the snapshot registry
/// and the two watermark clocks.
pub struct VersionStore {
    shards: Vec<Mutex<HashMap<(TableId, Rid), VersionChain>>>,
    /// Primary-key entries physically removed by (possibly uncommitted)
    /// deletes: key → the rid whose chain still holds the history a snapshot
    /// probe needs after the index entry is gone.
    unlinked: Mutex<HashMap<(TableId, Key), Rid>>,
    published: WatermarkClock,
    durable: WatermarkClock,
    /// Live snapshot horizons, refcounted ([`Snapshot`] deregisters on drop).
    snapshots: Mutex<BTreeMap<u64, usize>>,
    gc_signal: Arc<GcSignal>,
    gc_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    gc_started: AtomicBool,
}

impl std::fmt::Debug for VersionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionStore")
            .field("published", &self.published.frontier())
            .field("durable", &self.durable.frontier())
            .finish()
    }
}

impl Default for VersionStore {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionStore {
    /// Creates an empty store. The collector thread is spawned lazily by the
    /// first snapshot, so databases that never snapshot never pay for it.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            unlinked: Mutex::new(HashMap::new()),
            published: WatermarkClock::default(),
            durable: WatermarkClock::default(),
            snapshots: Mutex::new(BTreeMap::new()),
            gc_signal: Arc::new(GcSignal::default()),
            gc_thread: Mutex::new(None),
            gc_started: AtomicBool::new(false),
        }
    }

    fn shard(&self, table: TableId, rid: Rid) -> &Mutex<HashMap<(TableId, Rid), VersionChain>> {
        let hash = (table.0 as usize)
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(rid.page.0 as usize)
            .wrapping_mul(0x85eb_ca6b)
            .wrapping_add(rid.slot.0 as usize);
        &self.shards[hash % SHARDS]
    }

    // ----- write side -------------------------------------------------------

    /// Seeds the chain for a primordial row with its pre-image (base ticket
    /// 0), a no-op if the row already has a chain. Must be called *before*
    /// the first physical heap mutation of the row: a snapshot reader that
    /// finds no chain trusts the heap bytes.
    pub fn seed(&self, table: TableId, rid: Rid, before: Option<&[u8]>) {
        let mut shard = self.shard(table, rid).lock();
        if let std::collections::hash_map::Entry::Vacant(entry) = shard.entry((table, rid)) {
            let mut chain = VersionChain::default();
            chain.install(0, before.map(Bytes::copy_from_slice));
            entry.insert(chain);
            incr(CounterKind::VersionsCreated);
        }
    }

    /// Installs every pending write of one committing transaction at its
    /// commit ticket, then marks the ticket published. Also called with an
    /// empty batch so read-write tickets without row effects still advance
    /// the clock (the publication frontier must stay dense).
    pub fn publish(&self, seq: u64, writes: &[(TableId, Rid, Option<Bytes>)]) {
        let mut created = 0u64;
        for (table, rid, row) in writes {
            let mut shard = self.shard(*table, *rid).lock();
            let chain = shard.entry((*table, *rid)).or_default();
            if chain.install(seq, row.clone()) {
                created += 1;
            }
        }
        if created > 0 {
            incr_by(CounterKind::VersionsCreated, created);
        }
        self.published.mark(seq);
    }

    /// Marks `seq` durable (its commit fences all hardened). Lost commits
    /// are never marked, so the durable horizon stalls below the first
    /// ghost — exactly the conservative bound [`Self::durable_horizon`]
    /// promises.
    pub fn mark_durable(&self, seq: u64) {
        self.durable.mark(seq);
    }

    /// Records that `key`'s primary-index entry was physically removed while
    /// its row history lives on at `rid`.
    pub fn note_unlinked(&self, table: TableId, key: Key, rid: Rid) {
        self.unlinked.lock().insert((table, key), rid);
    }

    /// The rid a snapshot probe should consult when the primary index no
    /// longer has an entry for `key`.
    pub fn unlinked_rid(&self, table: TableId, key: &Key) -> Option<Rid> {
        self.unlinked.lock().get(&(table, key.clone())).copied()
    }

    // ----- read side --------------------------------------------------------

    /// The published ticket horizon: what a fresh snapshot would see.
    pub fn published_horizon(&self) -> u64 {
        self.published.frontier()
    }

    /// The horizon at which every ticket is both published *and* durable.
    pub fn durable_horizon(&self) -> u64 {
        self.published.frontier().min(self.durable.frontier())
    }

    /// Looks up `rid`'s visible state at `horizon`.
    pub fn read_at(&self, table: TableId, rid: Rid, horizon: u64) -> ChainRead {
        let shard = self.shard(table, rid).lock();
        match shard.get(&(table, rid)) {
            None => ChainRead::Primordial,
            Some(chain) => match chain.at(horizon) {
                Some(Version { row: Some(row), .. }) => ChainRead::Visible(row.clone()),
                _ => ChainRead::Invisible,
            },
        }
    }

    /// Every rid of `table` that has a chain with a visible (non-deleted)
    /// version at `horizon`, excluding rids in `skip`. This is the scan's
    /// second pass: rows whose heap slot is gone (deleted after the
    /// horizon) or whose heap bytes are newer than the horizon.
    pub fn visible_chain_rows(
        &self,
        table: TableId,
        horizon: u64,
        skip: &HashSet<Rid>,
    ) -> Vec<(Rid, Bytes)> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for ((chain_table, rid), chain) in shard.iter() {
                if *chain_table != table || skip.contains(rid) {
                    continue;
                }
                if let Some(Version { row: Some(row), .. }) = chain.at(horizon) {
                    rows.push((*rid, row.clone()));
                }
            }
        }
        rows
    }

    // ----- snapshots ---------------------------------------------------------

    /// Pins a snapshot at the current published horizon.
    pub fn snapshot(self: &Arc<Self>) -> Snapshot {
        self.snapshot_at(SnapshotBound::Published)
    }

    /// Pins a snapshot at the durable horizon: everything visible through it
    /// is both committed and hardened — ELR ghost commits are provably
    /// excluded (they never advance the durable clock).
    pub fn snapshot_durable(self: &Arc<Self>) -> Snapshot {
        self.snapshot_at(SnapshotBound::Durable)
    }

    fn snapshot_at(self: &Arc<Self>, bound: SnapshotBound) -> Snapshot {
        // The horizon is read *while holding the registry mutex* so the
        // collector (which takes the same mutex to find the oldest pin)
        // can never prune past a horizon that is about to be pinned.
        let mut snapshots = self.snapshots.lock();
        let horizon = match bound {
            SnapshotBound::Published => self.published_horizon(),
            SnapshotBound::Durable => self.durable_horizon(),
        };
        *snapshots.entry(horizon).or_insert(0) += 1;
        drop(snapshots);
        incr(CounterKind::SnapshotsTaken);
        Snapshot {
            store: Arc::clone(self),
            horizon,
        }
    }

    fn deregister(&self, horizon: u64) {
        let mut snapshots = self.snapshots.lock();
        if let Some(count) = snapshots.get_mut(&horizon) {
            *count -= 1;
            if *count == 0 {
                snapshots.remove(&horizon);
            }
        }
    }

    /// Horizon of the oldest live snapshot, if any.
    pub fn oldest_snapshot(&self) -> Option<u64> {
        self.snapshots.lock().keys().next().copied()
    }

    // ----- garbage collection -------------------------------------------------

    /// Spawns the background collector (idempotent). The database calls
    /// this on the first snapshot it hands out; unit tests drive
    /// [`Self::gc_once`] directly instead, so reclaim counts stay exact.
    pub fn start_gc(self: &Arc<Self>) {
        if self.gc_started.swap(true, Ordering::AcqRel) {
            return;
        }
        let store = Arc::downgrade(self);
        let signal = Arc::clone(&self.gc_signal);
        let thread = std::thread::Builder::new()
            .name("mvcc-gc".into())
            .spawn(move || run_gc(store, signal))
            .expect("spawn mvcc-gc");
        *self.gc_thread.lock() = Some(thread);
    }

    /// One collection pass: prunes every chain down to what the oldest live
    /// snapshot can still see and drops dead chains and stale unlink notes.
    /// Returns how many versions were reclaimed.
    pub fn gc_once(&self) -> u64 {
        // Holding the registry mutex while reading both bounds gives the
        // same exclusion snapshot_at() relies on.
        let bound = {
            let snapshots = self.snapshots.lock();
            snapshots
                .keys()
                .next()
                .copied()
                .unwrap_or_else(|| self.published_horizon())
                .min(self.published_horizon())
        };
        let mut reclaimed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.retain(|_, chain| {
                reclaimed += chain.prune(bound) as u64;
                if chain.is_dead(bound) {
                    reclaimed += chain.versions.len() as u64;
                    false
                } else {
                    true
                }
            });
        }
        if reclaimed > 0 {
            incr_by(CounterKind::VersionsReclaimed, reclaimed);
        }
        // An unlink note is only useful while the rid it points at still has
        // history; once the chain is gone the probe-miss path needs nothing.
        let mut unlinked = self.unlinked.lock();
        unlinked.retain(|(table, _), rid| {
            let shard = self.shard(*table, *rid).lock();
            shard.contains_key(&(*table, *rid))
        });
        reclaimed
    }

    /// Aggregate store health for reports and tests.
    pub fn stats(&self) -> MvccStats {
        let mut chains = 0usize;
        let mut versions = 0usize;
        let mut chain_lengths = ValueHistogram::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for chain in shard.values() {
                chains += 1;
                versions += chain.versions.len();
                chain_lengths.record(chain.versions.len() as u64);
            }
        }
        MvccStats {
            chains,
            versions,
            published: self.published_horizon(),
            durable: self.durable.frontier(),
            oldest_snapshot: self.oldest_snapshot(),
            chain_lengths,
        }
    }
}

impl Drop for VersionStore {
    fn drop(&mut self) {
        *self.gc_signal.stop.lock() = true;
        self.gc_signal.cond.notify_all();
        if let Some(thread) = self.gc_thread.get_mut().take() {
            // The collector's transient upgrade can be the last strong
            // reference (the owner dropped theirs mid-pass), in which case
            // this drop runs *on* the collector thread — joining would be a
            // self-join. The loop observes the stop flag and exits on its
            // own right after.
            if thread.thread().id() != std::thread::current().id() {
                let _ = thread.join();
            }
        }
    }
}

/// The collector loop: wake every [`GC_INTERVAL`], prune, exit when the
/// store is gone or told to stop. It holds only a `Weak`, so dropping the
/// last `Arc<VersionStore>` both stops it and lets the store free.
fn run_gc(store: Weak<VersionStore>, signal: Arc<GcSignal>) {
    loop {
        {
            let mut stop = signal.stop.lock();
            if *stop {
                return;
            }
            signal.cond.wait_for(&mut stop, GC_INTERVAL);
            if *stop {
                return;
            }
        }
        match store.upgrade() {
            Some(store) => {
                store.gc_once();
            }
            None => return,
        }
    }
}

enum SnapshotBound {
    Published,
    Durable,
}

/// A pinned, consistent read horizon. Every read through the snapshot sees
/// exactly the state as of its commit ticket, however long it lives; the
/// collector cannot reclaim anything the snapshot can still reach. Dropping
/// the snapshot releases the pin.
pub struct Snapshot {
    store: Arc<VersionStore>,
    horizon: u64,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("horizon", &self.horizon)
            .finish()
    }
}

impl Snapshot {
    /// The commit-ticket horizon this snapshot reads at.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// How many commit tickets have been published past this snapshot's
    /// horizon — the "staleness" the htap experiment reports.
    pub fn staleness(&self) -> u64 {
        self.store.published_horizon().saturating_sub(self.horizon)
    }

    /// The store this snapshot pins.
    pub(crate) fn store(&self) -> &Arc<VersionStore> {
        &self.store
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.deregister(self.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(page: u32, slot: u16) -> Rid {
        Rid {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }

    fn bytes(byte: u8) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(&[byte]))
    }

    #[test]
    fn watermark_frontier_advances_only_densely() {
        let clock = WatermarkClock::default();
        clock.mark(2);
        clock.mark(3);
        assert_eq!(clock.frontier(), 0, "ticket 1 is missing");
        clock.mark(1);
        assert_eq!(clock.frontier(), 3);
        clock.mark(5);
        assert_eq!(clock.frontier(), 3);
        clock.mark(4);
        assert_eq!(clock.frontier(), 5);
    }

    #[test]
    fn chain_visibility_follows_the_horizon() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        let r = rid(0, 0);
        store.seed(table, r, Some(&[1]));
        store.publish(1, &[(table, r, bytes(2))]);
        store.publish(2, &[(table, r, None)]); // deleted at ticket 2
        assert!(matches!(
            store.read_at(table, r, 0),
            ChainRead::Visible(b) if b.to_vec() == vec![1]
        ));
        assert!(matches!(
            store.read_at(table, r, 1),
            ChainRead::Visible(b) if b.to_vec() == vec![2]
        ));
        assert!(matches!(store.read_at(table, r, 2), ChainRead::Invisible));
        assert!(matches!(
            store.read_at(table, rid(9, 9), 2),
            ChainRead::Primordial
        ));
    }

    #[test]
    fn published_horizon_waits_for_the_dense_prefix() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        store.publish(2, &[(table, rid(0, 0), bytes(2))]);
        assert_eq!(store.published_horizon(), 0, "ticket 1 not published yet");
        let snap = store.snapshot();
        assert_eq!(snap.horizon(), 0);
        store.publish(1, &[(table, rid(0, 1), bytes(1))]);
        assert_eq!(store.published_horizon(), 2);
        assert_eq!(snap.staleness(), 2);
        // The pinned snapshot still reads at its own horizon.
        assert!(matches!(
            store.read_at(table, rid(0, 0), snap.horizon()),
            ChainRead::Invisible
        ));
    }

    #[test]
    fn durable_horizon_stalls_below_a_ghost() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        for seq in 1..=3 {
            store.publish(seq, &[(table, rid(0, seq as u16), bytes(seq as u8))]);
        }
        store.mark_durable(1);
        store.mark_durable(3); // ticket 2 lost its durability: a ghost
        assert_eq!(store.published_horizon(), 3);
        assert_eq!(store.durable_horizon(), 1);
        let snap = store.snapshot_durable();
        assert_eq!(snap.horizon(), 1);
        assert!(matches!(
            store.read_at(table, rid(0, 2), snap.horizon()),
            ChainRead::Invisible,
        ));
    }

    #[test]
    fn gc_prunes_to_the_oldest_snapshot_and_drops_dead_chains() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        let r = rid(0, 0);
        store.seed(table, r, Some(&[0]));
        for seq in 1..=4 {
            store.publish(seq, &[(table, r, bytes(seq as u8))]);
        }
        let old = store.snapshot_at(SnapshotBound::Published); // horizon 4... pin before more writes
        for seq in 5..=6 {
            store.publish(seq, &[(table, r, bytes(seq as u8))]);
        }
        // Oldest snapshot pins ticket 4: versions 0..=3 collapse to the one
        // at ticket 4; versions 5 and 6 must survive.
        let reclaimed = store.gc_once();
        assert_eq!(reclaimed, 4, "base + tickets 1..=3");
        assert!(matches!(
            store.read_at(table, r, old.horizon()),
            ChainRead::Visible(b) if b.to_vec() == vec![4]
        ));
        drop(old);
        // With no snapshots the bound is the published horizon: everything
        // but the newest version goes.
        store.gc_once();
        assert_eq!(store.stats().versions, 1);

        // A fully deleted row's chain disappears entirely once unreachable.
        store.publish(7, &[(table, r, None)]);
        store.gc_once();
        assert_eq!(store.stats().chains, 0);
    }

    #[test]
    fn unlink_notes_resolve_probe_misses_then_expire_with_the_chain() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        let r = rid(0, 0);
        let key = Key::int(7);
        store.seed(table, r, Some(&[7]));
        store.publish(1, &[(table, r, None)]);
        store.note_unlinked(table, key.clone(), r);
        assert_eq!(store.unlinked_rid(table, &key), Some(r));
        assert!(matches!(
            store.read_at(table, r, 0),
            ChainRead::Visible(b) if b.to_vec() == vec![7]
        ));
        store.gc_once(); // chain is dead at horizon 1 → chain and note both go
        assert_eq!(store.unlinked_rid(table, &key), None);
    }

    #[test]
    fn stats_histogram_tracks_chain_lengths() {
        let store = Arc::new(VersionStore::new());
        let table = TableId(0);
        store.seed(table, rid(0, 0), Some(&[1]));
        store.publish(1, &[(table, rid(0, 0), bytes(2))]);
        store.publish(2, &[(table, rid(0, 1), bytes(3))]);
        let stats = store.stats();
        assert_eq!(stats.chains, 2);
        assert_eq!(stats.versions, 3);
        assert_eq!(stats.chain_lengths.count(), 2);
        assert_eq!(stats.chain_lengths.max(), 2);
    }
}
