//! The `Database` facade: the API both execution engines program against.
//!
//! Every data operation takes a [`CcMode`] flag, mirroring the paper's only
//! modifications to Shore-MT (Section 4.3):
//!
//! * [`CcMode::Full`] — acquire the whole intention-lock hierarchy plus the
//!   record lock; what the conventional (baseline) engine always uses.
//! * [`CcMode::RowOnly`] — acquire only the record (RID) lock; what DORA uses
//!   for inserts and deletes (Section 4.2.1).
//! * [`CcMode::None`] — bypass the centralized lock manager entirely; what
//!   DORA uses for probes and updates, relying on its executors' thread-local
//!   lock tables for isolation.
//!
//! Physical consistency (pages, indexes) is protected by latches regardless
//! of the `CcMode`, so skipping logical locking never corrupts structures —
//! it only changes isolation responsibilities, exactly as in the paper.

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use dora_common::prelude::*;
use dora_metrics::{incr, incr_by, record_time, time_section, CounterKind, TimeCategory};

use crate::btree::{BTreeIndex, IndexEntry};
use crate::buffer::{BufferPool, PageStore};
use crate::catalog::{Catalog, IndexSpec, TableSchema};
use crate::heap::{HeapFile, PageOp};
use crate::lock::{LockId, LockManager, LockMode};
use crate::log::{LogManager, LogRecord, LogRecordKind, Lsn, StreamId};
use crate::mvcc::{ChainRead, MvccStats, Snapshot, VersionStore};
use crate::txn::{TxnManager, TxnState, TxnStatus};

/// An entry returned by a secondary-index probe: the record's RID plus the
/// routing fields DORA needs to route the subsequent record access
/// (Section 4.2.2).
pub type SecondaryEntry = IndexEntry;

/// A row version a transaction will install at its commit ticket:
/// `(table, rid, after-image)`; `None` = delete.
type PendingVersion = (TableId, Rid, Option<Bytes>);

/// A handle to a running transaction. Cheap to clone; under DORA the same
/// transaction is touched from several executor threads.
#[derive(Debug, Clone)]
pub struct TxnHandle {
    state: Arc<TxnState>,
    /// Secondary-index entries whose `deleted` flag must be set after commit
    /// (the paper's deferred flagging of deleted records).
    deferred_flags: Arc<parking_lot::Mutex<Vec<(IndexId, Key, Rid)>>>,
    /// Row versions this transaction will install at its commit ticket.
    /// Published by precommit, discarded on abort.
    pending_versions: Arc<parking_lot::Mutex<Vec<PendingVersion>>>,
    /// Heap slots this transaction deleted. The slots stay reserved (no
    /// insert may reuse them) until the commit is decided: precommit frees
    /// them, abort restores the records into them. This is what makes
    /// rollback of a delete always possible under concurrency.
    pending_frees: Arc<parking_lot::Mutex<Vec<(TableId, Rid)>>>,
    /// When set, this is a read-only snapshot transaction: every read is
    /// served at the snapshot's horizon with no locking of any kind, and
    /// writes are rejected.
    snapshot: Option<Arc<Snapshot>>,
}

impl TxnHandle {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.state.id
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        self.state.status()
    }

    /// `true` while the transaction is still running.
    pub fn is_active(&self) -> bool {
        self.state.is_active()
    }

    /// Number of centralized locks currently held (diagnostics).
    pub fn held_lock_count(&self) -> usize {
        self.state.held_lock_count()
    }

    /// The snapshot this transaction reads at, if it is a snapshot reader.
    pub fn snapshot(&self) -> Option<&Arc<Snapshot>> {
        self.snapshot.as_ref()
    }

    /// `true` if this is a lock-free snapshot reader.
    pub fn is_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }
}

/// The outcome of a successful [`Database::precommit`]: the commit-fence
/// positions on every log stream the transaction touched (empty for
/// read-only transactions) and whether its locks were already released
/// early. Redeemed exactly once, with [`Database::commit_wait`] or
/// [`Database::commit_async`].
#[derive(Debug)]
#[must_use = "a precommitted transaction must be completed with commit_wait or commit_async"]
pub struct CommitHandle {
    fences: Vec<(StreamId, Lsn)>,
    early_released: bool,
    /// The commit ticket drawn at precommit (None for read-only commits);
    /// the durable watermark clock is advanced with it once every fence
    /// hardens.
    seq: Option<u64>,
}

impl CommitHandle {
    /// The commit-fence LSN on each touched stream (empty for read-only
    /// transactions, which have nothing to make durable). The transaction is
    /// durable once *every* fence is flushed.
    pub fn fences(&self) -> &[(StreamId, Lsn)] {
        &self.fences
    }

    /// `true` if precommit released the transaction's locks early (ELR).
    pub fn early_released(&self) -> bool {
        self.early_released
    }
}

/// The storage manager facade.
pub struct Database {
    config: SystemConfig,
    catalog: Catalog,
    pool: Arc<BufferPool>,
    store: Arc<PageStore>,
    heaps: RwLock<Vec<Arc<HeapFile>>>,
    primaries: RwLock<Vec<Arc<BTreeIndex>>>,
    secondaries: RwLock<Vec<Arc<BTreeIndex>>>,
    locks: LockManager,
    log: LogManager,
    txns: TxnManager,
    versions: Arc<VersionStore>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_count())
            .finish()
    }
}

impl Database {
    /// Creates an empty database with the given configuration.
    pub fn new(config: SystemConfig) -> Arc<Self> {
        if config.faults.enabled() {
            // Chaos runs inject panics by the thousand; keep the default
            // hook's backtraces for genuine bugs only.
            silence_injected_panics();
        }
        let store = Arc::new(PageStore::new());
        let pool = Arc::new(BufferPool::new(
            Arc::clone(&store),
            config.buffer_pool_pages,
            config.page_size,
        ));
        Arc::new(Self {
            catalog: Catalog::new(),
            pool,
            store,
            heaps: RwLock::new(Vec::new()),
            primaries: RwLock::new(Vec::new()),
            secondaries: RwLock::new(Vec::new()),
            locks: LockManager::new(config.deadlock_detection),
            log: LogManager::with_faults(
                config.log_flush_micros,
                config.durability.clone(),
                Arc::new(FaultPlan::new(config.faults.clone())),
            ),
            txns: TxnManager::new(),
            versions: Arc::new(VersionStore::new()),
            config,
        })
    }

    /// Creates a database with the default test configuration.
    pub fn for_tests() -> Arc<Self> {
        Self::new(SystemConfig::for_tests())
    }

    /// The configuration this database was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The centralized lock manager (exposed so DORA can feed external waits
    /// into deadlock detection).
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// The log manager.
    pub fn log_manager(&self) -> &LogManager {
        &self.log
    }

    /// The deterministic fault schedule this database runs under (inert
    /// unless [`SystemConfig::faults`] enables a site).
    pub fn faults(&self) -> &Arc<FaultPlan> {
        self.log.faults()
    }

    // ----- schema ----------------------------------------------------------

    /// Creates a table (and its primary index).
    pub fn create_table(&self, schema: TableSchema) -> DbResult<TableId> {
        let id = self.catalog.add_table(schema)?;
        let mut heaps = self.heaps.write();
        let mut primaries = self.primaries.write();
        debug_assert_eq!(heaps.len(), id.0 as usize);
        heaps.push(Arc::new(HeapFile::new(id, Arc::clone(&self.pool))));
        primaries.push(Arc::new(BTreeIndex::new(true)));
        Ok(id)
    }

    /// Creates a secondary index over an existing (typically still empty)
    /// table.
    pub fn create_index(&self, spec: IndexSpec) -> DbResult<IndexId> {
        let id = self.catalog.add_index(spec)?;
        let mut secondaries = self.secondaries.write();
        debug_assert_eq!(secondaries.len(), id.0 as usize);
        secondaries.push(Arc::new(BTreeIndex::new(false)));
        Ok(id)
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.catalog.table_id(name)
    }

    /// Index id by name.
    pub fn index_id(&self, name: &str) -> DbResult<IndexId> {
        self.catalog.index_id(name)
    }

    fn heap(&self, table: TableId) -> DbResult<Arc<HeapFile>> {
        self.heaps
            .read()
            .get(table.0 as usize)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("{table}")))
    }

    fn primary(&self, table: TableId) -> DbResult<Arc<BTreeIndex>> {
        self.primaries
            .read()
            .get(table.0 as usize)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("{table}")))
    }

    fn secondary(&self, index: IndexId) -> DbResult<Arc<BTreeIndex>> {
        self.secondaries
            .read()
            .get(index.0 as usize)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("{index}")))
    }

    // ----- transactions ----------------------------------------------------

    /// Begins a transaction. No log record is written here: the `Begin`
    /// record is appended lazily by the transaction's first data-change
    /// record, so read-only transactions generate zero log traffic.
    pub fn begin(&self) -> TxnHandle {
        let state = self.txns.begin();
        TxnHandle {
            state,
            deferred_flags: Arc::new(parking_lot::Mutex::new(Vec::new())),
            pending_versions: Arc::new(parking_lot::Mutex::new(Vec::new())),
            pending_frees: Arc::new(parking_lot::Mutex::new(Vec::new())),
            snapshot: None,
        }
    }

    /// Begins a read-only transaction pinned to `snapshot`. Every read is
    /// answered at the snapshot's commit-ticket horizon with zero lock
    /// manager, local-lock-table or routing traffic; write operations fail
    /// with [`DbError::InvalidOperation`]. Like all read-only transactions
    /// it logs nothing, and commit/abort are trivially cheap.
    pub fn begin_snapshot(&self, snapshot: Arc<Snapshot>) -> TxnHandle {
        let state = self.txns.begin();
        TxnHandle {
            state,
            deferred_flags: Arc::new(parking_lot::Mutex::new(Vec::new())),
            pending_versions: Arc::new(parking_lot::Mutex::new(Vec::new())),
            pending_frees: Arc::new(parking_lot::Mutex::new(Vec::new())),
            snapshot: Some(snapshot),
        }
    }

    /// Pins a [`Snapshot`] at the current published commit-ticket horizon
    /// and makes sure the background version-chain collector is running.
    pub fn snapshot(&self) -> Snapshot {
        self.versions.start_gc();
        self.versions.snapshot()
    }

    /// Pins a [`Snapshot`] at the *durable* horizon: everything it sees is
    /// committed and hardened, so early-lock-release ghost commits (applied
    /// in memory, durability lost) are provably excluded.
    pub fn snapshot_durable(&self) -> Snapshot {
        self.versions.start_gc();
        self.versions.snapshot_durable()
    }

    /// The multi-version store (version chains, horizons, GC).
    pub fn version_store(&self) -> &Arc<VersionStore> {
        &self.versions
    }

    /// Aggregate MVCC health: chain/version counts, horizons and the live
    /// chain-length histogram the reports print.
    pub fn mvcc_stats(&self) -> MvccStats {
        self.versions.stats()
    }

    /// Appends a data-change record for `txn`, writing the lazy `Begin`
    /// record first if this is the transaction's first change.
    fn log_change(&self, txn: &TxnHandle, kind: LogRecordKind) {
        if txn.state.claim_begin_record() {
            self.log.append(txn.id(), LogRecordKind::Begin);
        }
        let (stream, lsn) = self.log.append(txn.id(), kind);
        txn.state.note_lsn(stream, lsn);
    }

    /// First half of commit: appends a commit-fence record to *every* log
    /// stream the transaction touched, applies deferred secondary-index
    /// delete flags, and — when [`DurabilityConfig::early_lock_release`] is
    /// on — releases the transaction's centralized locks and marks it
    /// committed *before* the fences are durable. The returned
    /// [`CommitHandle`] is redeemed with [`Self::commit_wait`] (block until
    /// every fence is durable) or [`Self::commit_async`] (completion
    /// callback once the last fence hardens).
    ///
    /// After a successful precommit the transaction's outcome is decided:
    /// it must not be aborted, only waited on. Safety of the early release
    /// rests on the global commit sequence stamped into the fences while the
    /// locks are still held: any dependent transaction fences *after* this
    /// one, and recovery only replays a sequence-dense prefix of fully
    /// fenced transactions, so no recovered state can contain a dependent
    /// without this transaction.
    ///
    /// [`DurabilityConfig::early_lock_release`]: dora_common::config::DurabilityConfig::early_lock_release
    pub fn precommit(&self, txn: &TxnHandle) -> DbResult<CommitHandle> {
        if !txn.is_active() {
            return Err(DbError::InvalidOperation(format!(
                "{} is not active",
                txn.id()
            )));
        }
        // Read-only transactions have nothing to make durable: skip the
        // commit fences and the log flush, as real engines do. `touched` is
        // only advanced by data-change records.
        let (seq, fences) = if txn.state.has_writes() {
            let touched: Vec<StreamId> = txn
                .state
                .touched_streams()
                .into_iter()
                .map(|(stream, _)| stream)
                .collect();
            let (seq, fences) = self.log.append_commit_fences(txn.id(), &touched);
            for &(stream, lsn) in &fences {
                txn.state.note_lsn(stream, lsn);
            }
            // Install this transaction's row versions at its commit ticket
            // *immediately* after the ticket is drawn — before deferred
            // index flags, before any early lock release and before
            // anything here can fail — so the published watermark stays
            // dense and a dependent writer (who can only run once our locks
            // drop) always publishes after us.
            let pending = std::mem::take(&mut *txn.pending_versions.lock());
            self.versions.publish(seq, &pending);
            (Some(seq), fences)
        } else {
            (None, Vec::new())
        };
        // The paper: "once the deleting transaction commits, it goes back and
        // sets the flag for each index entry of a deleted record outside of
        // any transaction."
        let deferred: Vec<_> = std::mem::take(&mut *txn.deferred_flags.lock());
        for (index_id, key, rid) in deferred {
            let index = self.secondary(index_id)?;
            // The entry may have been garbage collected already; ignore.
            let _ = index.set_deleted_flag(&key, rid, true);
        }
        // The commit is decided: heap slots this transaction deleted can now
        // be handed back to inserts.
        let frees: Vec<_> = std::mem::take(&mut *txn.pending_frees.lock());
        for (table, rid) in frees {
            if let Ok(heap) = self.heap(table) {
                let _ = heap.free_pending(rid);
            }
        }
        let early_released = self.config.durability.early_lock_release;
        if early_released {
            self.finish_commit(txn);
            if !fences.is_empty() {
                incr(CounterKind::ElrEarlyReleases);
            }
        }
        self.log.maybe_checkpoint();
        Ok(CommitHandle {
            fences,
            early_released,
            seq,
        })
    }

    /// Releases centralized locks and retires the transaction as committed.
    fn finish_commit(&self, txn: &TxnHandle) {
        let held = std::mem::take(&mut *txn.state.held.lock());
        self.locks.release_all(txn.id(), held);
        self.txns.finish(&txn.state, TxnStatus::Committed);
        self.log.forget(txn.id());
    }

    /// Second half of commit: blocks until every commit fence is durable
    /// (parking on each stream's group-commit ticket queue, or driving the
    /// flushes in synchronous mode), then releases locks if precommit did
    /// not already. The wall-clock wait is charged to
    /// [`TimeCategory::CommitWait`] so the driver can report commit latency
    /// separately from execute latency.
    pub fn commit_wait(&self, txn: &TxnHandle, handle: CommitHandle) -> DbResult<()> {
        let mut durable = true;
        if !handle.fences.is_empty() {
            durable = time_section(TimeCategory::CommitWait, || {
                self.log.flush_fences(&handle.fences)
            });
        }
        // Locks are released either way: the transaction is finished, its
        // fate (durable commit or ghost) decided. On lost durability the
        // effects may already be applied in memory, so the caller gets the
        // distinct non-retryable outcome instead of an "aborted" it might
        // re-run.
        if !handle.early_released {
            self.finish_commit(txn);
        }
        if durable {
            if let Some(seq) = handle.seq {
                self.versions.mark_durable(seq);
            }
            Ok(())
        } else {
            incr(CounterKind::DurabilityLost);
            Err(DbError::DurabilityLost)
        }
    }

    /// Second half of commit, asynchronous: registers `on_durable` to fire
    /// once every commit fence hardens, without blocking the caller. This is
    /// the path DORA's terminal RVP uses so executor threads never sleep on
    /// log I/O: the callback (running on whichever log-flusher thread
    /// hardens the last fence) releases any remaining locks and notifies
    /// the client.
    ///
    /// Read-only transactions, and synchronous-commit configurations (where
    /// the caller must pay the device latency for the A/B comparison to
    /// hold), complete inline on the calling thread.
    pub fn commit_async(
        self: &Arc<Self>,
        txn: &TxnHandle,
        handle: CommitHandle,
        on_durable: impl FnOnce(bool) + Send + 'static,
    ) {
        if handle.fences.is_empty() {
            if !handle.early_released {
                self.finish_commit(txn);
            }
            on_durable(true);
            return;
        }
        let db = Arc::clone(self);
        let txn = txn.clone();
        let early_released = handle.early_released;
        let seq = handle.seq;
        let start = std::time::Instant::now();
        self.log.submit_commit(
            handle.fences,
            Box::new(move |durable| {
                // Locks are released even when durability was lost: the
                // transaction's fate is decided (ghost commit), holding its
                // locks forever would wedge everything behind it.
                if !early_released {
                    db.finish_commit(&txn);
                }
                match (durable, seq) {
                    (true, Some(seq)) => db.versions.mark_durable(seq),
                    (false, _) => incr(CounterKind::DurabilityLost),
                    _ => {}
                }
                record_time(TimeCategory::CommitWait, start.elapsed());
                on_durable(durable);
            }),
        );
    }

    /// Commits a transaction synchronously: [`Self::precommit`] followed by
    /// [`Self::commit_wait`]. Under group commit the calling thread parks
    /// until the flusher daemon hardens the group carrying this commit.
    pub fn commit(&self, txn: &TxnHandle) -> DbResult<()> {
        let handle = self.precommit(txn)?;
        self.commit_wait(txn, handle)
    }

    /// Aborts a transaction: undoes its changes (walking its log records
    /// backwards), writes an abort record and releases its locks.
    ///
    /// Locks are released and the transaction retired even when an undo step
    /// fails — a transaction that keeps its locks forever wedges everything
    /// queued behind them. The first undo error is still surfaced to the
    /// caller after cleanup.
    pub fn abort(&self, txn: &TxnHandle) -> DbResult<()> {
        if !txn.is_active() {
            return Err(DbError::InvalidOperation(format!(
                "{} is not active",
                txn.id()
            )));
        }
        let mut undo_error: Option<DbError> = None;
        for record in self.log.records_for_undo(txn.id()) {
            let step = match record.kind {
                LogRecordKind::Insert { table, rid, after } => self.undo_insert(table, rid, &after),
                LogRecordKind::Update {
                    table, rid, before, ..
                } => self.heap(table).and_then(|heap| heap.update(rid, &before)),
                LogRecordKind::Delete { table, rid, before } => {
                    self.undo_delete(table, rid, &before)
                }
                _ => Ok(()),
            };
            if let Err(error) = step {
                undo_error.get_or_insert(error);
            }
        }
        txn.deferred_flags.lock().clear();
        // Undone deletes were restored in place; their slot reservations are
        // consumed by the restore, so there is nothing left to free.
        txn.pending_frees.lock().clear();
        // Never-published versions die with the abort; the seeded base
        // versions (pre-images) stay — they describe committed state.
        txn.pending_versions.lock().clear();
        // A transaction that never logged a change has nothing to mark
        // aborted either — read-only aborts stay off the log entirely.
        if txn.state.has_logged() {
            self.log.append(txn.id(), LogRecordKind::Abort);
        }
        let held = std::mem::take(&mut *txn.state.held.lock());
        self.locks.release_all(txn.id(), held);
        self.txns.finish(&txn.state, TxnStatus::Aborted);
        self.log.forget(txn.id());
        match undo_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    fn undo_insert(&self, table: TableId, rid: Rid, after: &[u8]) -> DbResult<()> {
        let heap = self.heap(table)?;
        let meta = self.catalog.table(table)?;
        let row = Value::decode_row(after)?;
        heap.delete(rid)?;
        let primary_key = meta.schema.primary_key_of(&row);
        let _ = self.primary(table)?.remove(&primary_key, rid);
        for index_meta in self.catalog.secondary_indexes_of(table) {
            let key = index_meta.spec.key_of(&row);
            let _ = self.secondary(index_meta.id)?.remove(&key, rid);
        }
        Ok(())
    }

    fn undo_delete(&self, table: TableId, rid: Rid, before: &[u8]) -> DbResult<()> {
        let heap = self.heap(table)?;
        let meta = self.catalog.table(table)?;
        let row = Value::decode_row(before)?;
        heap.insert_at(rid, before)?;
        let primary_key = meta.schema.primary_key_of(&row);
        self.primary(table)?.insert(
            &primary_key,
            IndexEntry::new(rid, meta.schema.routing_key_of(&row)),
        )?;
        for index_meta in self.catalog.secondary_indexes_of(table) {
            let key = index_meta.spec.key_of(&row);
            let index = self.secondary(index_meta.id)?;
            // The baseline removes secondary entries physically; DORA leaves
            // them in place (flagging happens only after commit). Restore
            // whichever state is missing.
            if index.set_deleted_flag(&key, rid, false).is_err() {
                index.insert(&key, IndexEntry::new(rid, meta.schema.routing_key_of(&row)))?;
            }
        }
        Ok(())
    }

    // ----- locking helpers ---------------------------------------------------

    fn lock_record(
        &self,
        txn: &TxnHandle,
        table: TableId,
        rid: Rid,
        mode: LockMode,
        cc: CcMode,
    ) -> DbResult<()> {
        match cc {
            CcMode::None => Ok(()),
            CcMode::RowOnly => {
                let mut held = txn.state.held.lock();
                self.locks
                    .acquire(txn.id(), &mut held, LockId::record(table, rid), mode)
            }
            CcMode::Full => {
                let mut held = txn.state.held.lock();
                self.locks
                    .acquire(txn.id(), &mut held, LockId::Database, mode.intention())?;
                self.locks
                    .acquire(txn.id(), &mut held, LockId::Table(table), mode.intention())?;
                self.locks
                    .acquire(txn.id(), &mut held, LockId::record(table, rid), mode)
            }
        }
    }

    fn lock_table(
        &self,
        txn: &TxnHandle,
        table: TableId,
        mode: LockMode,
        cc: CcMode,
    ) -> DbResult<()> {
        match cc {
            CcMode::None => Ok(()),
            CcMode::RowOnly | CcMode::Full => {
                let mut held = txn.state.held.lock();
                self.locks
                    .acquire(txn.id(), &mut held, LockId::Database, mode.intention())?;
                self.locks
                    .acquire(txn.id(), &mut held, LockId::Table(table), mode)
            }
        }
    }

    // ----- data operations ---------------------------------------------------

    /// Inserts a row, returning its RID.
    ///
    /// Even under DORA the insert acquires the record (RID) lock through the
    /// centralized lock manager ([`CcMode::RowOnly`]): the physical page slot
    /// must be protected against concurrent reuse by other executors
    /// (Section 4.2.1).
    pub fn insert(&self, txn: &TxnHandle, table: TableId, row: Row, cc: CcMode) -> DbResult<Rid> {
        self.ensure_active(txn)?;
        self.ensure_writable(txn)?;
        let meta = self.catalog.table(table)?;
        meta.schema.validate(&row)?;
        if cc == CcMode::Full {
            self.lock_table(txn, table, LockMode::IX, cc)?;
        }
        let primary_key = meta.schema.primary_key_of(&row);
        let primary = self.primary(table)?;
        if !primary.get(&primary_key).is_empty() {
            return Err(DbError::DuplicateKey {
                table,
                detail: format!("{primary_key}"),
            });
        }
        let bytes = Value::encode_row(&row);
        let heap = self.heap(table)?;
        // The chain is seeded with a "not yet born" base while the page
        // write latch is still held, so no snapshot reader can see the raw
        // uncommitted bytes before the chain says they are invisible.
        let rid = time_section(TimeCategory::Work, || {
            heap.insert_with(&bytes, |rid| self.versions.seed(table, rid, None))
        })?;
        // Lock the freshly allocated RID (slot) so that a concurrent delete's
        // rollback cannot collide with this insert.
        if cc != CcMode::None {
            self.lock_record(txn, table, rid, LockMode::X, CcMode::RowOnly)?;
        }
        let index_result = time_section(TimeCategory::Work, || -> DbResult<()> {
            primary.insert(
                &primary_key,
                IndexEntry::new(rid, meta.schema.routing_key_of(&row)),
            )?;
            for index_meta in self.catalog.secondary_indexes_of(table) {
                let key = index_meta.spec.key_of(&row);
                self.secondary(index_meta.id)?
                    .insert(&key, IndexEntry::new(rid, meta.schema.routing_key_of(&row)))?;
            }
            Ok(())
        });
        if let Err(err) = index_result {
            // A concurrent insert won the uniqueness race: give the heap slot
            // back so nothing leaks, then surface the error.
            let _ = heap.delete(rid);
            return Err(err);
        }
        self.log_change(
            txn,
            LogRecordKind::Insert {
                table,
                rid,
                after: bytes.to_vec(),
            },
        );
        txn.pending_versions.lock().push((table, rid, Some(bytes)));
        Ok(rid)
    }

    /// Probes a table by primary key. Returns the RID and row, or `None` if
    /// the key does not exist.
    pub fn probe_primary(
        &self,
        txn: &TxnHandle,
        table: TableId,
        key: &Key,
        for_update: bool,
        cc: CcMode,
    ) -> DbResult<Option<(Rid, Row)>> {
        self.ensure_active(txn)?;
        if let Some(snapshot) = txn.snapshot() {
            if for_update {
                return Err(DbError::InvalidOperation(
                    "snapshot transactions are read-only".into(),
                ));
            }
            return self.snapshot_probe(snapshot, table, key);
        }
        let primary = self.primary(table)?;
        let entries = time_section(TimeCategory::Work, || primary.get(key));
        let Some(entry) = entries.first() else {
            // Still touch the table intention lock: a conventional engine
            // acquires it before discovering the key is absent.
            if cc == CcMode::Full {
                self.lock_table(
                    txn,
                    table,
                    if for_update {
                        LockMode::IX
                    } else {
                        LockMode::IS
                    },
                    cc,
                )?;
            }
            return Ok(None);
        };
        let mode = if for_update { LockMode::X } else { LockMode::S };
        if cc == CcMode::Full {
            self.lock_record(txn, table, entry.rid, mode, cc)?;
        }
        let heap = self.heap(table)?;
        let bytes = time_section(TimeCategory::Work, || heap.read(entry.rid))?;
        let row = Value::decode_row(&bytes)?;
        Ok(Some((entry.rid, row)))
    }

    /// Reads a record by RID.
    pub fn read_rid(
        &self,
        txn: &TxnHandle,
        table: TableId,
        rid: Rid,
        for_update: bool,
        cc: CcMode,
    ) -> DbResult<Row> {
        self.ensure_active(txn)?;
        if let Some(snapshot) = txn.snapshot() {
            if for_update {
                return Err(DbError::InvalidOperation(
                    "snapshot transactions are read-only".into(),
                ));
            }
            return self.snapshot_read_rid(snapshot, table, rid);
        }
        let mode = if for_update { LockMode::X } else { LockMode::S };
        if cc == CcMode::Full {
            self.lock_record(txn, table, rid, mode, cc)?;
        }
        let heap = self.heap(table)?;
        let bytes = time_section(TimeCategory::Work, || heap.read(rid))?;
        Value::decode_row(&bytes)
    }

    /// Updates the record at `rid` in place via `f`.
    ///
    /// The mutator must not change primary-key or secondary-index key
    /// columns; the OLTP workloads in this reproduction (like the paper's)
    /// never do.
    pub fn update_rid(
        &self,
        txn: &TxnHandle,
        table: TableId,
        rid: Rid,
        cc: CcMode,
        f: impl FnOnce(&mut Row) -> DbResult<()>,
    ) -> DbResult<()> {
        self.ensure_active(txn)?;
        self.ensure_writable(txn)?;
        if cc != CcMode::None {
            self.lock_record(txn, table, rid, LockMode::X, cc)?;
        }
        let heap = self.heap(table)?;
        let before = time_section(TimeCategory::Work, || heap.read(rid))?;
        // Seed the chain base with the committed pre-image before the heap
        // bytes change, so a snapshot reader racing this update either sees
        // no chain (heap bytes still the old image) or a chain whose base is
        // that same old image.
        self.versions.seed(table, rid, Some(&before));
        let mut row = Value::decode_row(&before)?;
        f(&mut row)?;
        let after = Value::encode_row(&row);
        time_section(TimeCategory::Work, || heap.update(rid, &after))?;
        self.log_change(
            txn,
            LogRecordKind::Update {
                table,
                rid,
                before: before.to_vec(),
                after: after.to_vec(),
            },
        );
        txn.pending_versions.lock().push((table, rid, Some(after)));
        Ok(())
    }

    /// Probes by primary key and updates the found record. Convenience
    /// wrapper combining [`Self::probe_primary`] and [`Self::update_rid`].
    pub fn update_primary(
        &self,
        txn: &TxnHandle,
        table: TableId,
        key: &Key,
        cc: CcMode,
        f: impl FnOnce(&mut Row) -> DbResult<()>,
    ) -> DbResult<()> {
        let Some((rid, _)) = self.probe_primary(txn, table, key, true, cc)? else {
            return Err(DbError::NotFound {
                table,
                detail: format!("{key}"),
            });
        };
        self.update_rid(txn, table, rid, cc, f)
    }

    /// Deletes the record with the given primary key.
    ///
    /// Under [`CcMode::Full`] secondary-index entries are removed physically
    /// (row locks make that safe). Under DORA modes the entries stay and are
    /// flagged `deleted` only after the transaction commits, following
    /// Section 4.2.2.
    pub fn delete_primary(
        &self,
        txn: &TxnHandle,
        table: TableId,
        key: &Key,
        cc: CcMode,
    ) -> DbResult<()> {
        self.ensure_active(txn)?;
        self.ensure_writable(txn)?;
        let primary = self.primary(table)?;
        let entries = time_section(TimeCategory::Work, || primary.get(key));
        let Some(entry) = entries.first() else {
            return Err(DbError::NotFound {
                table,
                detail: format!("{key}"),
            });
        };
        let rid = entry.rid;
        // Deletes always lock the RID through the centralized manager, even
        // under DORA (Section 4.2.1).
        if cc == CcMode::None {
            self.lock_record(txn, table, rid, LockMode::X, CcMode::RowOnly)?;
        } else {
            self.lock_record(txn, table, rid, LockMode::X, cc)?;
        }
        let heap = self.heap(table)?;
        let before = time_section(TimeCategory::Work, || heap.read(rid))?;
        let row = Value::decode_row(&before)?;
        // As in update: capture the committed pre-image before the slot goes
        // away so snapshot readers keep a consistent view of the row.
        self.versions.seed(table, rid, Some(&before));
        // A *reserving* delete: the slot is not offered for reuse until this
        // transaction's commit is decided (freed in precommit, restored by
        // abort). A plain delete here would let a concurrent insert occupy
        // the slot and make our rollback impossible.
        time_section(TimeCategory::Work, || heap.delete_pending(rid))?;
        txn.pending_frees.lock().push((table, rid));
        primary.remove(key, rid)?;
        // The primary entry is gone physically; leave a breadcrumb so live
        // snapshots can still resolve this key to its chain.
        self.versions.note_unlinked(table, key.clone(), rid);
        for index_meta in self.catalog.secondary_indexes_of(table) {
            let secondary_key = index_meta.spec.key_of(&row);
            if cc == CcMode::Full {
                let _ = self.secondary(index_meta.id)?.remove(&secondary_key, rid);
            } else {
                txn.deferred_flags
                    .lock()
                    .push((index_meta.id, secondary_key, rid));
            }
        }
        self.log_change(
            txn,
            LogRecordKind::Delete {
                table,
                rid,
                before: before.to_vec(),
            },
        );
        txn.pending_versions.lock().push((table, rid, None));
        Ok(())
    }

    /// Probes a secondary index, returning the matching entries (RID plus
    /// routing fields). Entries flagged as deleted are filtered out.
    pub fn probe_secondary(
        &self,
        txn: &TxnHandle,
        index: IndexId,
        key: &Key,
        cc: CcMode,
    ) -> DbResult<Vec<SecondaryEntry>> {
        self.ensure_active(txn)?;
        if txn.is_snapshot() {
            // No locks; return even entries flagged deleted — the version
            // chains decide whether the underlying row is visible at the
            // snapshot's horizon when the caller dereferences the RID.
            incr(CounterKind::SnapshotReads);
            let secondary = self.secondary(index)?;
            return Ok(time_section(TimeCategory::Work, || {
                secondary.get_with_deleted(key)
            }));
        }
        let meta = self.catalog.index(index)?;
        if cc == CcMode::Full {
            self.lock_table(txn, meta.spec.table, LockMode::IS, cc)?;
        }
        let secondary = self.secondary(index)?;
        Ok(time_section(TimeCategory::Work, || secondary.get(key)))
    }

    /// Scans a whole table, invoking `f` on every row. Under full concurrency
    /// control this takes a table-level shared lock (the "multi-partition"
    /// style operation the paper notes is rare in scalable OLTP workloads).
    pub fn scan_table(
        &self,
        txn: &TxnHandle,
        table: TableId,
        cc: CcMode,
        mut f: impl FnMut(Rid, &Row),
    ) -> DbResult<()> {
        self.ensure_active(txn)?;
        if let Some(snapshot) = txn.snapshot() {
            return self.snapshot_scan(snapshot, table, &mut f);
        }
        if cc == CcMode::Full {
            self.lock_table(txn, table, LockMode::S, cc)?;
        }
        let heap = self.heap(table)?;
        heap.scan(|rid, bytes| {
            if let Ok(row) = Value::decode_row(bytes) {
                f(rid, &row);
            }
        })
    }

    // ----- bulk loading ------------------------------------------------------

    /// Loads a row outside any transaction: no locks, no logging. Used by the
    /// workload loaders to populate benchmark datasets quickly, like a bulk
    /// load utility would.
    pub fn load_row(&self, table: TableId, row: Row) -> DbResult<Rid> {
        let meta = self.catalog.table(table)?;
        meta.schema.validate(&row)?;
        let bytes = Value::encode_row(&row);
        let heap = self.heap(table)?;
        let rid = heap.insert(&bytes)?;
        let primary_key = meta.schema.primary_key_of(&row);
        self.primary(table)?.insert(
            &primary_key,
            IndexEntry::new(rid, meta.schema.routing_key_of(&row)),
        )?;
        for index_meta in self.catalog.secondary_indexes_of(table) {
            let key = index_meta.spec.key_of(&row);
            self.secondary(index_meta.id)?
                .insert(&key, IndexEntry::new(rid, meta.schema.routing_key_of(&row)))?;
        }
        Ok(rid)
    }

    /// Number of live rows in a table (diagnostics and tests; not
    /// transactional).
    pub fn row_count(&self, table: TableId) -> DbResult<usize> {
        let heap = self.heap(table)?;
        let mut count = 0;
        heap.scan(|_, _| count += 1)?;
        Ok(count)
    }

    /// Flushes dirty pages to the page store (checkpoint).
    pub fn checkpoint(&self) {
        self.pool.flush_all();
    }

    /// Rebuilds a database from this database's log, replaying the changes of
    /// committed transactions into a fresh instance with the same schema.
    /// Used by tests to validate that the log captures committed state.
    ///
    /// When a checkpoint has reclaimed log space, the truncated prefix only
    /// exists folded inside the checkpoint, so recovery routes through it.
    pub fn recover_into(&self, fresh: &Database) -> DbResult<()> {
        if self.log.reclaimed_records() > 0 {
            return self.recover_checkpoint_into(fresh, 1);
        }
        self.replay(fresh, self.log.committed_changes())
    }

    /// [`Self::recover_into`] restricted to a per-stream torn prefix: stream
    /// `i` keeps only records with LSN ≤ `cuts[i]` (streams past the end of
    /// `cuts` keep everything) — what recovery would reconstruct if each
    /// stream's tail past its cut were lost in a crash. Only the maximal
    /// commit-sequence-dense prefix of *fully fenced* transactions is
    /// replayed; the crash-consistency property tests use this to show that
    /// early lock release plus log partitioning leaves no torn transactions
    /// or ghosts behind any combination of flush horizons.
    pub fn recover_prefixes_into(&self, fresh: &Database, cuts: &[Lsn]) -> DbResult<()> {
        self.replay(fresh, self.log.committed_changes_in_prefixes(cuts))
    }

    /// [`Self::recover_into`] with the redo phase parallelized across
    /// `workers` threads. Records are partitioned by page (stable hash of
    /// `(table, page)`), which preserves per-row replay order — the only
    /// order redo needs, since the commit sequence already ordered each
    /// row's writers and a row never moves between pages. Log analysis runs
    /// on borrowed records and each record is cloned exactly once, straight
    /// into its worker's shard.
    pub fn recover_into_parallel(&self, fresh: &Database, workers: usize) -> DbResult<()> {
        let workers = workers.max(1);
        if self.log.reclaimed_records() > 0 {
            // The reclaimed prefix survives only inside the checkpoint.
            return self.recover_checkpoint_into(fresh, workers);
        }
        if workers == 1 {
            return self.recover_into(fresh);
        }
        self.log.with_redo_refs(|records| {
            let mut shards: Vec<Vec<LogRecord>> = (0..workers).map(|_| Vec::new()).collect();
            for &record in records {
                shards[Self::replay_shard_of(record, workers)].push(record.clone());
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .map(|shard| scope.spawn(move || Self::replay_shard(fresh, shard)))
                    .collect();
                for handle in handles {
                    handle.join().expect("replay worker panicked")?;
                }
                Ok(())
            })
        })
    }

    /// Which replay worker (out of `workers`) a record belongs to: a stable
    /// hash of `(table, page)`, so every record of a page — and therefore
    /// of a row — lands on the same worker.
    fn replay_shard_of(record: &LogRecord, workers: usize) -> usize {
        match record.kind.row_key() {
            Some((table, rid)) => {
                use std::hash::{Hash, Hasher};
                let mut hasher = std::collections::hash_map::DefaultHasher::new();
                (table, rid.page).hash(&mut hasher);
                (hasher.finish() % workers as u64) as usize
            }
            None => 0,
        }
    }

    /// Recovery from the last fuzzy checkpoint: bulk-applies the
    /// checkpoint's net-effect rows, then replays only the log delta past
    /// the per-stream low-water marks (plus the undecided records the
    /// checkpoint carried forward), across `workers` threads — O(delta)
    /// work, not O(history). Falls back to a full replay when no checkpoint
    /// has been taken.
    pub fn recover_checkpoint_into(&self, fresh: &Database, workers: usize) -> DbResult<()> {
        let Some(checkpoint) = self.log.checkpoint_snapshot() else {
            return self.replay_parallel(fresh, self.log.committed_changes(), workers);
        };
        self.replay_parallel(fresh, checkpoint.rows_flat(), workers)?;
        let mut candidates = checkpoint.pending().to_vec();
        candidates.extend(self.log.records_after(checkpoint.low_water()));
        let delta = LogManager::redo_in_candidates(candidates, checkpoint.seq_horizon());
        self.replay_parallel(fresh, delta, workers)
    }

    fn replay(&self, fresh: &Database, records: Vec<LogRecord>) -> DbResult<()> {
        for record in records {
            Self::apply_record(fresh, record)?;
        }
        Ok(())
    }

    /// Applies `records` through `workers` threads, sharding by page so each
    /// row's records are applied by one worker in their original order (a
    /// row never moves between pages) and no two workers ever contend on a
    /// page latch.
    fn replay_parallel(
        &self,
        fresh: &Database,
        records: Vec<LogRecord>,
        workers: usize,
    ) -> DbResult<()> {
        let workers = workers.max(1);
        if workers == 1 || records.len() < 2 {
            return self.replay(fresh, records);
        }
        let mut shards: Vec<Vec<LogRecord>> = (0..workers).map(|_| Vec::new()).collect();
        for record in records {
            let shard = Self::replay_shard_of(&record, workers);
            shards[shard].push(record);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| scope.spawn(move || Self::replay_shard(fresh, shard)))
                .collect();
            for handle in handles {
                handle.join().expect("replay worker panicked")?;
            }
            Ok(())
        })
    }

    /// One parallel-replay worker: applies its shard page run by page run.
    /// The stable sort gathers each page's records together while keeping
    /// the original commit-sequence order within every page — the only
    /// order redo needs, since a row never moves between pages — so each
    /// page is pinned and latched once for its whole history instead of
    /// once per record.
    fn replay_shard(fresh: &Database, mut shard: Vec<LogRecord>) -> DbResult<()> {
        shard.sort_by_key(|record| record.kind.row_key().map(|(table, rid)| (table, rid.page)));
        let mut start = 0;
        while start < shard.len() {
            let Some((table, rid)) = shard[start].kind.row_key() else {
                start += 1;
                continue;
            };
            let run_key = Some((table, rid.page));
            let mut end = start + 1;
            while end < shard.len()
                && shard[end]
                    .kind
                    .row_key()
                    .map(|(table, rid)| (table, rid.page))
                    == run_key
            {
                end += 1;
            }
            Self::apply_page_run(fresh, table, rid.page, &shard[start..end])?;
            start = end;
        }
        Ok(())
    }

    /// Applies one page's redo run: all slot-level changes in one batched
    /// heap call, then the index maintenance. When the run holds no deletes
    /// (the common case) the index inserts are batched per index so the
    /// tree lock is taken once per run, not once per record; a run with
    /// deletes falls back to per-record index maintenance in the run's
    /// original order, which an insert-then-delete of the same key needs.
    fn apply_page_run(
        fresh: &Database,
        table: TableId,
        page: PageId,
        records: &[LogRecord],
    ) -> DbResult<()> {
        let ops: Vec<PageOp<'_>> = records
            .iter()
            .filter_map(|record| match &record.kind {
                LogRecordKind::Insert { rid, after, .. } => Some(PageOp::InsertAt(rid.slot, after)),
                LogRecordKind::Update { rid, after, .. } => Some(PageOp::Update(rid.slot, after)),
                LogRecordKind::Delete { rid, .. } => Some(PageOp::Delete(rid.slot)),
                _ => None,
            })
            .collect();
        fresh.heap(table)?.apply_page_ops(page, &ops)?;

        let meta = fresh.catalog.table(table)?;
        let secondaries = fresh.catalog.secondary_indexes_of(table);
        let ordered = records
            .iter()
            .any(|record| matches!(record.kind, LogRecordKind::Delete { .. }));
        if ordered {
            for record in records {
                match &record.kind {
                    LogRecordKind::Insert { rid, after, .. } => {
                        let row = Value::decode_row(after)?;
                        let primary_key = meta.schema.primary_key_of(&row);
                        fresh.primary(table)?.insert(
                            &primary_key,
                            IndexEntry::new(*rid, meta.schema.routing_key_of(&row)),
                        )?;
                        for index_meta in &secondaries {
                            let key = index_meta.spec.key_of(&row);
                            fresh.secondary(index_meta.id)?.insert(
                                &key,
                                IndexEntry::new(*rid, meta.schema.routing_key_of(&row)),
                            )?;
                        }
                    }
                    LogRecordKind::Delete { rid, before, .. } => {
                        let row = Value::decode_row(before)?;
                        let primary_key = meta.schema.primary_key_of(&row);
                        let _ = fresh.primary(table)?.remove(&primary_key, *rid);
                        for index_meta in &secondaries {
                            let key = index_meta.spec.key_of(&row);
                            let _ = fresh.secondary(index_meta.id)?.remove(&key, *rid);
                        }
                    }
                    _ => {}
                }
            }
            return Ok(());
        }

        let mut primary_batch = Vec::new();
        let mut secondary_batches: Vec<Vec<(Key, IndexEntry)>> =
            (0..secondaries.len()).map(|_| Vec::new()).collect();
        for record in records {
            if let LogRecordKind::Insert { rid, after, .. } = &record.kind {
                let row = Value::decode_row(after)?;
                let routing = meta.schema.routing_key_of(&row);
                primary_batch.push((
                    meta.schema.primary_key_of(&row),
                    IndexEntry::new(*rid, routing.clone()),
                ));
                for (index_meta, batch) in secondaries.iter().zip(&mut secondary_batches) {
                    batch.push((
                        index_meta.spec.key_of(&row),
                        IndexEntry::new(*rid, routing.clone()),
                    ));
                }
            }
        }
        if !primary_batch.is_empty() {
            fresh.primary(table)?.insert_many(&primary_batch)?;
        }
        for (index_meta, batch) in secondaries.iter().zip(&secondary_batches) {
            if !batch.is_empty() {
                fresh.secondary(index_meta.id)?.insert_many(batch)?;
            }
        }
        Ok(())
    }

    fn apply_record(fresh: &Database, record: LogRecord) -> DbResult<()> {
        match record.kind {
            LogRecordKind::Insert { table, rid, after } => {
                let row = Value::decode_row(&after)?;
                let meta = fresh.catalog.table(table)?;
                let heap = fresh.heap(table)?;
                heap.insert_at(rid, &after)?;
                let primary_key = meta.schema.primary_key_of(&row);
                fresh.primary(table)?.insert(
                    &primary_key,
                    IndexEntry::new(rid, meta.schema.routing_key_of(&row)),
                )?;
                for index_meta in fresh.catalog.secondary_indexes_of(table) {
                    let key = index_meta.spec.key_of(&row);
                    fresh
                        .secondary(index_meta.id)?
                        .insert(&key, IndexEntry::new(rid, meta.schema.routing_key_of(&row)))?;
                }
            }
            LogRecordKind::Update {
                table, rid, after, ..
            } => {
                fresh.heap(table)?.update(rid, &after)?;
            }
            LogRecordKind::Delete { table, rid, before } => {
                let row = Value::decode_row(&before)?;
                let meta = fresh.catalog.table(table)?;
                fresh.heap(table)?.delete(rid)?;
                let primary_key = meta.schema.primary_key_of(&row);
                let _ = fresh.primary(table)?.remove(&primary_key, rid);
                for index_meta in fresh.catalog.secondary_indexes_of(table) {
                    let key = index_meta.spec.key_of(&row);
                    let _ = fresh.secondary(index_meta.id)?.remove(&key, rid);
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Direct (non-transactional) count of pages in the backing store, for
    /// diagnostics.
    pub fn stored_pages(&self) -> usize {
        self.store.len()
    }

    fn ensure_active(&self, txn: &TxnHandle) -> DbResult<()> {
        if txn.is_active() {
            Ok(())
        } else {
            Err(DbError::TxnAborted {
                txn: txn.id(),
                reason: "transaction is not active".into(),
            })
        }
    }

    fn ensure_writable(&self, txn: &TxnHandle) -> DbResult<()> {
        if txn.is_snapshot() {
            Err(DbError::InvalidOperation(
                "snapshot transactions are read-only".into(),
            ))
        } else {
            Ok(())
        }
    }

    // ----- snapshot read path --------------------------------------------------
    //
    // Snapshot reads never touch the lock manager, the local lock tables, or
    // any other inter-transaction coordination: visibility is decided purely
    // by the version chains against the snapshot's commit-ticket horizon, and
    // heap/index access rides on the same short page latches every reader
    // already takes.

    /// Resolves a primary-key probe against a snapshot horizon.
    fn snapshot_probe(
        &self,
        snapshot: &Snapshot,
        table: TableId,
        key: &Key,
    ) -> DbResult<Option<(Rid, Row)>> {
        incr(CounterKind::SnapshotReads);
        let meta = self.catalog.table(table)?;
        let primary = self.primary(table)?;
        let entries = time_section(TimeCategory::Work, || primary.get(key));
        let rid = match entries.first() {
            Some(entry) => entry.rid,
            // The entry may have been removed physically by a committer after
            // our horizon; the version store keeps a note of where it lived.
            None => match snapshot.store().unlinked_rid(table, key) {
                Some(rid) => rid,
                None => return Ok(None),
            },
        };
        let row = match snapshot.store().read_at(table, rid, snapshot.horizon()) {
            ChainRead::Primordial => {
                // No writer ever touched this row since load/recovery: the
                // heap bytes are the committed image.
                match time_section(TimeCategory::Work, || self.heap(table)?.read(rid)) {
                    Ok(bytes) => Value::decode_row(&bytes)?,
                    // The slot vanished between index probe and heap read;
                    // to this snapshot the key simply does not exist.
                    Err(_) => return Ok(None),
                }
            }
            ChainRead::Invisible => return Ok(None),
            ChainRead::Visible(bytes) => Value::decode_row(&bytes)?,
        };
        // Guard against RID slot reuse: the chain may describe a different
        // key that later recycled this slot.
        if meta.schema.primary_key_of(&row) != *key {
            return Ok(None);
        }
        Ok(Some((rid, row)))
    }

    /// Resolves a RID read against a snapshot horizon.
    fn snapshot_read_rid(&self, snapshot: &Snapshot, table: TableId, rid: Rid) -> DbResult<Row> {
        incr(CounterKind::SnapshotReads);
        match snapshot.store().read_at(table, rid, snapshot.horizon()) {
            ChainRead::Primordial => {
                let bytes = time_section(TimeCategory::Work, || self.heap(table)?.read(rid))?;
                Value::decode_row(&bytes)
            }
            ChainRead::Invisible => Err(DbError::NotFound {
                table,
                detail: format!("rid {rid:?} invisible at snapshot horizon"),
            }),
            ChainRead::Visible(bytes) => Value::decode_row(&bytes),
        }
    }

    /// Scans a table as of a snapshot horizon: every row visible at the
    /// horizon is emitted exactly once, regardless of concurrent writers.
    fn snapshot_scan(
        &self,
        snapshot: &Snapshot,
        table: TableId,
        f: &mut impl FnMut(Rid, &Row),
    ) -> DbResult<()> {
        let store = snapshot.store();
        let horizon = snapshot.horizon();
        let mut visited = HashSet::new();
        let mut rows = 0u64;
        // Pass 1: walk the heap; each slot is either untouched (emit the heap
        // bytes) or chained (let the chain decide which image, if any).
        self.heap(table)?.scan(|rid, bytes| {
            visited.insert(rid);
            match store.read_at(table, rid, horizon) {
                ChainRead::Primordial => {
                    if let Ok(row) = Value::decode_row(bytes) {
                        rows += 1;
                        f(rid, &row);
                    }
                }
                ChainRead::Visible(version) => {
                    if let Ok(row) = Value::decode_row(&version) {
                        rows += 1;
                        f(rid, &row);
                    }
                }
                ChainRead::Invisible => {}
            }
        })?;
        // Pass 2: rows deleted from the heap after the horizon no longer
        // show up in the heap scan, but their chains still hold the image
        // this snapshot is entitled to.
        for (rid, bytes) in store.visible_chain_rows(table, horizon, &visited) {
            if let Ok(row) = Value::decode_row(&bytes) {
                rows += 1;
                f(rid, &row);
            }
        }
        incr_by(CounterKind::SnapshotReads, rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;

    fn accounts_db() -> (Arc<Database>, TableId) {
        let db = Database::for_tests();
        let table = db
            .create_table(TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("owner", ValueType::Text),
                    ColumnDef::new("balance", ValueType::Float),
                ],
                vec![0],
            ))
            .unwrap();
        (db, table)
    }

    fn account_row(id: i64, owner: &str, balance: f64) -> Row {
        vec![
            Value::Int(id),
            Value::Text(owner.into()),
            Value::Float(balance),
        ]
    }

    #[test]
    fn insert_probe_update_delete_commit() {
        let (db, table) = accounts_db();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.insert(&txn, table, account_row(2, "bob", 50.0), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();

        let txn = db.begin();
        let (_, row) = db
            .probe_primary(&txn, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Text("alice".into()));
        db.update_primary(&txn, table, &Key::int(1), CcMode::Full, |row| {
            row[2] = Value::Float(75.0);
            Ok(())
        })
        .unwrap();
        db.delete_primary(&txn, table, &Key::int(2), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();

        let txn = db.begin();
        let (_, row) = db
            .probe_primary(&txn, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(75.0));
        assert!(db
            .probe_primary(&txn, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .is_none());
        db.commit(&txn).unwrap();
        assert_eq!(db.row_count(table).unwrap(), 1);
    }

    #[test]
    fn abort_rolls_back_all_changes() {
        let (db, table) = accounts_db();
        let setup = db.begin();
        db.insert(&setup, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        let txn = db.begin();
        db.insert(&txn, table, account_row(2, "bob", 10.0), CcMode::Full)
            .unwrap();
        db.update_primary(&txn, table, &Key::int(1), CcMode::Full, |row| {
            row[2] = Value::Float(0.0);
            Ok(())
        })
        .unwrap();
        db.delete_primary(&txn, table, &Key::int(1), CcMode::Full)
            .unwrap();
        db.abort(&txn).unwrap();

        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(
            row[2],
            Value::Float(100.0),
            "update and delete must both be undone"
        );
        assert!(db
            .probe_primary(&check, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .is_none());
        db.commit(&check).unwrap();
        assert_eq!(db.row_count(table).unwrap(), 1);
    }

    #[test]
    fn concurrent_insert_cannot_steal_the_slot_of_an_uncommitted_delete() {
        // Regression for the TPC-C NewOrder/Delivery race: Delivery deletes a
        // new_order row, a concurrent NewOrder insert reuses the freed slot,
        // then Delivery aborts and its rollback finds the slot occupied —
        // which used to bail out of abort() with the locks still held.
        let (db, table) = accounts_db();
        let setup = db.begin();
        db.insert(&setup, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        // DORA-mode delete (RowOnly): only the RID is locked centrally, so a
        // concurrent insert of a different key is not blocked.
        let deleter = db.begin();
        db.delete_primary(&deleter, table, &Key::int(1), CcMode::RowOnly)
            .unwrap();

        // The insert must land in a fresh slot, not the deleted row's.
        let inserter = db.begin();
        let rid = db
            .insert(
                &inserter,
                table,
                account_row(2, "bob", 10.0),
                CcMode::RowOnly,
            )
            .unwrap();
        db.commit(&inserter).unwrap();

        // The deleter can still roll back: its slot was reserved, not stolen.
        db.abort(&deleter).unwrap();

        let check = db.begin();
        let (restored_rid, row) = db
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(100.0));
        assert_ne!(rid, restored_rid, "insert must not have reused the slot");
        db.commit(&check).unwrap();
        assert_eq!(db.row_count(table).unwrap(), 2);
    }

    #[test]
    fn committed_delete_frees_its_slot_for_reuse() {
        let (db, table) = accounts_db();
        let setup = db.begin();
        let old_rid = db
            .insert(&setup, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        let deleter = db.begin();
        db.delete_primary(&deleter, table, &Key::int(1), CcMode::Full)
            .unwrap();
        db.commit(&deleter).unwrap();

        // After the delete committed its slot is recycled by the next insert.
        let inserter = db.begin();
        let new_rid = db
            .insert(&inserter, table, account_row(2, "bob", 10.0), CcMode::Full)
            .unwrap();
        db.commit(&inserter).unwrap();
        assert_eq!(old_rid, new_rid);
    }

    #[test]
    fn duplicate_primary_key_is_rejected() {
        let (db, table) = accounts_db();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        let result = db.insert(&txn, table, account_row(1, "imposter", 2.0), CcMode::Full);
        assert!(matches!(result, Err(DbError::DuplicateKey { .. })));
        db.commit(&txn).unwrap();
    }

    #[test]
    fn secondary_index_probe_and_deferred_delete_flag() {
        let (db, table) = accounts_db();
        let index = db
            .create_index(IndexSpec {
                name: "accounts_by_owner".into(),
                table,
                key_columns: vec![1],
                unique: false,
            })
            .unwrap();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        db.insert(&txn, table, account_row(2, "alice", 2.0), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();

        let txn = db.begin();
        let hits = db
            .probe_secondary(&txn, index, &Key::from_values(["alice"]), CcMode::Full)
            .unwrap();
        assert_eq!(hits.len(), 2);
        // Routing fields (account id) travel with the entry, so a DORA
        // executor could route the record access.
        assert!(hits.iter().all(|e| e.routing.len() == 1));
        db.commit(&txn).unwrap();

        // DORA-style delete: the entry is flagged only after commit.
        let txn = db.begin();
        db.delete_primary(&txn, table, &Key::int(1), CcMode::RowOnly)
            .unwrap();
        let during = db
            .probe_secondary(&txn, index, &Key::from_values(["alice"]), CcMode::None)
            .unwrap();
        assert_eq!(during.len(), 2, "entry must remain visible until commit");
        db.commit(&txn).unwrap();
        let txn = db.begin();
        let after = db
            .probe_secondary(&txn, index, &Key::from_values(["alice"]), CcMode::None)
            .unwrap();
        assert_eq!(after.len(), 1, "flagged entry is filtered after commit");
        db.commit(&txn).unwrap();
    }

    #[test]
    fn aborted_dora_delete_leaves_secondary_entries_untouched() {
        let (db, table) = accounts_db();
        let index = db
            .create_index(IndexSpec {
                name: "by_owner".into(),
                table,
                key_columns: vec![1],
                unique: false,
            })
            .unwrap();
        let txn = db.begin();
        db.insert(&txn, table, account_row(7, "carol", 5.0), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();

        let txn = db.begin();
        db.delete_primary(&txn, table, &Key::int(7), CcMode::RowOnly)
            .unwrap();
        db.abort(&txn).unwrap();

        let check = db.begin();
        let hits = db
            .probe_secondary(&check, index, &Key::from_values(["carol"]), CcMode::None)
            .unwrap();
        assert_eq!(hits.len(), 1, "rollback must leave the index entry live");
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(7), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(5.0));
        db.commit(&check).unwrap();
    }

    #[test]
    fn cc_none_operations_skip_the_lock_manager() {
        // Use the calling thread's own counters so concurrently running tests
        // in this process cannot perturb the exact-zero assertions.
        use dora_metrics::{current_thread_snapshot, CounterKind};
        let (db, table) = accounts_db();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();

        let before = current_thread_snapshot();
        let txn = db.begin();
        let _ = db
            .probe_primary(&txn, table, &Key::int(1), false, CcMode::None)
            .unwrap();
        db.update_primary(&txn, table, &Key::int(1), CcMode::None, |row| {
            row[2] = Value::Float(3.0);
            Ok(())
        })
        .unwrap();
        db.commit(&txn).unwrap();
        let delta = current_thread_snapshot().since(&before);
        assert_eq!(delta.counter(CounterKind::RowLevelLock), 0);
        assert_eq!(delta.counter(CounterKind::HigherLevelLock), 0);
    }

    #[test]
    fn concurrent_transfers_preserve_total_balance() {
        let (db, table) = accounts_db();
        let accounts = 10i64;
        let txn = db.begin();
        for id in 0..accounts {
            db.insert(&txn, table, account_row(id, "holder", 100.0), CcMode::Full)
                .unwrap();
        }
        db.commit(&txn).unwrap();

        let threads = 4;
        let transfers = 100;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    let mut rng = t as i64;
                    for i in 0..transfers {
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let from = (rng.unsigned_abs() % accounts as u64) as i64;
                        let to = ((rng.unsigned_abs() >> 8) % accounts as u64) as i64;
                        if from == to {
                            continue;
                        }
                        let txn = db.begin();
                        let result = (|| -> DbResult<()> {
                            db.update_primary(&txn, table, &Key::int(from), CcMode::Full, |row| {
                                let balance = row[2].as_float()?;
                                row[2] = Value::Float(balance - 1.0);
                                Ok(())
                            })?;
                            db.update_primary(&txn, table, &Key::int(to), CcMode::Full, |row| {
                                let balance = row[2].as_float()?;
                                row[2] = Value::Float(balance + 1.0);
                                Ok(())
                            })?;
                            Ok(())
                        })();
                        match result {
                            Ok(()) => db.commit(&txn).unwrap(),
                            Err(_) => db.abort(&txn).unwrap(),
                        }
                        let _ = i;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let check = db.begin();
        let mut total = 0.0;
        db.scan_table(&check, table, CcMode::Full, |_, row| {
            total += row[2].as_float().unwrap();
        })
        .unwrap();
        db.commit(&check).unwrap();
        assert_eq!(
            total,
            accounts as f64 * 100.0,
            "money must be conserved across transfers"
        );
    }

    fn accounts_db_with(durability: DurabilityConfig) -> (Arc<Database>, TableId) {
        let config = SystemConfig {
            durability,
            ..SystemConfig::for_tests()
        };
        let db = Database::new(config);
        let table = db
            .create_table(TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("owner", ValueType::Text),
                    ColumnDef::new("balance", ValueType::Float),
                ],
                vec![0],
            ))
            .unwrap();
        (db, table)
    }

    #[test]
    fn elr_releases_locks_at_precommit_before_durability() {
        // A huge group window keeps the flusher from hardening anything
        // until we actually wait, so the pre-durable state is observable.
        let (db, table) = accounts_db_with(DurabilityConfig {
            group_window_micros: 200_000,
            ..DurabilityConfig::default()
        });
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        assert!(txn.held_lock_count() > 0);
        let handle = db.precommit(&txn).unwrap();
        assert!(handle.early_released());
        let &(stream, lsn) = handle
            .fences()
            .first()
            .expect("data change must log a commit fence");
        assert_eq!(
            txn.held_lock_count(),
            0,
            "ELR must release locks at precommit"
        );
        assert_eq!(txn.status(), TxnStatus::Committed);
        assert!(
            db.log_manager().flushed_lsn(stream) < lsn,
            "commit fence must not be durable yet"
        );
        db.commit_wait(&txn, handle).unwrap();
        assert!(db.log_manager().flushed_lsn(stream) >= lsn);
    }

    #[test]
    fn without_elr_locks_are_held_until_durable() {
        for durability in [
            DurabilityConfig::sync_commit(),
            DurabilityConfig::group_commit_only(),
        ] {
            let (db, table) = accounts_db_with(durability);
            let txn = db.begin();
            db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
                .unwrap();
            let handle = db.precommit(&txn).unwrap();
            assert!(!handle.early_released());
            assert!(
                txn.held_lock_count() > 0,
                "without ELR, locks outlive precommit"
            );
            assert_eq!(txn.status(), TxnStatus::Active);
            db.commit_wait(&txn, handle).unwrap();
            assert_eq!(txn.held_lock_count(), 0);
            assert_eq!(txn.status(), TxnStatus::Committed);
        }
    }

    #[test]
    fn commit_async_completes_from_the_flusher() {
        let (db, table) = accounts_db();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        let handle = db.precommit(&txn).unwrap();
        let fences = handle.fences().to_vec();
        assert!(!fences.is_empty());
        let done = Arc::new((parking_lot::Mutex::new(false), parking_lot::Condvar::new()));
        let done2 = Arc::clone(&done);
        let db2 = Arc::clone(&db);
        db.commit_async(&txn, handle, move |durable| {
            assert!(durable, "no faults configured, so the commit hardens");
            for &(stream, lsn) in &fences {
                assert!(db2.log_manager().flushed_lsn(stream) >= lsn);
            }
            let mut flag = done2.0.lock();
            *flag = true;
            done2.1.notify_all();
        });
        let mut flag = done.0.lock();
        while !*flag {
            done.1.wait(&mut flag);
        }
        assert_eq!(txn.status(), TxnStatus::Committed);
    }

    #[test]
    fn begin_record_is_lazy_and_read_only_txns_log_nothing() {
        let (db, table) = accounts_db();
        let log = db.log_manager();

        // Read-only commit: zero log records.
        let reader = db.begin();
        db.commit(&reader).unwrap();
        assert!(log.is_empty());

        // Read-only abort: still zero log records.
        let reader = db.begin();
        db.abort(&reader).unwrap();
        assert!(log.is_empty());

        // First data change appends Begin + the change; later changes only
        // append themselves.
        let writer = db.begin();
        db.insert(&writer, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        assert_eq!(log.len(), 2, "lazy Begin plus the insert");
        db.insert(&writer, table, account_row(2, "bob", 2.0), CcMode::Full)
            .unwrap();
        assert_eq!(log.len(), 3);
        db.commit(&writer).unwrap();
        assert_eq!(log.len(), 4, "commit record closes the transaction");
    }

    #[test]
    fn recovery_replays_committed_changes() {
        let (db, table) = accounts_db();
        let txn = db.begin();
        db.insert(&txn, table, account_row(1, "alice", 10.0), CcMode::Full)
            .unwrap();
        db.insert(&txn, table, account_row(2, "bob", 20.0), CcMode::Full)
            .unwrap();
        db.commit(&txn).unwrap();
        let txn = db.begin();
        db.update_primary(&txn, table, &Key::int(1), CcMode::Full, |row| {
            row[2] = Value::Float(99.0);
            Ok(())
        })
        .unwrap();
        db.commit(&txn).unwrap();
        // An uncommitted transaction whose changes must NOT survive recovery.
        let doomed = db.begin();
        db.insert(&doomed, table, account_row(3, "ghost", 1.0), CcMode::Full)
            .unwrap();

        let (fresh, fresh_table) = accounts_db();
        assert_eq!(fresh_table, table);
        db.recover_into(&fresh).unwrap();
        let check = fresh.begin();
        let (_, row) = fresh
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(99.0));
        assert!(fresh
            .probe_primary(&check, table, &Key::int(3), false, CcMode::Full)
            .unwrap()
            .is_none());
        fresh.commit(&check).unwrap();
        assert_eq!(fresh.row_count(table).unwrap(), 2);
    }

    #[test]
    fn snapshot_reads_are_stable_and_lock_free() {
        let (db, table) = accounts_db();
        let writer = db.begin();
        db.insert(&writer, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.commit(&writer).unwrap();

        let snapshot = Arc::new(db.snapshot());
        let reader = db.begin_snapshot(Arc::clone(&snapshot));
        let (_, row) = db
            .probe_primary(&reader, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(100.0));

        // A writer commits a newer version after the snapshot was pinned.
        let writer = db.begin();
        db.update_primary(&writer, table, &Key::int(1), CcMode::Full, |row| {
            row[2] = Value::Float(42.0);
            Ok(())
        })
        .unwrap();
        db.commit(&writer).unwrap();

        // Repeatable read: the pinned snapshot still sees the old image, and
        // never takes a single centralized lock doing so.
        let (_, row) = db
            .probe_primary(&reader, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(100.0));
        assert_eq!(reader.held_lock_count(), 0, "snapshot reads take no locks");
        db.commit(&reader).unwrap();

        // A fresh snapshot observes the newer commit.
        let fresh = db.begin_snapshot(Arc::new(db.snapshot()));
        let (_, row) = db
            .probe_primary(&fresh, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(42.0));
        db.commit(&fresh).unwrap();
    }

    #[test]
    fn snapshot_transactions_reject_writes() {
        let (db, table) = accounts_db();
        let writer = db.begin();
        db.insert(&writer, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        db.commit(&writer).unwrap();

        let reader = db.begin_snapshot(Arc::new(db.snapshot()));
        assert!(matches!(
            db.insert(&reader, table, account_row(2, "bob", 2.0), CcMode::Full),
            Err(DbError::InvalidOperation(_))
        ));
        assert!(matches!(
            db.update_primary(&reader, table, &Key::int(1), CcMode::Full, |_| Ok(())),
            Err(DbError::InvalidOperation(_))
        ));
        assert!(matches!(
            db.delete_primary(&reader, table, &Key::int(1), CcMode::Full),
            Err(DbError::InvalidOperation(_))
        ));
        assert!(matches!(
            db.probe_primary(&reader, table, &Key::int(1), true, CcMode::Full),
            Err(DbError::InvalidOperation(_))
        ));
        db.commit(&reader).unwrap();
    }

    #[test]
    fn snapshot_does_not_see_uncommitted_writes() {
        let (db, table) = accounts_db();
        let setup = db.begin();
        db.insert(&setup, table, account_row(1, "alice", 100.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        // In-flight writer: heap bytes already changed, version unpublished.
        let writer = db.begin();
        db.update_primary(&writer, table, &Key::int(1), CcMode::None, |row| {
            row[2] = Value::Float(-1.0);
            Ok(())
        })
        .unwrap();

        let reader = db.begin_snapshot(Arc::new(db.snapshot()));
        let (_, row) = db
            .probe_primary(&reader, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(
            row[2],
            Value::Float(100.0),
            "snapshot must see the committed pre-image, not in-flight bytes"
        );
        db.commit(&reader).unwrap();
        db.commit(&writer).unwrap();
    }

    #[test]
    fn snapshot_probe_and_scan_survive_a_later_delete() {
        let (db, table) = accounts_db();
        let setup = db.begin();
        db.insert(&setup, table, account_row(1, "alice", 1.0), CcMode::Full)
            .unwrap();
        db.insert(&setup, table, account_row(2, "bob", 2.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        let old = Arc::new(db.snapshot());
        let deleter = db.begin();
        db.delete_primary(&deleter, table, &Key::int(2), CcMode::Full)
            .unwrap();
        db.commit(&deleter).unwrap();

        // Probe: the primary-index entry is physically gone, but the old
        // snapshot resolves the key through the unlinked breadcrumb.
        let reader = db.begin_snapshot(Arc::clone(&old));
        let (_, row) = db
            .probe_primary(&reader, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Text("bob".into()));
        // Scan: pass 2 recovers the deleted row from its chain.
        let mut seen = Vec::new();
        db.scan_table(&reader, table, CcMode::Full, |_, row| {
            seen.push(row[0].clone());
        })
        .unwrap();
        seen.sort_by_key(|v| match v {
            Value::Int(i) => *i,
            _ => 0,
        });
        assert_eq!(seen, vec![Value::Int(1), Value::Int(2)]);
        db.commit(&reader).unwrap();

        // A snapshot pinned after the delete no longer sees the row.
        let reader = db.begin_snapshot(Arc::new(db.snapshot()));
        assert!(db
            .probe_primary(&reader, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .is_none());
        let mut count = 0;
        db.scan_table(&reader, table, CcMode::Full, |_, _| count += 1)
            .unwrap();
        assert_eq!(count, 1);
        db.commit(&reader).unwrap();
    }

    #[test]
    fn aborted_writes_never_become_visible_to_snapshots() {
        let (db, table) = accounts_db();
        let setup = db.begin();
        db.insert(&setup, table, account_row(1, "alice", 10.0), CcMode::Full)
            .unwrap();
        db.commit(&setup).unwrap();

        let doomed = db.begin();
        db.update_primary(&doomed, table, &Key::int(1), CcMode::Full, |row| {
            row[2] = Value::Float(-99.0);
            Ok(())
        })
        .unwrap();
        db.insert(&doomed, table, account_row(2, "ghost", 0.0), CcMode::Full)
            .unwrap();
        db.abort(&doomed).unwrap();

        let reader = db.begin_snapshot(Arc::new(db.snapshot()));
        let (_, row) = db
            .probe_primary(&reader, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[2], Value::Float(10.0));
        assert!(db
            .probe_primary(&reader, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .is_none());
        let mut count = 0;
        db.scan_table(&reader, table, CcMode::Full, |_, _| count += 1)
            .unwrap();
        assert_eq!(count, 1, "the aborted insert must not appear in a scan");
        db.commit(&reader).unwrap();
    }
}
