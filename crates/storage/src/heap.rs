//! Heap files: collections of slotted pages holding a table's records.
//!
//! A heap file tracks which pages exist for the table and which still have
//! free space, and hands out RIDs on insert. All page access goes through the
//! buffer pool; per-page `RwLock`s act as page latches.

use std::sync::Arc;

use bytes::Bytes;

use dora_common::prelude::*;
use dora_metrics::TimeCategory;

use crate::buffer::{BufferPool, PageKey};
use crate::latch::Latch;

struct HeapState {
    /// Number of pages allocated so far.
    page_count: u32,
    /// Pages believed to still have free room, most recently touched last.
    candidates: Vec<PageId>,
}

/// One slot-level operation of a batched page run
/// (see [`HeapFile::apply_page_ops`]).
#[derive(Debug, Clone, Copy)]
pub enum PageOp<'a> {
    /// Restore a record at a specific slot (redo of an insert).
    InsertAt(SlotId, &'a [u8]),
    /// Overwrite the record in a slot.
    Update(SlotId, &'a [u8]),
    /// Delete the record in a slot.
    Delete(SlotId),
}

/// A heap file for one table.
pub struct HeapFile {
    table: TableId,
    pool: Arc<BufferPool>,
    state: Latch<HeapState>,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("table", &self.table)
            .finish()
    }
}

impl HeapFile {
    /// Creates an empty heap file for `table`.
    pub fn new(table: TableId, pool: Arc<BufferPool>) -> Self {
        Self {
            table,
            pool,
            state: Latch::new(HeapState {
                page_count: 0,
                candidates: Vec::new(),
            }),
        }
    }

    /// The owning table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Number of pages allocated so far.
    pub fn page_count(&self) -> u32 {
        self.state.lock(TimeCategory::OtherContention).page_count
    }

    fn tag(&self, err: DbError) -> DbError {
        match err {
            DbError::PageFull { .. } => DbError::PageFull { table: self.table },
            DbError::InvalidRid { rid, .. } => DbError::InvalidRid {
                table: self.table,
                rid,
            },
            other => other,
        }
    }

    /// Inserts a record, returning its new RID.
    pub fn insert(&self, record: &[u8]) -> DbResult<Rid> {
        self.insert_with(record, |_| {})
    }

    /// [`Self::insert`], invoking `on_insert` with the new RID *while the
    /// destination page's write latch is still held*. The multi-version
    /// store uses this window to seed the row's version chain before any
    /// snapshot reader can observe the slot: a reader's page latch
    /// acquisition happens-after the latch release, so by the time it can
    /// read the bytes the chain already says whether they are visible.
    pub fn insert_with(&self, record: &[u8], on_insert: impl FnOnce(Rid)) -> DbResult<Rid> {
        let mut on_insert = Some(on_insert);
        // Try candidate pages with space first, newest candidates last so
        // inserts cluster.
        let candidates: Vec<PageId> = {
            let state = self.state.lock(TimeCategory::OtherContention);
            state.candidates.iter().rev().take(4).cloned().collect()
        };
        for page_id in candidates {
            if let Some(rid) = self.try_insert_into(page_id, record, &mut on_insert)? {
                return Ok(rid);
            }
            // Page turned out to be full: forget it as a candidate.
            let mut state = self.state.lock(TimeCategory::OtherContention);
            state.candidates.retain(|p| *p != page_id);
        }
        // Allocate a new page.
        let page_id = {
            let mut state = self.state.lock(TimeCategory::OtherContention);
            let id = PageId(state.page_count);
            state.page_count += 1;
            state.candidates.push(id);
            id
        };
        match self.try_insert_into(page_id, record, &mut on_insert)? {
            Some(rid) => Ok(rid),
            // A freshly allocated page refusing the record means the record
            // is larger than a page.
            None => Err(DbError::PageFull { table: self.table }),
        }
    }

    fn try_insert_into(
        &self,
        page_id: PageId,
        record: &[u8],
        on_insert: &mut Option<impl FnOnce(Rid)>,
    ) -> DbResult<Option<Rid>> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: page_id,
        })?;
        let mut page = pinned.page.write();
        if !page.fits(record.len()) {
            return Ok(None);
        }
        let slot = page.insert(record).map_err(|e| self.tag(e))?;
        let rid = Rid {
            page: page_id,
            slot,
        };
        if let Some(hook) = on_insert.take() {
            hook(rid);
        }
        Ok(Some(rid))
    }

    /// Reads the record at `rid`.
    pub fn read(&self, rid: Rid) -> DbResult<Bytes> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let page = pinned.page.read();
        page.read(rid.slot).map_err(|e| self.tag(e))
    }

    /// Overwrites the record at `rid`.
    pub fn update(&self, rid: Rid, record: &[u8]) -> DbResult<()> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let mut page = pinned.page.write();
        page.update(rid.slot, record).map_err(|e| self.tag(e))
    }

    /// Deletes the record at `rid`, making the slot immediately reusable by
    /// later inserts. This is the non-transactional flavour: rollback of a
    /// same-transaction insert and recovery replay, where no concurrent
    /// transaction can race for the slot.
    pub fn delete(&self, rid: Rid) -> DbResult<()> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let mut page = pinned.page.write();
        page.delete(rid.slot).map_err(|e| self.tag(e))?;
        drop(page);
        let mut state = self.state.lock(TimeCategory::OtherContention);
        if !state.candidates.contains(&rid.page) {
            state.candidates.push(rid.page);
        }
        Ok(())
    }

    /// Transactional delete: removes the record but keeps the slot reserved
    /// so no concurrent insert can reuse it while the deleting transaction is
    /// still in flight. The deleter frees the slot at commit with
    /// [`Self::free_pending`]; on abort, [`Self::insert_at`] restores the
    /// record into the reserved slot. Without the reservation a concurrent
    /// insert could occupy the slot and make the delete's rollback
    /// impossible — which is also why deletes additionally lock the RID
    /// through the centralized manager even under DORA (Section 4.2.1).
    pub fn delete_pending(&self, rid: Rid) -> DbResult<()> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let mut page = pinned.page.write();
        page.delete_reserve(rid.slot).map_err(|e| self.tag(e))
    }

    /// Commit-time counterpart of [`Self::delete_pending`]: drops the slot
    /// reservation and re-offers the page to inserts.
    pub fn free_pending(&self, rid: Rid) -> DbResult<()> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let mut page = pinned.page.write();
        page.release(rid.slot).map_err(|e| self.tag(e))?;
        drop(page);
        let mut state = self.state.lock(TimeCategory::OtherContention);
        if !state.candidates.contains(&rid.page) {
            state.candidates.push(rid.page);
        }
        Ok(())
    }

    /// Restores a record at a specific RID (transaction rollback of a delete,
    /// or recovery redo of an insert).
    pub fn insert_at(&self, rid: Rid, record: &[u8]) -> DbResult<()> {
        {
            let mut state = self.state.lock(TimeCategory::OtherContention);
            if rid.page.0 >= state.page_count {
                state.page_count = rid.page.0 + 1;
            }
        }
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let mut page = pinned.page.write();
        page.insert_at(rid.slot, record).map_err(|e| self.tag(e))
    }

    /// Applies a run of slot-level redo operations to one page under a
    /// single pin and one page-latch acquisition — the parallel-recovery
    /// fast path. Replay shards records by page, so a page's whole history
    /// arrives as one run; applying it in one shot amortizes the buffer-pool
    /// lookup and keeps replay workers from ever touching a shared latch
    /// per record.
    pub fn apply_page_ops(&self, page_id: PageId, ops: &[PageOp<'_>]) -> DbResult<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let restores = ops.iter().any(|op| matches!(op, PageOp::InsertAt(..)));
        let deletes = ops.iter().any(|op| matches!(op, PageOp::Delete(..)));
        if restores {
            let mut state = self.state.lock(TimeCategory::OtherContention);
            if page_id.0 >= state.page_count {
                state.page_count = page_id.0 + 1;
            }
        }
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: page_id,
        })?;
        let mut page = pinned.page.write();
        for op in ops {
            match *op {
                PageOp::InsertAt(slot, record) => page.insert_at(slot, record),
                PageOp::Update(slot, record) => page.update(slot, record),
                PageOp::Delete(slot) => page.delete(slot),
            }
            .map_err(|e| self.tag(e))?;
        }
        drop(page);
        if deletes {
            let mut state = self.state.lock(TimeCategory::OtherContention);
            if !state.candidates.contains(&page_id) {
                state.candidates.push(page_id);
            }
        }
        Ok(())
    }

    /// Returns `true` if `rid` points at a live record.
    pub fn is_live(&self, rid: Rid) -> DbResult<bool> {
        let pinned = self.pool.pin(PageKey {
            table: self.table,
            page: rid.page,
        })?;
        let page = pinned.page.read();
        Ok(page.is_live(rid.slot))
    }

    /// Full scan: calls `f` for every live record. Used by table scans and by
    /// consistency checks in tests.
    pub fn scan(&self, mut f: impl FnMut(Rid, &[u8])) -> DbResult<()> {
        let page_count = self.page_count();
        for page_number in 0..page_count {
            let page_id = PageId(page_number);
            let pinned = self.pool.pin(PageKey {
                table: self.table,
                page: page_id,
            })?;
            let page = pinned.page.read();
            for slot in page.live_slots() {
                let bytes = page.read(slot).map_err(|e| self.tag(e))?;
                f(
                    Rid {
                        page: page_id,
                        slot,
                    },
                    &bytes,
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::PageStore;

    fn heap() -> HeapFile {
        let store = Arc::new(PageStore::new());
        let pool = Arc::new(BufferPool::new(store, 64, 1024));
        HeapFile::new(TableId(1), pool)
    }

    #[test]
    fn insert_read_update_delete_cycle() {
        let heap = heap();
        let rid = heap.insert(b"payload").unwrap();
        assert_eq!(heap.read(rid).unwrap().as_ref(), b"payload");
        heap.update(rid, b"updated").unwrap();
        assert_eq!(heap.read(rid).unwrap().as_ref(), b"updated");
        heap.delete(rid).unwrap();
        assert!(heap.read(rid).is_err());
        assert!(!heap.is_live(rid).unwrap());
    }

    #[test]
    fn inserts_spill_to_new_pages() {
        let heap = heap();
        let record = vec![9u8; 200];
        let rids: Vec<_> = (0..50).map(|_| heap.insert(&record).unwrap()).collect();
        assert!(heap.page_count() > 1);
        for rid in &rids {
            assert_eq!(heap.read(*rid).unwrap().as_ref(), &record[..]);
        }
    }

    #[test]
    fn scan_visits_every_live_record() {
        let heap = heap();
        let a = heap.insert(b"a").unwrap();
        let b = heap.insert(b"b").unwrap();
        let c = heap.insert(b"c").unwrap();
        heap.delete(b).unwrap();
        let mut seen = Vec::new();
        heap.scan(|rid, bytes| seen.push((rid, bytes.to_vec())))
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().any(|(rid, data)| *rid == a && data == b"a"));
        assert!(seen.iter().any(|(rid, data)| *rid == c && data == b"c"));
    }

    #[test]
    fn insert_at_restores_deleted_record() {
        let heap = heap();
        let rid = heap.insert(b"original").unwrap();
        heap.delete(rid).unwrap();
        heap.insert_at(rid, b"original").unwrap();
        assert_eq!(heap.read(rid).unwrap().as_ref(), b"original");
    }

    #[test]
    fn errors_carry_the_table_id() {
        let heap = heap();
        let missing = Rid::new(99, 0);
        match heap.read(missing) {
            Err(DbError::InvalidRid { table, .. }) => assert_eq!(table, TableId(1)),
            other => panic!("expected InvalidRid, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_inserts_produce_unique_rids() {
        let store = Arc::new(PageStore::new());
        let pool = Arc::new(BufferPool::new(store, 256, 1024));
        let heap = Arc::new(HeapFile::new(TableId(2), pool));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let heap = Arc::clone(&heap);
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| heap.insert(format!("record-{t}-{i}").as_bytes()).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
