//! Slotted heap pages.
//!
//! Records are stored in fixed-size pages with a classic slotted layout: a
//! header, a slot directory growing from the front and record payloads
//! growing from the back. A record's address — its RID — is the pair
//! (page id, slot id) and stays stable across in-place updates and page
//! compaction, which is what lets the lock manager lock RIDs and lets
//! secondary indexes store RIDs in their leaves.

use bytes::Bytes;

use dora_common::prelude::*;

/// Per-slot metadata in the slot directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    /// Offset of the record payload within `data`.
    offset: u32,
    /// Length of the record payload in bytes.
    len: u32,
    /// Whether the slot currently holds a live record.
    live: bool,
    /// Dead slot reserved by an in-flight delete: not reusable by inserts
    /// until the deleting transaction commits ([`Page::release`]) and still
    /// restorable at its original slot if it aborts ([`Page::insert_at`]).
    reserved: bool,
}

/// A slotted page holding variable-length records.
///
/// The page owns a flat byte buffer of the configured page size. Free space
/// sits between the end of the (conceptual) slot directory and
/// `free_space_end`, the start of the payload area.
#[derive(Debug, Clone)]
pub struct Page {
    /// The page's id within its heap file.
    pub id: PageId,
    data: Vec<u8>,
    slots: Vec<Slot>,
    /// Offset one past the usable payload area: payloads are allocated
    /// downwards starting here.
    free_space_end: usize,
    /// Bytes occupied by live payloads (used to decide whether compaction
    /// would help).
    live_bytes: usize,
    /// Whether the page has been modified since it was last written back.
    dirty: bool,
}

/// Bytes of bookkeeping we charge per slot when estimating free space. The
/// in-memory representation keeps the directory in a `Vec`, but accounting
/// for it keeps page capacity realistic.
const SLOT_OVERHEAD: usize = 8;

impl Page {
    /// Creates an empty page of `size` bytes.
    pub fn new(id: PageId, size: usize) -> Self {
        Self {
            id,
            data: vec![0; size],
            slots: Vec::new(),
            free_space_end: size,
            live_bytes: 0,
            dirty: false,
        }
    }

    /// Total capacity of the page in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Number of live records on the page.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }

    /// Number of slots (live or dead) on the page.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether the page has been modified since the last write-back.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Clears the dirty flag (called by the buffer pool after write-back).
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Contiguous free bytes available without compaction, accounting for the
    /// slot directory entry a new record would need.
    pub fn contiguous_free(&self) -> usize {
        let directory = self.slots.len() * SLOT_OVERHEAD + SLOT_OVERHEAD;
        self.free_space_end.saturating_sub(directory)
    }

    /// Free bytes that would be available after compaction.
    pub fn reclaimable_free(&self) -> usize {
        let directory = self.slots.len() * SLOT_OVERHEAD + SLOT_OVERHEAD;
        self.capacity().saturating_sub(self.live_bytes + directory)
    }

    /// Returns `true` if a record of `len` bytes fits on this page (possibly
    /// after compaction).
    pub fn fits(&self, len: usize) -> bool {
        self.reclaimable_free() >= len
    }

    /// Inserts a record, returning its slot id. Reuses dead slots when
    /// possible so that slot ids stay dense; compacts the payload area when
    /// fragmentation prevents an otherwise-possible insert.
    pub fn insert(&mut self, record: &[u8]) -> DbResult<SlotId> {
        if !self.fits(record.len()) {
            return Err(DbError::PageFull { table: TableId(0) });
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let offset = self.free_space_end - record.len();
        self.data[offset..offset + record.len()].copy_from_slice(record);
        self.free_space_end = offset;
        self.live_bytes += record.len();
        self.dirty = true;

        let slot = Slot {
            offset: offset as u32,
            len: record.len() as u32,
            live: true,
            reserved: false,
        };
        // Prefer reusing a dead slot: this is exactly the physical-slot reuse
        // that creates the insert/delete conflict described in Section 4.2.1.
        // Slots reserved by an uncommitted delete are off limits — the
        // deleter may still abort and reclaim its slot.
        if let Some(idx) = self.slots.iter().position(|s| !s.live && !s.reserved) {
            self.slots[idx] = slot;
            Ok(SlotId(idx as u16))
        } else {
            self.slots.push(slot);
            Ok(SlotId((self.slots.len() - 1) as u16))
        }
    }

    /// Reads the record in `slot`.
    pub fn read(&self, slot: SlotId) -> DbResult<Bytes> {
        let entry = self.slot(slot)?;
        if !entry.live {
            return Err(DbError::InvalidRid {
                table: TableId(0),
                rid: Rid {
                    page: self.id,
                    slot,
                },
            });
        }
        let start = entry.offset as usize;
        let end = start + entry.len as usize;
        Ok(Bytes::copy_from_slice(&self.data[start..end]))
    }

    /// Overwrites the record in `slot` with `record`, in place when it fits
    /// in the old payload slot and by re-allocation within the page
    /// otherwise.
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> DbResult<()> {
        let entry = *self.slot(slot)?;
        if !entry.live {
            return Err(DbError::InvalidRid {
                table: TableId(0),
                rid: Rid {
                    page: self.id,
                    slot,
                },
            });
        }
        self.dirty = true;
        if record.len() <= entry.len as usize {
            let start = entry.offset as usize;
            self.data[start..start + record.len()].copy_from_slice(record);
            self.live_bytes -= entry.len as usize - record.len();
            self.slots[slot.0 as usize].len = record.len() as u32;
            return Ok(());
        }
        // The record grew: release the old payload and re-allocate.
        let grow = record.len() - entry.len as usize;
        if self.reclaimable_free() < grow {
            return Err(DbError::PageFull { table: TableId(0) });
        }
        self.live_bytes -= entry.len as usize;
        self.slots[slot.0 as usize].live = false;
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let offset = self.free_space_end - record.len();
        self.data[offset..offset + record.len()].copy_from_slice(record);
        self.free_space_end = offset;
        self.live_bytes += record.len();
        self.slots[slot.0 as usize] = Slot {
            offset: offset as u32,
            len: record.len() as u32,
            live: true,
            reserved: false,
        };
        Ok(())
    }

    /// Deletes the record in `slot`, freeing its slot for reuse.
    pub fn delete(&mut self, slot: SlotId) -> DbResult<()> {
        self.delete_inner(slot, false)
    }

    /// Deletes the record in `slot` but keeps the slot *reserved*: inserts
    /// will not reuse it until [`Self::release`] frees it (at the deleting
    /// transaction's commit), while [`Self::insert_at`] can still restore the
    /// record there (at its abort). This closes the window where a concurrent
    /// insert steals the slot of an uncommitted delete and makes its rollback
    /// impossible.
    pub fn delete_reserve(&mut self, slot: SlotId) -> DbResult<()> {
        self.delete_inner(slot, true)
    }

    fn delete_inner(&mut self, slot: SlotId, reserve: bool) -> DbResult<()> {
        let entry = *self.slot(slot)?;
        if !entry.live {
            return Err(DbError::InvalidRid {
                table: TableId(0),
                rid: Rid {
                    page: self.id,
                    slot,
                },
            });
        }
        self.slots[slot.0 as usize].live = false;
        self.slots[slot.0 as usize].reserved = reserve;
        self.live_bytes -= entry.len as usize;
        self.dirty = true;
        Ok(())
    }

    /// Drops the reservation left by [`Self::delete_reserve`], making the
    /// slot reusable by inserts. Called once the deleting transaction's
    /// commit is decided. Errors if the slot is live (the delete was rolled
    /// back — releasing would free an occupied slot).
    pub fn release(&mut self, slot: SlotId) -> DbResult<()> {
        let entry = *self.slot(slot)?;
        if entry.live {
            return Err(DbError::InvalidOperation(format!(
                "cannot release live slot {} of {}",
                slot.0, self.id
            )));
        }
        self.slots[slot.0 as usize].reserved = false;
        self.dirty = true;
        Ok(())
    }

    /// Re-inserts a record into a specific (currently dead) slot. Used by
    /// transaction rollback and by recovery redo, which must restore a record
    /// at its original RID.
    pub fn insert_at(&mut self, slot: SlotId, record: &[u8]) -> DbResult<()> {
        let idx = slot.0 as usize;
        if idx >= self.slots.len() {
            // Slot directory must grow to reach this slot (recovery into a
            // fresh page). Intermediate slots are created dead.
            if !self.fits(record.len()) {
                return Err(DbError::PageFull { table: TableId(0) });
            }
            while self.slots.len() <= idx {
                self.slots.push(Slot {
                    offset: 0,
                    len: 0,
                    live: false,
                    reserved: false,
                });
            }
        } else if self.slots[idx].live {
            return Err(DbError::InvalidOperation(format!(
                "slot {} of {} is occupied",
                slot.0, self.id
            )));
        }
        if !self.fits(record.len()) {
            return Err(DbError::PageFull { table: TableId(0) });
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let offset = self.free_space_end - record.len();
        self.data[offset..offset + record.len()].copy_from_slice(record);
        self.free_space_end = offset;
        self.live_bytes += record.len();
        // Restoring into the slot consumes any delete reservation on it.
        self.slots[idx] = Slot {
            offset: offset as u32,
            len: record.len() as u32,
            live: true,
            reserved: false,
        };
        self.dirty = true;
        Ok(())
    }

    /// Returns `true` if `slot` exists and currently holds a live record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        self.slots
            .get(slot.0 as usize)
            .map(|s| s.live)
            .unwrap_or(false)
    }

    /// Iterates over the live slots of the page.
    pub fn live_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, _)| SlotId(i as u16))
    }

    fn slot(&self, slot: SlotId) -> DbResult<&Slot> {
        self.slots.get(slot.0 as usize).ok_or(DbError::InvalidRid {
            table: TableId(0),
            rid: Rid {
                page: self.id,
                slot,
            },
        })
    }

    /// Compacts the payload area, moving live payloads to the end of the page
    /// so that the free space becomes contiguous. Slot ids do not change.
    fn compact(&mut self) {
        let mut new_data = vec![0u8; self.data.len()];
        let mut end = self.data.len();
        for slot in self.slots.iter_mut() {
            if slot.live {
                let start = slot.offset as usize;
                let len = slot.len as usize;
                end -= len;
                new_data[end..end + len].copy_from_slice(&self.data[start..start + len]);
                slot.offset = end as u32;
            }
        }
        self.data = new_data;
        self.free_space_end = end;
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new(PageId(0), 1024)
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut p = page();
        let slot = p.insert(b"hello").unwrap();
        assert_eq!(p.read(slot).unwrap().as_ref(), b"hello");
        assert_eq!(p.live_count(), 1);
        assert!(p.is_dirty());
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = page();
        let a = p.insert(b"aaaa").unwrap();
        let b = p.insert(b"bbbb").unwrap();
        p.delete(a).unwrap();
        assert!(p.read(a).is_err());
        assert_eq!(p.read(b).unwrap().as_ref(), b"bbbb");
        // The freed slot id is reused by the next insert.
        let c = p.insert(b"cccc").unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn reserved_slot_is_skipped_by_inserts_until_released() {
        let mut p = page();
        let victim = p.insert(b"victim").unwrap();
        p.delete_reserve(victim).unwrap();
        assert!(p.read(victim).is_err());
        // An insert racing with the uncommitted delete must not steal the
        // reserved slot.
        let other = p.insert(b"other").unwrap();
        assert_ne!(other, victim);
        // The deleter committed: the slot becomes reusable.
        p.release(victim).unwrap();
        let reused = p.insert(b"reused").unwrap();
        assert_eq!(reused, victim);
    }

    #[test]
    fn rollback_restores_into_a_reserved_slot() {
        let mut p = page();
        let victim = p.insert(b"victim").unwrap();
        p.delete_reserve(victim).unwrap();
        p.insert(b"other").unwrap();
        // The deleter aborted: insert_at restores the record at its original
        // slot and consumes the reservation.
        p.insert_at(victim, b"victim").unwrap();
        assert_eq!(p.read(victim).unwrap().as_ref(), b"victim");
        // Releasing a live slot is refused.
        assert!(p.release(victim).is_err());
    }

    #[test]
    fn update_in_place_and_grown() {
        let mut p = page();
        let slot = p.insert(b"0123456789").unwrap();
        p.update(slot, b"short").unwrap();
        assert_eq!(p.read(slot).unwrap().as_ref(), b"short");
        p.update(slot, b"a considerably longer record payload")
            .unwrap();
        assert_eq!(
            p.read(slot).unwrap().as_ref(),
            b"a considerably longer record payload"
        );
    }

    #[test]
    fn page_reports_full() {
        let mut p = Page::new(PageId(1), 128);
        let mut inserted = 0;
        loop {
            match p.insert(&[7u8; 32]) {
                Ok(_) => inserted += 1,
                Err(DbError::PageFull { .. }) => break,
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(inserted >= 2);
        assert!(!p.fits(32));
    }

    #[test]
    fn compaction_reclaims_fragmented_space() {
        let mut p = Page::new(PageId(2), 256);
        let slots: Vec<_> = (0..4).map(|_| p.insert(&[1u8; 48]).unwrap()).collect();
        // Free alternating records to fragment the payload area.
        p.delete(slots[0]).unwrap();
        p.delete(slots[2]).unwrap();
        // 96 bytes are reclaimable but not contiguous; this insert forces a
        // compaction and must succeed.
        let slot = p.insert(&[2u8; 80]).unwrap();
        assert_eq!(p.read(slot).unwrap().as_ref(), &[2u8; 80][..]);
        assert_eq!(p.read(slots[1]).unwrap().as_ref(), &[1u8; 48][..]);
        assert_eq!(p.read(slots[3]).unwrap().as_ref(), &[1u8; 48][..]);
    }

    #[test]
    fn insert_at_restores_specific_slot() {
        let mut p = page();
        let a = p.insert(b"first").unwrap();
        p.insert(b"second").unwrap();
        p.delete(a).unwrap();
        p.insert_at(a, b"restored").unwrap();
        assert_eq!(p.read(a).unwrap().as_ref(), b"restored");
        // Occupied slots are refused.
        assert!(p.insert_at(a, b"again").is_err());
    }

    #[test]
    fn live_slots_iterates_only_live() {
        let mut p = page();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let live: Vec<_> = p.live_slots().collect();
        assert_eq!(live, vec![a, c]);
    }
}
