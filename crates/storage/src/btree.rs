//! B-Tree indexes.
//!
//! An in-memory B+Tree keyed by composite [`Key`]s. Two flavours are used by
//! the catalog:
//!
//! * **primary indexes** map a unique key to the record's RID;
//! * **secondary indexes** may be non-unique and, following Section 4.2.2 of
//!   the paper, their leaf entries carry not just the RID but also the
//!   **routing fields** of the record (so a secondary-action can be routed to
//!   the right executor after the probe) and a **`deleted` flag** (so
//!   uncommitted deletes stay visible until the deleting transaction commits
//!   and flags the entry outside any transaction).
//!
//! The leaf-split path garbage-collects flagged-deleted entries before
//! deciding whether a split is really needed, as the paper suggests for
//! update-intensive workloads.
//!
//! Concurrency: the tree is protected by a single readers-writer latch. This
//! is coarser than a production latch-crabbing scheme but preserves what the
//! evaluation needs — index work is charged to "useful work" and the paper's
//! contention story is entirely about the lock manager, not about index
//! latching.

use parking_lot::RwLock;

use dora_common::prelude::*;

/// An entry stored in a leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// Physical address of the record.
    pub rid: Rid,
    /// Routing-field values of the record (empty for primary indexes).
    pub routing: Key,
    /// Logical-delete flag (Section 4.2.2): set after the deleting
    /// transaction commits; entries with the flag are ignored by probes and
    /// garbage-collected lazily on leaf splits.
    pub deleted: bool,
}

impl IndexEntry {
    /// Creates a live entry.
    pub fn new(rid: Rid, routing: Key) -> Self {
        Self {
            rid,
            routing,
            deleted: false,
        }
    }
}

/// Maximum number of keys per node before it splits.
const MAX_KEYS: usize = 64;

// Children stay boxed so splits move a pointer, not a 64-key node body.
#[allow(clippy::vec_box)]
#[derive(Debug)]
enum Node {
    Internal {
        keys: Vec<Key>,
        children: Vec<Box<Node>>,
    },
    Leaf {
        keys: Vec<Key>,
        values: Vec<Vec<IndexEntry>>,
    },
}

impl Node {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    fn is_over_capacity(&self) -> bool {
        match self {
            Node::Internal { keys, .. } => keys.len() > MAX_KEYS,
            Node::Leaf { keys, .. } => keys.len() > MAX_KEYS,
        }
    }

    /// Splits a full node in two, returning the separator key and the new
    /// right sibling.
    fn split(&mut self) -> (Key, Box<Node>) {
        match self {
            Node::Leaf { keys, values } => {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let separator = right_keys[0].clone();
                (
                    separator,
                    Box::new(Node::Leaf {
                        keys: right_keys,
                        values: right_values,
                    }),
                )
            }
            Node::Internal { keys, children } => {
                let mid = keys.len() / 2;
                let separator = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop();
                let right_children = children.split_off(mid + 1);
                (
                    separator,
                    Box::new(Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    }),
                )
            }
        }
    }
}

/// A B+Tree index from [`Key`] to one or more [`IndexEntry`] values.
pub struct BTreeIndex {
    root: RwLock<Box<Node>>,
    unique: bool,
}

impl std::fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("unique", &self.unique)
            .finish()
    }
}

impl BTreeIndex {
    /// Creates an empty index. A `unique` index rejects duplicate keys.
    pub fn new(unique: bool) -> Self {
        Self {
            root: RwLock::new(Box::new(Node::new_leaf())),
            unique,
        }
    }

    /// Whether the index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    /// Inserts an entry under `key`.
    pub fn insert(&self, key: &Key, entry: IndexEntry) -> DbResult<()> {
        let mut root = self.root.write();
        Self::insert_under_root(&mut root, key, entry, self.unique)
    }

    /// Inserts a batch of entries under a single root-lock acquisition —
    /// the parallel-recovery fast path. Equivalent to calling
    /// [`Self::insert`] for each pair in order, but replay workers stop
    /// hammering the tree lock once per record.
    pub fn insert_many(&self, entries: &[(Key, IndexEntry)]) -> DbResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut root = self.root.write();
        for (key, entry) in entries {
            Self::insert_under_root(&mut root, key, entry.clone(), self.unique)?;
        }
        Ok(())
    }

    fn insert_under_root(
        root: &mut Box<Node>,
        key: &Key,
        entry: IndexEntry,
        unique: bool,
    ) -> DbResult<()> {
        let result = Self::insert_into(root, key, entry, unique);
        if root.is_over_capacity() {
            let (separator, right) = root.split();
            let old_root = std::mem::replace(&mut **root, Node::new_leaf());
            **root = Node::Internal {
                keys: vec![separator],
                children: vec![Box::new(old_root), right],
            };
        }
        result
    }

    fn insert_into(node: &mut Node, key: &Key, entry: IndexEntry, unique: bool) -> DbResult<()> {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search(key) {
                Ok(pos) => {
                    let bucket = &mut values[pos];
                    // Lazily garbage collect flagged entries; re-inserting a
                    // key whose previous record was flagged-deleted is legal
                    // (the paper explicitly allows re-inserting the same
                    // primary key once the old entry is flagged).
                    if unique && bucket.iter().any(|e| !e.deleted) {
                        return Err(DbError::DuplicateKey {
                            table: TableId(0),
                            detail: format!("key {key}"),
                        });
                    }
                    bucket.retain(|e| !e.deleted);
                    bucket.push(entry);
                    Ok(())
                }
                Err(pos) => {
                    keys.insert(pos, key.clone());
                    values.insert(pos, vec![entry]);
                    Ok(())
                }
            },
            Node::Internal { keys, children } => {
                let child_index = match keys.binary_search(key) {
                    Ok(pos) => pos + 1,
                    Err(pos) => pos,
                };
                let result = Self::insert_into(&mut children[child_index], key, entry, unique);
                if children[child_index].is_over_capacity() {
                    Self::gc_or_split(keys, children, child_index);
                }
                result
            }
        }
    }

    /// Before splitting a leaf, first drop entries whose every value is
    /// flagged deleted (the paper's modified leaf-split algorithm); only if
    /// the leaf is still over capacity does it actually split.
    #[allow(clippy::vec_box)]
    fn gc_or_split(keys: &mut Vec<Key>, children: &mut Vec<Box<Node>>, child_index: usize) {
        let child = &mut children[child_index];
        if let Node::Leaf {
            keys: leaf_keys,
            values,
        } = child.as_mut()
        {
            let mut i = 0;
            while i < leaf_keys.len() {
                if values[i].iter().all(|e| e.deleted) {
                    leaf_keys.remove(i);
                    values.remove(i);
                } else {
                    i += 1;
                }
            }
        }
        if child.is_over_capacity() {
            let (separator, right) = child.split();
            keys.insert(child_index, separator);
            children.insert(child_index + 1, right);
        }
    }

    /// Returns the live entries stored under `key` (ignoring flagged-deleted
    /// ones).
    pub fn get(&self, key: &Key) -> Vec<IndexEntry> {
        let root = self.root.read();
        let mut node = root.as_ref();
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return match keys.binary_search(key) {
                        Ok(pos) => values[pos].iter().filter(|e| !e.deleted).cloned().collect(),
                        Err(_) => Vec::new(),
                    };
                }
                Node::Internal { keys, children } => {
                    let child_index = match keys.binary_search(key) {
                        Ok(pos) => pos + 1,
                        Err(pos) => pos,
                    };
                    node = &children[child_index];
                }
            }
        }
    }

    /// Returns every entry stored under `key`, including flagged-deleted
    /// ones. DORA's secondary-action handling needs to see flagged entries so
    /// a transaction can notice that the record "was, or is being, deleted".
    pub fn get_with_deleted(&self, key: &Key) -> Vec<IndexEntry> {
        let root = self.root.read();
        let mut node = root.as_ref();
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return match keys.binary_search(key) {
                        Ok(pos) => values[pos].clone(),
                        Err(_) => Vec::new(),
                    };
                }
                Node::Internal { keys, children } => {
                    let child_index = match keys.binary_search(key) {
                        Ok(pos) => pos + 1,
                        Err(pos) => pos,
                    };
                    node = &children[child_index];
                }
            }
        }
    }

    /// Physically removes the entry for `rid` under `key`. Used by the
    /// conventional engine (which relies on row locks for isolation) and by
    /// rollback.
    pub fn remove(&self, key: &Key, rid: Rid) -> DbResult<()> {
        let mut root = self.root.write();
        Self::modify_bucket(&mut root, key, |bucket| {
            let before = bucket.len();
            bucket.retain(|e| e.rid != rid);
            before != bucket.len()
        })
    }

    /// Sets or clears the `deleted` flag on the entry for `rid` under `key`
    /// (Section 4.2.2: flags are set by the deleting transaction *after* it
    /// commits, and cleared when a rollback resurrects the record).
    pub fn set_deleted_flag(&self, key: &Key, rid: Rid, deleted: bool) -> DbResult<()> {
        let mut root = self.root.write();
        Self::modify_bucket(&mut root, key, |bucket| {
            let mut changed = false;
            for entry in bucket.iter_mut() {
                if entry.rid == rid {
                    entry.deleted = deleted;
                    changed = true;
                }
            }
            changed
        })
    }

    fn modify_bucket(
        node: &mut Node,
        key: &Key,
        f: impl FnOnce(&mut Vec<IndexEntry>) -> bool,
    ) -> DbResult<()> {
        match node {
            Node::Leaf { keys, values } => match keys.binary_search(key) {
                Ok(pos) => {
                    if f(&mut values[pos]) {
                        Ok(())
                    } else {
                        Err(DbError::NotFound {
                            table: TableId(0),
                            detail: format!("index entry {key}"),
                        })
                    }
                }
                Err(_) => Err(DbError::NotFound {
                    table: TableId(0),
                    detail: format!("index key {key}"),
                }),
            },
            Node::Internal { keys, children } => {
                let child_index = match keys.binary_search(key) {
                    Ok(pos) => pos + 1,
                    Err(pos) => pos,
                };
                Self::modify_bucket(&mut children[child_index], key, f)
            }
        }
    }

    /// Range scan: collects live entries for keys in `range`, in key order.
    pub fn range(&self, range: &KeyRange) -> Vec<(Key, IndexEntry)> {
        let root = self.root.read();
        let mut out = Vec::new();
        Self::collect_range(root.as_ref(), range, &mut out);
        out
    }

    fn collect_range(node: &Node, range: &KeyRange, out: &mut Vec<(Key, IndexEntry)>) {
        match node {
            Node::Leaf { keys, values } => {
                for (key, bucket) in keys.iter().zip(values.iter()) {
                    if range.contains(key) {
                        for entry in bucket.iter().filter(|e| !e.deleted) {
                            out.push((key.clone(), entry.clone()));
                        }
                    }
                }
            }
            Node::Internal { children, keys } => {
                // Visit only children whose key range can intersect.
                for (i, child) in children.iter().enumerate() {
                    let lower_separator = if i == 0 { None } else { Some(&keys[i - 1]) };
                    let upper_separator = keys.get(i);
                    let below = match (&range.high, lower_separator) {
                        (Some(high), Some(low_sep)) => high <= low_sep,
                        _ => false,
                    };
                    let above = match (&range.low, upper_separator) {
                        (Some(low), Some(high_sep)) => low > high_sep,
                        _ => false,
                    };
                    if !below && !above {
                        Self::collect_range(child, range, out);
                    }
                }
            }
        }
    }

    /// Number of live keys in the index (for tests and statistics).
    pub fn len(&self) -> usize {
        let root = self.root.read();
        Self::count(root.as_ref())
    }

    /// `true` if the index holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn count(node: &Node) -> usize {
        match node {
            Node::Leaf { values, .. } => values
                .iter()
                .filter(|bucket| bucket.iter().any(|e| !e.deleted))
                .count(),
            Node::Internal { children, .. } => children.iter().map(|c| Self::count(c)).sum(),
        }
    }

    /// Depth of the tree (1 for a single leaf). Diagnostics and tests.
    pub fn depth(&self) -> usize {
        let root = self.root.read();
        let mut depth = 1;
        let mut node = root.as_ref();
        while let Node::Internal { children, .. } = node {
            depth += 1;
            node = &children[0];
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(page: u32, slot: u16) -> IndexEntry {
        IndexEntry::new(Rid::new(page, slot), Key::empty())
    }

    #[test]
    fn insert_and_get() {
        let index = BTreeIndex::new(true);
        index.insert(&Key::int(5), entry(0, 5)).unwrap();
        index.insert(&Key::int(3), entry(0, 3)).unwrap();
        let found = index.get(&Key::int(5));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rid, Rid::new(0, 5));
        assert!(index.get(&Key::int(99)).is_empty());
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let index = BTreeIndex::new(true);
        index.insert(&Key::int(1), entry(0, 1)).unwrap();
        assert!(matches!(
            index.insert(&Key::int(1), entry(0, 2)),
            Err(DbError::DuplicateKey { .. })
        ));
    }

    #[test]
    fn non_unique_index_accumulates_entries() {
        let index = BTreeIndex::new(false);
        index.insert(&Key::int(1), entry(0, 1)).unwrap();
        index.insert(&Key::int(1), entry(0, 2)).unwrap();
        assert_eq!(index.get(&Key::int(1)).len(), 2);
    }

    #[test]
    fn splits_keep_all_keys_reachable() {
        let index = BTreeIndex::new(true);
        let n = 10_000i64;
        for i in 0..n {
            // Insert in a shuffled-ish order to exercise both split halves.
            let key = (i * 7919) % n;
            index
                .insert(&Key::int(key), entry(0, (key % 1000) as u16))
                .unwrap();
        }
        assert_eq!(index.len(), n as usize);
        assert!(index.depth() >= 3);
        for probe in [0, 1, n / 2, n - 1, 4242] {
            assert_eq!(index.get(&Key::int(probe)).len(), 1, "missing key {probe}");
        }
    }

    #[test]
    fn deleted_flag_hides_entries_but_keeps_them_visible_to_executors() {
        let index = BTreeIndex::new(false);
        index
            .insert(
                &Key::int2(1, 10),
                IndexEntry::new(Rid::new(0, 1), Key::int(1)),
            )
            .unwrap();
        index
            .set_deleted_flag(&Key::int2(1, 10), Rid::new(0, 1), true)
            .unwrap();
        assert!(index.get(&Key::int2(1, 10)).is_empty());
        let with_deleted = index.get_with_deleted(&Key::int2(1, 10));
        assert_eq!(with_deleted.len(), 1);
        assert!(with_deleted[0].deleted);
        // Re-inserting the same key after the flag is legal, even on a unique
        // index.
        let unique = BTreeIndex::new(true);
        unique.insert(&Key::int(9), entry(0, 1)).unwrap();
        unique
            .set_deleted_flag(&Key::int(9), Rid::new(0, 1), true)
            .unwrap();
        unique.insert(&Key::int(9), entry(0, 2)).unwrap();
        assert_eq!(unique.get(&Key::int(9)).len(), 1);
    }

    #[test]
    fn remove_deletes_physically() {
        let index = BTreeIndex::new(false);
        index.insert(&Key::int(1), entry(0, 1)).unwrap();
        index.insert(&Key::int(1), entry(0, 2)).unwrap();
        index.remove(&Key::int(1), Rid::new(0, 1)).unwrap();
        let remaining = index.get(&Key::int(1));
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].rid, Rid::new(0, 2));
        assert!(index.remove(&Key::int(42), Rid::new(0, 0)).is_err());
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let index = BTreeIndex::new(true);
        for i in 0..1000i64 {
            index
                .insert(&Key::int(i), entry(0, (i % 100) as u16))
                .unwrap();
        }
        let range = KeyRange::new(Some(Key::int(100)), Some(Key::int(110)));
        let hits = index.range(&range);
        assert_eq!(hits.len(), 10);
        assert_eq!(hits[0].0, Key::int(100));
        assert_eq!(hits[9].0, Key::int(109));
        let keys: Vec<_> = hits.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn leaf_split_garbage_collects_flagged_entries() {
        let index = BTreeIndex::new(true);
        // Fill one leaf to capacity with entries then flag them all deleted.
        for i in 0..MAX_KEYS as i64 {
            index.insert(&Key::int(i), entry(0, i as u16)).unwrap();
        }
        for i in 0..MAX_KEYS as i64 {
            index
                .set_deleted_flag(&Key::int(i), Rid::new(0, i as u16), true)
                .unwrap();
        }
        // Keep inserting: the flagged entries must be collected instead of
        // causing the tree to grow.
        for i in 100_000..100_000 + (2 * MAX_KEYS as i64) {
            index
                .insert(&Key::int(i), entry(1, (i % 1000) as u16))
                .unwrap();
        }
        assert_eq!(index.len(), 2 * MAX_KEYS);
        assert!(index.depth() <= 2);
    }

    #[test]
    fn composite_keys_order_correctly() {
        let index = BTreeIndex::new(true);
        for warehouse in 1..=5i64 {
            for district in 1..=10i64 {
                index
                    .insert(
                        &Key::int2(warehouse, district),
                        entry(warehouse as u32, district as u16),
                    )
                    .unwrap();
            }
        }
        let range = KeyRange::new(Some(Key::int(3)), Some(Key::int(4)));
        let hits = index.range(&range);
        assert_eq!(hits.len(), 10, "all districts of warehouse 3");
        assert!(hits.iter().all(|(k, _)| k.leading_int() == Some(3)));
    }
}
