//! The catalog: table schemas, index definitions and routing metadata.
//!
//! Like the paper's prototype, the back-end is schema-agnostic (it stores
//! opaque rows addressed by RIDs) while the workload code is schema-aware.
//! The catalog is the bridge: it records column names/types, the primary-key
//! columns, the secondary indexes, and — for DORA — which columns are the
//! table's *routing fields* (Section 4.1.1).

use std::collections::HashMap;

use parking_lot::RwLock;

use dora_common::prelude::*;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: &str, ty: ValueType) -> Self {
        Self {
            name: name.to_string(),
            ty,
        }
    }
}

/// Definition of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name (unique within the database).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indices (into `columns`) of the primary-key columns.
    pub primary_key: Vec<usize>,
    /// Indices (into `columns`) of the routing fields used by DORA's routing
    /// rules. The paper notes the primary-key (or a prefix of it) works well
    /// in practice; workloads typically set this to the leading PK column
    /// (e.g. the Warehouse id).
    pub routing_fields: Vec<usize>,
}

impl TableSchema {
    /// Creates a schema. `routing_fields` defaults to the first primary-key
    /// column, which is the paper's recommended choice.
    pub fn new(name: &str, columns: Vec<ColumnDef>, primary_key: Vec<usize>) -> Self {
        let routing_fields = primary_key.first().map(|c| vec![*c]).unwrap_or_default();
        Self {
            name: name.to_string(),
            columns,
            primary_key,
            routing_fields,
        }
    }

    /// Overrides the routing fields.
    pub fn with_routing_fields(mut self, routing_fields: Vec<usize>) -> Self {
        self.routing_fields = routing_fields;
        self
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column called `name`.
    pub fn column_index(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::NoSuchObject(format!("{}.{}", self.name, name)))
    }

    /// Extracts the primary key of a row. Allocation-free for keys of up to
    /// [`Key::INLINE_LEN`] columns.
    pub fn primary_key_of(&self, row: &Row) -> Key {
        Key::from_values(self.primary_key.iter().map(|&i| row[i].clone()))
    }

    /// Extracts the routing-field values of a row (the key DORA's routing
    /// rule consumes). Allocation-free for keys of up to [`Key::INLINE_LEN`]
    /// columns.
    pub fn routing_key_of(&self, row: &Row) -> Key {
        Key::from_values(self.routing_fields.iter().map(|&i| row[i].clone()))
    }

    /// Validates that a row matches the schema (arity and column types).
    pub fn validate(&self, row: &Row) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::InvalidOperation(format!(
                "row has {} values but {} has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            )));
        }
        for (value, column) in row.iter().zip(self.columns.iter()) {
            if value.value_type() != column.ty {
                return Err(DbError::TypeMismatch {
                    expected: column.ty,
                    found: value.value_type(),
                });
            }
        }
        Ok(())
    }
}

/// Definition of a secondary index.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSpec {
    /// Index name (unique within the database).
    pub name: String,
    /// Table the index is built over.
    pub table: TableId,
    /// Indices (into the table's columns) forming the index key.
    pub key_columns: Vec<usize>,
    /// Whether the key is unique.
    pub unique: bool,
}

impl IndexSpec {
    /// Extracts this index's key from a row. Allocation-free for keys of up
    /// to [`Key::INLINE_LEN`] columns.
    pub fn key_of(&self, row: &Row) -> Key {
        Key::from_values(self.key_columns.iter().map(|&c| row[c].clone()))
    }
}

/// Catalog metadata for one table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// The table's id.
    pub id: TableId,
    /// The schema as provided at creation time.
    pub schema: TableSchema,
    /// Secondary indexes defined over the table.
    pub secondary_indexes: Vec<IndexId>,
}

/// Catalog metadata for one index.
#[derive(Debug, Clone)]
pub struct IndexMeta {
    /// The index's id.
    pub id: IndexId,
    /// The definition as provided at creation time.
    pub spec: IndexSpec,
}

/// The database catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    tables: Vec<TableMeta>,
    indexes: Vec<IndexMeta>,
    table_names: HashMap<String, TableId>,
    index_names: HashMap<String, IndexId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table, returning its id.
    pub fn add_table(&self, schema: TableSchema) -> DbResult<TableId> {
        let mut inner = self.inner.write();
        if inner.table_names.contains_key(&schema.name) {
            return Err(DbError::InvalidOperation(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let id = TableId(inner.tables.len() as u32);
        inner.table_names.insert(schema.name.clone(), id);
        inner.tables.push(TableMeta {
            id,
            schema,
            secondary_indexes: Vec::new(),
        });
        Ok(id)
    }

    /// Registers a secondary index, returning its id.
    pub fn add_index(&self, spec: IndexSpec) -> DbResult<IndexId> {
        let mut inner = self.inner.write();
        if inner.index_names.contains_key(&spec.name) {
            return Err(DbError::InvalidOperation(format!(
                "index {} already exists",
                spec.name
            )));
        }
        let table_idx = spec.table.0 as usize;
        if table_idx >= inner.tables.len() {
            return Err(DbError::NoSuchObject(format!("{}", spec.table)));
        }
        let id = IndexId(inner.indexes.len() as u32);
        inner.index_names.insert(spec.name.clone(), id);
        inner.indexes.push(IndexMeta { id, spec });
        inner.tables[table_idx].secondary_indexes.push(id);
        Ok(id)
    }

    /// Table metadata by id.
    pub fn table(&self, id: TableId) -> DbResult<TableMeta> {
        self.inner
            .read()
            .tables
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("{id}")))
    }

    /// Table id by name.
    pub fn table_id(&self, name: &str) -> DbResult<TableId> {
        self.inner
            .read()
            .table_names
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchObject(name.to_string()))
    }

    /// Index metadata by id.
    pub fn index(&self, id: IndexId) -> DbResult<IndexMeta> {
        self.inner
            .read()
            .indexes
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("{id}")))
    }

    /// Index id by name.
    pub fn index_id(&self, name: &str) -> DbResult<IndexId> {
        self.inner
            .read()
            .index_names
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NoSuchObject(name.to_string()))
    }

    /// All tables currently defined.
    pub fn tables(&self) -> Vec<TableMeta> {
        self.inner.read().tables.clone()
    }

    /// All secondary indexes defined over `table`.
    pub fn secondary_indexes_of(&self, table: TableId) -> Vec<IndexMeta> {
        let inner = self.inner.read();
        inner
            .tables
            .get(table.0 as usize)
            .map(|t| {
                t.secondary_indexes
                    .iter()
                    .filter_map(|id| inner.indexes.get(id.0 as usize).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.inner.read().tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("c_w_id", ValueType::Int),
                ColumnDef::new("c_d_id", ValueType::Int),
                ColumnDef::new("c_id", ValueType::Int),
                ColumnDef::new("c_last", ValueType::Text),
                ColumnDef::new("c_balance", ValueType::Float),
            ],
            vec![0, 1, 2],
        )
    }

    #[test]
    fn schema_key_extraction() {
        let schema = sample_schema();
        let row: Row = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(42),
            Value::Text("SMITH".into()),
            Value::Float(10.0),
        ];
        assert_eq!(schema.primary_key_of(&row), Key::int3(1, 2, 42));
        // Default routing field is the first PK column (warehouse id).
        assert_eq!(schema.routing_key_of(&row), Key::int(1));
    }

    #[test]
    fn schema_validation_checks_arity_and_types() {
        let schema = sample_schema();
        let bad_arity: Row = vec![Value::Int(1)];
        assert!(schema.validate(&bad_arity).is_err());
        let bad_type: Row = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Text("oops".into()),
            Value::Text("SMITH".into()),
            Value::Float(10.0),
        ];
        assert!(matches!(
            schema.validate(&bad_type),
            Err(DbError::TypeMismatch { .. })
        ));
        let good: Row = vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Text("SMITH".into()),
            Value::Float(0.0),
        ];
        assert!(schema.validate(&good).is_ok());
    }

    #[test]
    fn catalog_registers_tables_and_indexes() {
        let catalog = Catalog::new();
        let table = catalog.add_table(sample_schema()).unwrap();
        let index = catalog
            .add_index(IndexSpec {
                name: "customer_by_name".into(),
                table,
                key_columns: vec![0, 1, 3],
                unique: false,
            })
            .unwrap();
        assert_eq!(catalog.table_id("customer").unwrap(), table);
        assert_eq!(catalog.index_id("customer_by_name").unwrap(), index);
        assert_eq!(catalog.secondary_indexes_of(table).len(), 1);
        assert_eq!(catalog.table(table).unwrap().schema.name, "customer");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let catalog = Catalog::new();
        catalog.add_table(sample_schema()).unwrap();
        assert!(catalog.add_table(sample_schema()).is_err());
        assert!(catalog.table_id("missing").is_err());
    }

    #[test]
    fn index_on_missing_table_is_rejected() {
        let catalog = Catalog::new();
        let result = catalog.add_index(IndexSpec {
            name: "orphan".into(),
            table: TableId(9),
            key_columns: vec![0],
            unique: true,
        });
        assert!(result.is_err());
    }

    #[test]
    fn routing_fields_can_be_overridden() {
        let schema = sample_schema().with_routing_fields(vec![0, 1]);
        let row: Row = vec![
            Value::Int(7),
            Value::Int(3),
            Value::Int(1),
            Value::Text("X".into()),
            Value::Float(0.0),
        ];
        assert_eq!(schema.routing_key_of(&row), Key::int2(7, 3));
    }
}
