//! ARIES-style write-ahead logging.
//!
//! The log manager assigns LSNs, buffers log records in memory (the paper
//! keeps the log on an in-memory file system), "flushes" at commit with a
//! configurable simulated latency, and retains the full record history so
//! that:
//!
//! * transaction rollback can walk a transaction's records backwards through
//!   the per-transaction `prev_lsn` chain (partial rollback support);
//! * recovery ([`LogManager::committed_changes`]) can replay the effects of
//!   committed transactions into a fresh database, which the integration
//!   tests use to validate the log contents.
//!
//! The paper points out that for TPC-C NewOrder/Payment and TPC-B the log
//! manager becomes the next bottleneck once lock-manager contention is gone
//! (Section 5.4); the simulated flush latency plus the flush mutex reproduce
//! that group-commit pressure.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use dora_common::prelude::*;
use dora_metrics::{incr, record_time, CounterKind, TimeCategory};

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// What a log record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecordKind {
    /// Transaction begin.
    Begin,
    /// A record insert: `after` holds the row image.
    Insert {
        table: TableId,
        rid: Rid,
        after: Vec<u8>,
    },
    /// A record update: both images are kept for undo/redo.
    Update {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// A record delete: `before` holds the row image for undo.
    Delete {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
    },
    /// Transaction commit.
    Commit,
    /// Transaction abort (all updates undone).
    Abort,
}

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// This record's LSN.
    pub lsn: Lsn,
    /// Owning transaction.
    pub txn: TxnId,
    /// Previous LSN written by the same transaction ([`Lsn`] 0 if none):
    /// the backward chain rollback walks.
    pub prev_lsn: Lsn,
    /// Payload.
    pub kind: LogRecordKind,
}

/// The write-ahead log.
pub struct LogManager {
    records: Mutex<Vec<LogRecord>>,
    last_lsn_per_txn: Mutex<HashMap<TxnId, Lsn>>,
    next_lsn: AtomicU64,
    flushed_lsn: AtomicU64,
    flush_latency: Duration,
    flush_lock: Mutex<()>,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("next_lsn", &self.next_lsn.load(Ordering::Relaxed))
            .field("flushed_lsn", &self.flushed_lsn.load(Ordering::Relaxed))
            .finish()
    }
}

impl LogManager {
    /// Creates a log manager whose flush takes `flush_latency_micros`
    /// simulated microseconds.
    pub fn new(flush_latency_micros: u64) -> Self {
        Self {
            records: Mutex::new(Vec::new()),
            last_lsn_per_txn: Mutex::new(HashMap::new()),
            next_lsn: AtomicU64::new(1),
            flushed_lsn: AtomicU64::new(0),
            flush_latency: Duration::from_micros(flush_latency_micros),
            flush_lock: Mutex::new(()),
        }
    }

    /// Appends a record for `txn`, returning its LSN.
    pub fn append(&self, txn: TxnId, kind: LogRecordKind) -> Lsn {
        let lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed));
        let prev_lsn = {
            let mut last = self.last_lsn_per_txn.lock();
            last.insert(txn, lsn).unwrap_or(Lsn(0))
        };
        let record = LogRecord {
            lsn,
            txn,
            prev_lsn,
            kind,
        };
        self.records.lock().push(record);
        incr(CounterKind::LogRecords);
        lsn
    }

    /// Flushes the log up to (at least) `lsn`, simulating the configured
    /// device latency. Threads that find their LSN already flushed return
    /// immediately — the group-commit effect.
    pub fn flush(&self, lsn: Lsn) {
        if self.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            return;
        }
        let start = std::time::Instant::now();
        let _guard = self.flush_lock.lock();
        if self.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            record_time(TimeCategory::LogWait, start.elapsed());
            return;
        }
        if !self.flush_latency.is_zero() {
            // Busy-wait rather than sleep: sleeping rounds up to scheduler
            // granularity and would distort the microsecond-scale latencies
            // we are simulating.
            let deadline = std::time::Instant::now() + self.flush_latency;
            while std::time::Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        let highest = self.next_lsn.load(Ordering::Relaxed).saturating_sub(1);
        self.flushed_lsn
            .store(highest.max(lsn.0), Ordering::Release);
        incr(CounterKind::LogFlushes);
        record_time(TimeCategory::LogWait, start.elapsed());
    }

    /// Highest LSN known to be flushed.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.flushed_lsn.load(Ordering::Acquire))
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the records of `txn` in reverse order of appending (the order
    /// rollback must apply undo in).
    pub fn records_for_undo(&self, txn: TxnId) -> Vec<LogRecord> {
        let records = self.records.lock();
        let mut mine: Vec<LogRecord> = records.iter().filter(|r| r.txn == txn).cloned().collect();
        mine.sort_by_key(|record| std::cmp::Reverse(record.lsn));
        mine
    }

    /// Analysis + redo view of the log: the data-change records of every
    /// transaction that has a `Commit` record, in LSN order. Recovery applies
    /// these to an empty database to reconstruct committed state.
    pub fn committed_changes(&self) -> Vec<LogRecord> {
        let records = self.records.lock();
        let committed: std::collections::HashSet<TxnId> = records
            .iter()
            .filter(|r| matches!(r.kind, LogRecordKind::Commit))
            .map(|r| r.txn)
            .collect();
        records
            .iter()
            .filter(|r| committed.contains(&r.txn))
            .filter(|r| {
                matches!(
                    r.kind,
                    LogRecordKind::Insert { .. }
                        | LogRecordKind::Update { .. }
                        | LogRecordKind::Delete { .. }
                )
            })
            .cloned()
            .collect()
    }

    /// Forgets per-transaction bookkeeping for a finished transaction.
    pub fn forget(&self, txn: TxnId) {
        self.last_lsn_per_txn.lock().remove(&txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic_and_chained_per_txn() {
        let log = LogManager::new(0);
        let a1 = log.append(TxnId(1), LogRecordKind::Begin);
        let b1 = log.append(TxnId(2), LogRecordKind::Begin);
        let a2 = log.append(
            TxnId(1),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 0),
                after: vec![1],
            },
        );
        assert!(a1 < b1 && b1 < a2);
        let undo = log.records_for_undo(TxnId(1));
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].lsn, a2);
        assert_eq!(undo[0].prev_lsn, a1);
        assert_eq!(undo[1].prev_lsn, Lsn(0));
    }

    #[test]
    fn flush_advances_flushed_lsn() {
        let log = LogManager::new(0);
        let lsn = log.append(TxnId(1), LogRecordKind::Commit);
        assert!(log.flushed_lsn() < lsn);
        log.flush(lsn);
        assert!(log.flushed_lsn() >= lsn);
        // Second flush of the same LSN is a no-op (group commit fast path).
        log.flush(lsn);
    }

    #[test]
    fn committed_changes_exclude_uncommitted_and_aborted() {
        let log = LogManager::new(0);
        log.append(TxnId(1), LogRecordKind::Begin);
        log.append(
            TxnId(1),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 0),
                after: vec![1],
            },
        );
        log.append(TxnId(1), LogRecordKind::Commit);

        log.append(TxnId(2), LogRecordKind::Begin);
        log.append(
            TxnId(2),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 1),
                after: vec![2],
            },
        );
        log.append(TxnId(2), LogRecordKind::Abort);

        log.append(TxnId(3), LogRecordKind::Begin);
        log.append(
            TxnId(3),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 2),
                after: vec![3],
            },
        );

        let committed = log.committed_changes();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].txn, TxnId(1));
    }

    #[test]
    fn simulated_flush_latency_is_applied() {
        let log = LogManager::new(200);
        let lsn = log.append(TxnId(1), LogRecordKind::Commit);
        let start = std::time::Instant::now();
        log.flush(lsn);
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn concurrent_appends_have_unique_lsns() {
        use std::sync::Arc;
        let log = Arc::new(LogManager::new(0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    (0..500)
                        .map(|_| log.append(TxnId(t + 1), LogRecordKind::Begin))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
