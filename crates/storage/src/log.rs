//! ARIES-style write-ahead logging, partitioned into per-executor streams
//! with asynchronous group commit.
//!
//! The log is sharded into [`DurabilityConfig::log_streams`] independent
//! streams. Stream 0 serves unbound threads (baseline workers, clients and
//! secondary actions); DORA executor threads bind to the remaining streams
//! round-robin ([`bind_executor_log_stream`]). Each stream assigns its own
//! dense, stream-local LSNs, buffers records in memory (the paper keeps the
//! log on an in-memory file system), and runs its *own* group-commit
//! flusher daemon with an independent adaptive window — so commit batching
//! parallelizes across streams instead of serializing behind one mutex
//! (the log manager is the last centralized structure the paper calls out
//! in Section 5.4).
//!
//! Cross-stream ordering is recovered from a cheap global **commit
//! sequence**: at precommit a transaction draws the next sequence number
//! (while its locks are still held, so dependents always draw larger
//! numbers) and appends a **commit fence** carrying that sequence and the
//! full list of streams it touched to *every* one of those streams.
//! Recovery ([`LogManager::committed_changes_in_prefixes`]) treats a
//! transaction as committed iff all of its streams contain the fence
//! *and* every smaller sequence number is also fully fenced within the
//! surviving prefixes (the maximal sequence-dense prefix). The density
//! requirement is what makes early lock release safe across streams: a
//! dependent's after-images never replay without the transaction it read
//! from. The flip side — shared with every multi-log design that
//! acknowledges commits at per-stream durability rather than at a global
//! durable horizon — is that a crash can discard a fenced transaction
//! whose concurrently-sequenced neighbour was torn.
//!
//! Two durability paths per stream, selected by
//! [`DurabilityConfig::group_commit`]:
//!
//! * **Synchronous** — the committing thread drives the simulated device
//!   write itself under the stream's flush mutex (with the usual
//!   piggybacking fast path). Kept as the measurement baseline; composes
//!   with `log_streams > 1` (per-stream caller-driven flush).
//! * **Group commit** — a dedicated `log-flusher-N` daemon per stream
//!   batches pending commit fences into one device write per group.
//!   Committers either *park* on an LSN-keyed condvar ticket queue
//!   ([`LogManager::flush`]) or hand the flusher a completion callback
//!   ([`LogManager::submit_commit`], which fires once *every* touched
//!   stream's fence is durable) — the path DORA executors use so they
//!   never sleep on log I/O.
//!
//! The log manager also takes **fuzzy checkpoints**
//! ([`LogManager::maybe_checkpoint`]): the committed history is folded
//! into a net-effect snapshot per `(table, rid)` plus per-stream low-water
//! LSNs, so recovery bulk-applies the snapshot and replays only the delta
//! since the last checkpoint — O(delta), not O(history).

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dora_common::prelude::*;
use dora_metrics::{incr, record_time, CounterKind, TimeCategory, ValueHistogram};

/// Log sequence number, local to one stream (dense from 1 per stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// Identifier of a log stream (index into the partitioned log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub usize);

thread_local! {
    /// The log stream the current thread appends to (`None` = stream 0).
    static BOUND_STREAM: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Binds the calling thread to `stream`: every record it appends from now
/// on goes to that stream (clamped to the stream count of whichever log it
/// appends to). DORA executor threads call this once at spawn; unbound
/// threads — baseline workers, clients, secondary actions — use stream 0,
/// the dedicated baseline stream.
pub fn bind_executor_log_stream(stream: StreamId) {
    BOUND_STREAM.with(|bound| bound.set(Some(stream.0)));
}

/// The stream the calling thread is bound to, if any.
pub fn bound_log_stream() -> Option<StreamId> {
    BOUND_STREAM.with(|bound| bound.get().map(StreamId))
}

/// What a log record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecordKind {
    /// Transaction begin. Appended lazily, immediately before the
    /// transaction's first data-change record — read-only transactions
    /// generate zero log traffic.
    Begin,
    /// A record insert: `after` holds the row image.
    Insert {
        table: TableId,
        rid: Rid,
        after: Vec<u8>,
    },
    /// A record update: both images are kept for undo/redo.
    Update {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// A record delete: `before` holds the row image for undo.
    Delete {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
    },
    /// Transaction commit fence. Written to *every* stream the transaction
    /// touched; recovery honours it only when all copies survive and the
    /// sequence prefix below `seq` is dense.
    Commit {
        /// Global commit-order sequence (dense from 1; drawn while the
        /// transaction's locks are still held, so dependents order after
        /// their writers).
        seq: u64,
        /// Every stream the transaction wrote (each holds one fence copy).
        streams: Vec<StreamId>,
    },
    /// Transaction abort (all updates undone).
    Abort,
}

impl LogRecordKind {
    /// `true` for the record kinds recovery replays (insert/update/delete).
    fn is_data_change(&self) -> bool {
        matches!(
            self,
            LogRecordKind::Insert { .. }
                | LogRecordKind::Update { .. }
                | LogRecordKind::Delete { .. }
        )
    }

    /// The row a data-change record touches (`None` for begin/commit/abort).
    pub fn row_key(&self) -> Option<(TableId, Rid)> {
        match self {
            LogRecordKind::Insert { table, rid, .. }
            | LogRecordKind::Update { table, rid, .. }
            | LogRecordKind::Delete { table, rid, .. } => Some((*table, *rid)),
            _ => None,
        }
    }
}

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// This record's stream-local LSN.
    pub lsn: Lsn,
    /// The stream the record was appended to.
    pub stream: StreamId,
    /// Owning transaction.
    pub txn: TxnId,
    /// Previous LSN written by the same transaction *on the same stream*
    /// ([`Lsn`] 0 if none): the backward chain rollback walks.
    pub prev_lsn: Lsn,
    /// Payload.
    pub kind: LogRecordKind,
}

/// Completion callback fired by the flusher once a submitted commit record's
/// fate is decided: `true` means durable, `false` means the stream's device
/// writes failed past the retry budget and this commit can never harden
/// (durability lost). Runs on the flusher thread; must not block on the log.
pub type DurableCallback = Box<dyn FnOnce(bool) + Send + 'static>;

/// One commit record waiting for the flusher, with its optional completion
/// callback (parked waiters use the condvar ticket queue instead).
struct PendingCommit {
    lsn: Lsn,
    callback: Option<DurableCallback>,
}

/// Flusher-side queue state, shared between the daemon and submitters.
#[derive(Default)]
struct FlusherQueue {
    pending: Vec<PendingCommit>,
    /// When the oldest pending commit arrived (starts the group window).
    first_arrival: Option<Instant>,
    shutdown: bool,
}

/// State shared between one stream, its committers and its flusher daemon.
struct FlushCore {
    /// Highest LSN known durable (lock-free fast path).
    flushed_lsn: AtomicU64,
    /// Highest LSN ever assigned on this stream; a device write hardens
    /// everything buffered, i.e. up to this point at write start.
    last_assigned: AtomicU64,
    /// Condvar ticket queue keyed by LSN: waiters park here until the
    /// mirror value reaches their LSN; the flusher broadcasts per group.
    durable: Mutex<u64>,
    durable_cond: Condvar,
    /// Work queue for the flusher daemon.
    queue: Mutex<FlusherQueue>,
    work_cond: Condvar,
    /// Commits the flusher has taken out of the queue but not yet resolved —
    /// the watchdog's view of a group currently riding (or stuck in) a
    /// device write.
    inflight: AtomicU64,
    /// Simulated log-device latency per write.
    flush_latency: Duration,
    durability: DurabilityConfig,
    /// Commit records hardened per device write.
    group_sizes: Mutex<ValueHistogram>,
    /// The deterministic fault schedule device writes draw from.
    faults: Arc<FaultPlan>,
    /// Set once this stream's device writes failed past the retry budget:
    /// nothing on this stream will ever harden again, and every current and
    /// future durability wait resolves to "lost".
    failed: AtomicBool,
}

impl FlushCore {
    /// Publishes a new durable horizon and wakes parked committers.
    fn advance(&self, new_flushed: u64) {
        self.flushed_lsn.fetch_max(new_flushed, Ordering::AcqRel);
        let mut durable = self.durable.lock();
        if new_flushed > *durable {
            *durable = new_flushed;
            self.durable_cond.notify_all();
        }
    }

    /// Simulates the log-device write latency. Deadline-polling rather than
    /// sleep — sleeping rounds up to scheduler granularity and would
    /// distort the microsecond-scale latencies we are simulating — but
    /// yielding inside the loop, because a device write is I/O, not
    /// compute: while one stream's write is in flight, other streams'
    /// flushers and the executors feeding them must keep running even when
    /// hardware contexts are scarce. On an idle core the yield returns
    /// immediately, preserving accuracy.
    ///
    /// The fault plan can make one attempt take a latency spike or fail
    /// outright (`false`); a failed attempt still pays its device latency,
    /// like a real write that errors only at completion.
    fn device_write_once(&self) -> bool {
        let mut latency = self.flush_latency;
        if self.faults.enabled() && self.faults.should_inject(FaultSite::DeviceLatencySpike) {
            incr(CounterKind::FaultsInjected);
            latency += Duration::from_micros(self.faults.config().device_spike_micros);
        }
        busy_wait(latency);
        if self.faults.enabled() && self.faults.should_inject(FaultSite::DeviceWriteError) {
            incr(CounterKind::FaultsInjected);
            return false;
        }
        true
    }

    /// One *logical* device write: retries transient failures with capped
    /// exponential backoff up to the configured retry budget. Returns
    /// `false` only when the budget is exhausted — the caller must then
    /// declare this stream's durability lost. With `max_write_retries == 0`
    /// (self-healing off) the first transient failure is final.
    fn device_write_with_retry(&self) -> bool {
        let config = self.faults.config();
        let mut attempt: u32 = 0;
        loop {
            if self.device_write_once() {
                return true;
            }
            if attempt >= config.max_write_retries {
                return false;
            }
            incr(CounterKind::FlushRetries);
            // Exponential backoff, capped at 32x the base so a deep retry
            // chain never parks the flusher for longer than the workload.
            let backoff = config
                .retry_backoff_micros
                .saturating_mul(1u64 << attempt.min(5));
            busy_wait(Duration::from_micros(backoff));
            attempt += 1;
        }
    }

    /// Declares this stream's durability permanently lost and wakes every
    /// parked committer so they observe the failure instead of sleeping on a
    /// horizon that will never advance.
    fn fail(&self) {
        self.failed.store(true, Ordering::Release);
        let _durable = self.durable.lock();
        self.durable_cond.notify_all();
    }

    /// The flusher daemon main loop: collect a group (waiting out the
    /// configured window unless the group is already full), perform one
    /// device write for the whole group, advance the durable horizon, wake
    /// parked committers and fire completion callbacks. Each stream runs
    /// its own copy, so groups on different streams form and harden in
    /// parallel.
    fn run_flusher(self: Arc<Self>) {
        let window = Duration::from_micros(self.durability.group_window_micros);
        let max_group = self.durability.max_group_size.max(1);
        loop {
            let batch = {
                let mut queue = self.queue.lock();
                loop {
                    if queue.pending.is_empty() {
                        if queue.shutdown {
                            return;
                        }
                        self.work_cond.wait(&mut queue);
                        continue;
                    }
                    if queue.shutdown || window.is_zero() || queue.pending.len() >= max_group {
                        break;
                    }
                    let deadline = queue.first_arrival.unwrap_or_else(Instant::now) + window;
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    // May wake early on new arrivals; the loop re-evaluates
                    // the group-size cutoff and the remaining window.
                    self.work_cond.wait_for(&mut queue, deadline - now);
                }
                queue.first_arrival = None;
                std::mem::take(&mut queue.pending)
            };
            self.inflight.store(batch.len() as u64, Ordering::Release);
            // A stream whose durability is already lost fast-fails every
            // later group: no device writes, every callback hears `false`.
            if self.failed.load(Ordering::Acquire) {
                for commit in batch {
                    if let Some(callback) = commit.callback {
                        fire_callback(callback, false);
                    }
                }
                self.inflight.store(0, Ordering::Release);
                continue;
            }
            if self.faults.enabled() && self.faults.should_inject(FaultSite::FlusherStall) {
                incr(CounterKind::FaultsInjected);
                std::thread::sleep(Duration::from_micros(
                    self.faults.config().flusher_stall_micros,
                ));
            }
            // Everything appended up to this point rides this device write.
            let horizon = self.last_assigned.load(Ordering::Acquire);
            let target = batch.iter().map(|p| p.lsn.0).max().unwrap_or(0);
            let start = Instant::now();
            let wrote = self.device_write_with_retry();
            record_time(TimeCategory::LogWait, start.elapsed());
            if !wrote {
                self.fail();
                for commit in batch {
                    if let Some(callback) = commit.callback {
                        fire_callback(callback, false);
                    }
                }
                self.inflight.store(0, Ordering::Release);
                continue;
            }
            self.advance(horizon.max(target));
            incr(CounterKind::LogFlushes);
            incr(CounterKind::GroupCommits);
            self.group_sizes.lock().record(batch.len() as u64);
            for commit in batch {
                if let Some(callback) = commit.callback {
                    fire_callback(callback, true);
                }
            }
            self.inflight.store(0, Ordering::Release);
        }
    }
}

/// Runs a durability callback on the flusher thread. The durability work for
/// the callback's group is already done (horizon advanced, parked waiters
/// woken), so a panicking callback must not kill the daemon — every later
/// commit would park forever on a dead flusher. Panics are swallowed,
/// counted ([`CounterKind::CallbackPanics`]) and reported once per process.
fn fire_callback(callback: DurableCallback, durable: bool) {
    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| callback(durable)))
    {
        incr(CounterKind::CallbackPanics);
        static WARNED: AtomicBool = AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!(
                "log-flusher: durability callback panicked (counted as callback-panics, \
                 reported once): {panic:?}"
            );
        }
    }
}

/// Deadline-polls for `duration` (see [`FlushCore::device_write_once`] for
/// why polling, not sleeping), yielding so other threads keep running.
fn busy_wait(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        std::thread::yield_now();
    }
}

/// One stream's in-memory record buffer with a reclaimable prefix.
///
/// LSNs are stable identities, the buffer is not: fuzzy checkpoints may
/// truncate an already-folded prefix, after which the record with LSN `n`
/// lives at buffered index `n - 1 - base`. `base` counts the truncated
/// records, so `total()` keeps reporting the full appended history and LSN
/// assignment stays dense across reclamation.
#[derive(Default)]
struct StreamBuffer {
    /// Records reclaimed (truncated) off the front at checkpoints.
    base: u64,
    /// The retained suffix, in LSN order.
    buffered: Vec<LogRecord>,
}

impl StreamBuffer {
    /// Total records ever appended to this stream (reclaimed + retained).
    fn total(&self) -> u64 {
        self.base + self.buffered.len() as u64
    }

    /// Buffered index of `lsn`. Panics (via slice indexing at the caller)
    /// only if the record was reclaimed — which the checkpoint's live-
    /// transaction floor rules out for every chain still walked.
    fn index_of(&self, lsn: Lsn) -> usize {
        debug_assert!(lsn.0 > self.base, "LSN {lsn:?} was reclaimed");
        (lsn.0 - 1 - self.base) as usize
    }

    /// The retained records whose LSN is ≤ `cut` (everything retained when
    /// `cut` is past the end).
    fn retained_up_to(&self, cut: Lsn) -> &[LogRecord] {
        let len = (cut.0.saturating_sub(self.base) as usize).min(self.buffered.len());
        &self.buffered[..len]
    }

    /// The retained records whose LSN is > `low` (reclaimed records are
    /// below every valid low-water mark, so clamping to the base is exact).
    fn retained_after(&self, low: Lsn) -> &[LogRecord] {
        let from = (low.0.saturating_sub(self.base) as usize).min(self.buffered.len());
        &self.buffered[from..]
    }
}

/// One partition of the log: its own record buffer, LSN space, flush mutex
/// and flusher daemon.
struct LogStream {
    id: StreamId,
    /// This stream's records in LSN order, behind a reclaimable prefix
    /// (LSNs are assigned under this mutex).
    records: Mutex<StreamBuffer>,
    /// Per-transaction backward chain heads, for this stream only.
    last_lsn_per_txn: Mutex<HashMap<TxnId, Lsn>>,
    core: Arc<FlushCore>,
    /// Serializes caller-driven device writes in synchronous mode.
    flush_lock: Mutex<()>,
    /// The `log-flusher-N` daemon, spawned lazily on the first group-commit
    /// request and joined on drop.
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl LogStream {
    fn new(
        id: StreamId,
        flush_latency_micros: u64,
        durability: DurabilityConfig,
        faults: Arc<FaultPlan>,
    ) -> Self {
        Self {
            id,
            records: Mutex::new(StreamBuffer::default()),
            last_lsn_per_txn: Mutex::new(HashMap::new()),
            core: Arc::new(FlushCore {
                flushed_lsn: AtomicU64::new(0),
                last_assigned: AtomicU64::new(0),
                durable: Mutex::new(0),
                durable_cond: Condvar::new(),
                queue: Mutex::new(FlusherQueue::default()),
                work_cond: Condvar::new(),
                inflight: AtomicU64::new(0),
                flush_latency: Duration::from_micros(flush_latency_micros),
                durability,
                group_sizes: Mutex::new(ValueHistogram::new()),
                faults,
                failed: AtomicBool::new(false),
            }),
            flush_lock: Mutex::new(()),
            flusher: Mutex::new(None),
        }
    }

    /// Appends a record for `txn`, returning its stream-local LSN.
    fn append(&self, txn: TxnId, kind: LogRecordKind) -> Lsn {
        let mut records = self.records.lock();
        let lsn = Lsn(records.total() + 1);
        self.core.last_assigned.store(lsn.0, Ordering::Release);
        let prev_lsn = {
            let mut last = self.last_lsn_per_txn.lock();
            last.insert(txn, lsn).unwrap_or(Lsn(0))
        };
        records.buffered.push(LogRecord {
            lsn,
            stream: self.id,
            txn,
            prev_lsn,
            kind,
        });
        drop(records);
        incr(CounterKind::LogRecords);
        lsn
    }

    fn ensure_flusher(&self) {
        let mut flusher = self.flusher.lock();
        if flusher.is_none() {
            let core = Arc::clone(&self.core);
            *flusher = Some(
                std::thread::Builder::new()
                    .name(format!("log-flusher-{}", self.id.0))
                    .spawn(move || core.run_flusher())
                    .expect("spawn log-flusher"),
            );
        }
    }

    /// Hands a pending commit to this stream's flusher daemon.
    fn enqueue(&self, lsn: Lsn, callback: Option<DurableCallback>) {
        self.ensure_flusher();
        let mut queue = self.core.queue.lock();
        if queue.first_arrival.is_none() {
            queue.first_arrival = Some(Instant::now());
        }
        queue.pending.push(PendingCommit { lsn, callback });
        drop(queue);
        self.core.work_cond.notify_one();
    }

    /// Starts hardening `lsn` without blocking, where the mode allows it.
    /// Returns `(owes_wait, ok_so_far)`: in group-commit mode the request is
    /// handed to the flusher daemon and the caller still owes a
    /// [`Self::wait_durable`]; in synchronous mode the caller must drive the
    /// device write itself, so this degenerates to a blocking
    /// [`Self::flush`] whose success lands in `ok_so_far`. Multi-stream
    /// commit waits use this to overlap the group windows of every touched
    /// stream (max-of-latencies, not sum).
    fn start_flush(&self, lsn: Lsn) -> (bool, bool) {
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            return (false, true);
        }
        if self.core.failed.load(Ordering::Acquire) {
            return (false, false);
        }
        if self.core.durability.group_commit {
            self.enqueue(lsn, None);
            return (true, true);
        }
        (false, self.flush(lsn))
    }

    /// Blocks until this stream's flusher reports durability up to `lsn`
    /// (`true`), or until the stream's durability is lost for good
    /// (`false`). Only meaningful after a [`Self::start_flush`] that said
    /// the caller owes a wait.
    fn wait_durable(&self, lsn: Lsn) -> bool {
        let mut durable = self.core.durable.lock();
        loop {
            if *durable >= lsn.0 {
                return true;
            }
            if self.core.failed.load(Ordering::Acquire) {
                return false;
            }
            self.core.durable_cond.wait(&mut durable);
        }
    }

    /// Blocks until this stream is durable up to (at least) `lsn`; `false`
    /// means durability was lost for good before `lsn` hardened.
    fn flush(&self, lsn: Lsn) -> bool {
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            return true;
        }
        if self.core.failed.load(Ordering::Acquire) {
            return false;
        }
        if self.core.durability.group_commit {
            self.enqueue(lsn, None);
            return self.wait_durable(lsn);
        }
        let start = Instant::now();
        let _guard = self.flush_lock.lock();
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            record_time(TimeCategory::LogWait, start.elapsed());
            return true;
        }
        if self.core.failed.load(Ordering::Acquire) {
            return false;
        }
        let horizon = self.core.last_assigned.load(Ordering::Acquire);
        let wrote = self.core.device_write_with_retry();
        if !wrote {
            self.core.fail();
            record_time(TimeCategory::LogWait, start.elapsed());
            return false;
        }
        self.core.advance(horizon.max(lsn.0));
        incr(CounterKind::LogFlushes);
        record_time(TimeCategory::LogWait, start.elapsed());
        true
    }

    /// Registers `callback` to fire once this stream is durable up to `lsn`
    /// — or once that can never happen — without blocking the caller.
    /// Already-durable LSNs, already-failed streams and synchronous mode
    /// complete inline on the calling thread.
    fn submit_commit(&self, lsn: Lsn, callback: DurableCallback) {
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            callback(true);
            return;
        }
        if self.core.failed.load(Ordering::Acquire) {
            callback(false);
            return;
        }
        if !self.core.durability.group_commit {
            let durable = self.flush(lsn);
            callback(durable);
            return;
        }
        self.enqueue(lsn, Some(callback));
    }

    fn flushed_lsn(&self) -> Lsn {
        Lsn(self.core.flushed_lsn.load(Ordering::Acquire))
    }

    fn shutdown(&self) {
        let handle = self.flusher.lock().take();
        if let Some(handle) = handle {
            {
                let mut queue = self.core.queue.lock();
                queue.shutdown = true;
            }
            self.core.work_cond.notify_one();
            // A durability callback can own the last reference to the
            // database, so this drop chain may run ON a flusher thread.
            // Joining yourself is a deadlock; detach instead — the thread
            // has already seen `shutdown` and exits on its own.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

/// A fuzzy checkpoint: the committed history up to `seq_horizon`, folded
/// into net-effect records per row, plus the records of transactions that
/// were still undecided when the checkpoint was cut (carried forward so a
/// fence landing after the low-water mark loses nothing).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Per-stream cut: this checkpoint covers records with LSN ≤
    /// `low_water[stream]`; recovery replays only the tail past it.
    low_water: Vec<Lsn>,
    /// Commit sequences ≤ this are folded into `rows`.
    seq_horizon: u64,
    /// Net effect per row, as the minimal record list replay must apply
    /// (usually one record; two for delete-then-reinsert slot reuse).
    rows: HashMap<(TableId, Rid), Vec<LogRecord>>,
    /// Records (below the low-water marks) of transactions neither
    /// committed ≤ `seq_horizon` nor aborted at build time.
    pending: Vec<LogRecord>,
}

impl Checkpoint {
    /// Per-stream LSNs this checkpoint's folded state already covers.
    pub fn low_water(&self) -> &[Lsn] {
        &self.low_water
    }

    /// Highest commit sequence folded into the checkpoint.
    pub fn seq_horizon(&self) -> u64 {
        self.seq_horizon
    }

    /// Number of distinct rows with folded state.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Carried records of transactions undecided at build time.
    pub fn pending(&self) -> &[LogRecord] {
        &self.pending
    }

    /// The folded rows as a replayable record list, sorted by row so
    /// recovery output is deterministic. Net effects of different rows
    /// commute, so recovery may also apply them sharded in parallel.
    pub fn rows_flat(&self) -> Vec<LogRecord> {
        let mut keys: Vec<(TableId, Rid)> = self.rows.keys().copied().collect();
        keys.sort_unstable();
        let mut out = Vec::new();
        for key in keys {
            out.extend(self.rows[&key].iter().cloned());
        }
        out
    }
}

/// Result of scanning a candidate record set for commit fences: which
/// transactions are committed (fully fenced with a dense sequence prefix),
/// the new sequence horizon, and which transactions aborted.
struct Analysis {
    /// Transaction → its commit sequence, for every transaction whose
    /// fences all survive and whose sequence is ≤ `horizon`.
    committed: HashMap<TxnId, u64>,
    /// Largest `c` such that every sequence in `(base, c]` belongs to a
    /// fully fenced transaction in the candidate set.
    horizon: u64,
    aborted: HashSet<TxnId>,
}

/// Folds one data-change record into a row's net-effect slot
/// (insert+update → insert, update+update → latest, insert+delete →
/// nothing, update+delete → delete; delete-then-insert keeps both).
fn fold_row(slot: &mut Vec<LogRecord>, record: LogRecord) {
    use LogRecordKind as K;
    enum Action {
        Push,
        Pop,
        ReplaceKind(LogRecordKind),
        ReplaceRecord,
    }
    let action = match (slot.last().map(|r| &r.kind), &record.kind) {
        (Some(K::Insert { .. }), K::Delete { .. }) => Action::Pop,
        (Some(K::Insert { table, rid, .. }), K::Update { after, .. }) => {
            Action::ReplaceKind(K::Insert {
                table: *table,
                rid: *rid,
                after: after.clone(),
            })
        }
        // Replay only applies `after`, so the intermediate `before` image
        // the replacing record carries is irrelevant.
        (Some(K::Update { .. }), K::Update { .. }) | (Some(K::Update { .. }), K::Delete { .. }) => {
            Action::ReplaceRecord
        }
        _ => Action::Push,
    };
    match action {
        Action::Push => slot.push(record),
        Action::Pop => {
            slot.pop();
        }
        Action::ReplaceKind(kind) => slot.last_mut().expect("slot non-empty").kind = kind,
        Action::ReplaceRecord => *slot.last_mut().expect("slot non-empty") = record,
    }
}

/// The partitioned write-ahead log.
pub struct LogManager {
    streams: Vec<LogStream>,
    /// Next global commit sequence − 1 (sequences are dense from 1).
    commit_seq: AtomicU64,
    /// Latest fuzzy checkpoint, if any.
    checkpoint: Mutex<Option<Checkpoint>>,
    /// Serializes checkpoint builds (committers `try_lock` so at most one
    /// pays the build cost and the rest skip).
    checkpoint_build: Mutex<()>,
    /// Records appended since the last checkpoint.
    records_since_checkpoint: AtomicU64,
    durability: DurabilityConfig,
    /// The deterministic fault schedule all streams draw from.
    faults: Arc<FaultPlan>,
    /// Tells the watchdog thread to exit.
    watchdog_stop: Arc<AtomicBool>,
    /// The `log-watchdog` thread, spawned only when faults are enabled under
    /// group commit; joined on drop.
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field("streams", &self.streams.len())
            .field("commit_seq", &self.commit_seq.load(Ordering::Relaxed))
            .field("group_commit", &self.durability.group_commit)
            .finish()
    }
}

impl LogManager {
    /// Creates a log manager whose device writes take `flush_latency_micros`
    /// simulated microseconds, with the default [`DurabilityConfig`]
    /// (asynchronous group commit, a single stream).
    pub fn new(flush_latency_micros: u64) -> Self {
        Self::with_durability(flush_latency_micros, DurabilityConfig::default())
    }

    /// Creates a log manager with explicit durability knobs;
    /// [`DurabilityConfig::log_streams`] sets the partition count.
    pub fn with_durability(flush_latency_micros: u64, durability: DurabilityConfig) -> Self {
        Self::with_faults(
            flush_latency_micros,
            durability,
            Arc::new(FaultPlan::disabled()),
        )
    }

    /// [`Self::with_durability`] plus a live fault schedule shared by every
    /// stream's simulated device. When the plan can fire under group
    /// commit, a `log-watchdog` thread is also spawned: it samples each
    /// stream's flush horizon and, when a stream has pending commits but a
    /// horizon that stopped advancing, re-nudges the flusher's work condvar
    /// (and counts the nudge) — the safety net against a stalled or
    /// wakeup-starved flusher wedging every committer behind it.
    pub fn with_faults(
        flush_latency_micros: u64,
        durability: DurabilityConfig,
        faults: Arc<FaultPlan>,
    ) -> Self {
        let count = durability.log_streams.max(1);
        let streams: Vec<LogStream> = (0..count)
            .map(|s| {
                LogStream::new(
                    StreamId(s),
                    durability.device_micros_for(s, flush_latency_micros),
                    durability.clone(),
                    Arc::clone(&faults),
                )
            })
            .collect();
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = if faults.enabled() && durability.group_commit {
            let cores: Vec<Arc<FlushCore>> = streams.iter().map(|s| Arc::clone(&s.core)).collect();
            let stop = Arc::clone(&watchdog_stop);
            Some(
                std::thread::Builder::new()
                    .name("log-watchdog".into())
                    .spawn(move || run_watchdog(cores, stop))
                    .expect("spawn log-watchdog"),
            )
        } else {
            None
        };
        Self {
            streams,
            commit_seq: AtomicU64::new(0),
            checkpoint: Mutex::new(None),
            checkpoint_build: Mutex::new(()),
            records_since_checkpoint: AtomicU64::new(0),
            durability,
            faults,
            watchdog_stop,
            watchdog: Mutex::new(watchdog),
        }
    }

    /// The fault schedule this log's devices draw from.
    pub fn faults(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    /// `true` if any stream's durability has been lost for good.
    pub fn any_stream_failed(&self) -> bool {
        self.streams
            .iter()
            .any(|s| s.core.failed.load(Ordering::Acquire))
    }

    /// The durability knobs this log runs with.
    pub fn durability(&self) -> &DurabilityConfig {
        &self.durability
    }

    /// Number of log streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The stream serving executor number `index` (spawn order across all
    /// tables): round-robin over streams 1.., keeping stream 0 as the
    /// dedicated baseline/unbound stream — unless there is only one.
    pub fn executor_stream(&self, index: usize) -> StreamId {
        let count = self.streams.len();
        if count <= 1 {
            StreamId(0)
        } else {
            StreamId(1 + index % (count - 1))
        }
    }

    /// The stream the calling thread appends to.
    fn current_stream(&self) -> &LogStream {
        let bound = bound_log_stream().map_or(0, |stream| stream.0);
        &self.streams[bound % self.streams.len()]
    }

    /// Appends a record for `txn` to the calling thread's stream, returning
    /// where it landed. Per stream, the in-memory log is always a dense,
    /// LSN-ordered sequence (record `n` at index `n - 1`).
    pub fn append(&self, txn: TxnId, kind: LogRecordKind) -> (StreamId, Lsn) {
        let stream = self.current_stream();
        let lsn = stream.append(txn, kind);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        (stream.id, lsn)
    }

    /// Draws the next global commit sequence and appends one commit fence
    /// (carrying the sequence and the full `touched` list) to every touched
    /// stream. Must be called while the transaction's locks are still held,
    /// so dependents draw strictly larger sequences. Returns the sequence
    /// and the per-stream fence LSNs the commit must flush.
    pub fn append_commit_fences(
        &self,
        txn: TxnId,
        touched: &[StreamId],
    ) -> (u64, Vec<(StreamId, Lsn)>) {
        let seq = self.commit_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let mut streams: Vec<StreamId> = touched.to_vec();
        streams.sort_unstable();
        streams.dedup();
        let mut fences = Vec::with_capacity(streams.len());
        for &stream in &streams {
            let lsn = self.streams[stream.0 % self.streams.len()].append(
                txn,
                LogRecordKind::Commit {
                    seq,
                    streams: streams.clone(),
                },
            );
            self.records_since_checkpoint
                .fetch_add(1, Ordering::Relaxed);
            incr(CounterKind::CommitFences);
            fences.push((stream, lsn));
        }
        (seq, fences)
    }

    /// Blocks until `stream` is durable up to (at least) `lsn`; `false`
    /// means the stream's durability was lost for good first.
    ///
    /// Under group commit the calling thread enqueues the request and
    /// *parks* on the stream's LSN-keyed ticket queue until its flusher
    /// daemon hardens a covering group. In synchronous mode the caller
    /// drives the device write itself under the stream's flush mutex;
    /// threads that find their LSN already flushed return immediately (the
    /// piggybacking fast path both modes share).
    pub fn flush(&self, stream: StreamId, lsn: Lsn) -> bool {
        self.streams[stream.0 % self.streams.len()].flush(lsn)
    }

    /// Flushes every fence of a commit (the multi-stream commit wait).
    /// Every touched stream's flush is *started* before any is waited on,
    /// so a commit that fenced N streams pays the longest group window
    /// once, not N windows back to back. Returns `false` if any touched
    /// stream lost durability before its fence hardened — the commit is
    /// then a ghost and must surface [`DbError::DurabilityLost`].
    pub fn flush_fences(&self, fences: &[(StreamId, Lsn)]) -> bool {
        let mut ok = true;
        let mut waits: Vec<(usize, Lsn)> = Vec::new();
        for &(stream, lsn) in fences {
            let index = stream.0 % self.streams.len();
            let (owes_wait, started_ok) = self.streams[index].start_flush(lsn);
            ok &= started_ok;
            if owes_wait {
                waits.push((index, lsn));
            }
        }
        for (index, lsn) in waits {
            ok &= self.streams[index].wait_durable(lsn);
        }
        ok
    }

    /// Registers `callback` to fire once *every* fence in `fences` is
    /// durable, without blocking the caller — the asynchronous commit path
    /// DORA executors use. The callback runs on whichever stream's flusher
    /// hardens the last fence (inline on the caller if all fences are
    /// already durable, or in synchronous mode, where the caller must pay
    /// the device latency itself for the A/B comparison to mean anything).
    pub fn submit_commit(&self, fences: Vec<(StreamId, Lsn)>, callback: DurableCallback) {
        match fences.len() {
            0 => callback(true),
            1 => {
                let (stream, lsn) = fences[0];
                self.streams[stream.0 % self.streams.len()].submit_commit(lsn, callback);
            }
            count => {
                let remaining = Arc::new(AtomicU64::new(count as u64));
                let all_durable = Arc::new(AtomicBool::new(true));
                let shared = Arc::new(Mutex::new(Some(callback)));
                for (stream, lsn) in fences {
                    let remaining = Arc::clone(&remaining);
                    let all_durable = Arc::clone(&all_durable);
                    let shared = Arc::clone(&shared);
                    self.streams[stream.0 % self.streams.len()].submit_commit(
                        lsn,
                        Box::new(move |durable| {
                            if !durable {
                                all_durable.store(false, Ordering::Release);
                            }
                            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                if let Some(callback) = shared.lock().take() {
                                    callback(all_durable.load(Ordering::Acquire));
                                }
                            }
                        }),
                    );
                }
            }
        }
    }

    /// Highest LSN known to be flushed on `stream`.
    pub fn flushed_lsn(&self, stream: StreamId) -> Lsn {
        self.streams[stream.0 % self.streams.len()].flushed_lsn()
    }

    /// Flush-group sizes observed so far across all streams (commit records
    /// hardened per device write). Empty in synchronous mode.
    pub fn flush_group_sizes(&self) -> ValueHistogram {
        let mut merged = ValueHistogram::new();
        for stream in &self.streams {
            merged.merge(&stream.core.group_sizes.lock());
        }
        merged
    }

    /// Per-stream durability statistics (record counts, durable horizons,
    /// flush-group histograms) for reporting.
    pub fn stream_stats(&self) -> Vec<StreamStats> {
        self.streams
            .iter()
            .map(|stream| {
                let buffer = stream.records.lock();
                StreamStats {
                    stream: stream.id,
                    records: buffer.total() as usize,
                    reclaimed: buffer.base,
                    flushed_lsn: stream.flushed_lsn(),
                    group_sizes: stream.core.group_sizes.lock().clone(),
                }
            })
            .collect()
    }

    /// Total records appended across all streams — the full history,
    /// including any prefix already reclaimed at checkpoints (LSNs are
    /// stable, so a truncation never shrinks this).
    pub fn len(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.records.lock().total() as usize)
            .sum()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records truncated off stream prefixes by checkpoint reclamation.
    pub fn reclaimed_records(&self) -> u64 {
        self.streams.iter().map(|s| s.records.lock().base).sum()
    }

    /// Records currently held in memory (the retained suffixes).
    pub fn retained_records(&self) -> usize {
        self.streams
            .iter()
            .map(|s| s.records.lock().buffered.len())
            .sum()
    }

    /// Current length of each stream, as the cut vector that covers the
    /// whole log right now.
    pub fn stream_lens(&self) -> Vec<Lsn> {
        self.streams
            .iter()
            .map(|s| Lsn(s.records.lock().total()))
            .collect()
    }

    /// Returns the records of `txn` in undo order: per stream, the
    /// transaction's `prev_lsn` chain walked backwards from its last record
    /// — O(records of `txn`), not a full-log scan. Streams are concatenated;
    /// within a transaction each row is written via a single executor and
    /// therefore a single stream, so cross-stream undo order is immaterial.
    pub fn records_for_undo(&self, txn: TxnId) -> Vec<LogRecord> {
        let mut chain = Vec::new();
        for stream in &self.streams {
            let last = stream
                .last_lsn_per_txn
                .lock()
                .get(&txn)
                .copied()
                .unwrap_or(Lsn(0));
            let records = stream.records.lock();
            let mut cursor = last;
            while cursor.0 != 0 {
                // Reclamation never truncates past the first record of a
                // live transaction, so the whole chain is still buffered.
                let record = &records.buffered[records.index_of(cursor)];
                debug_assert_eq!(record.txn, txn, "prev_lsn chain crossed transactions");
                cursor = record.prev_lsn;
                chain.push(record.clone());
            }
        }
        chain
    }

    /// Analysis + redo view of the whole log: the data-change records of
    /// every recoverable transaction, in replay order. Recovery applies
    /// these to an empty database to reconstruct committed state.
    ///
    /// Sees only the *retained* records: once a checkpoint has reclaimed a
    /// prefix ([`Self::reclaimed_records`] > 0) the dense commit-sequence
    /// analysis finds a hole at the truncation point and this view goes
    /// empty — callers must recover from the checkpoint instead (the folded
    /// rows carry exactly the truncated history).
    pub fn committed_changes(&self) -> Vec<LogRecord> {
        let cuts = self.stream_lens();
        self.committed_changes_in_prefixes(&cuts)
    }

    /// [`Self::committed_changes`] restricted to per-stream prefixes: what
    /// recovery would see if each stream `s` lost every record past
    /// `cuts[s]` in a crash (missing entries mean "whole stream"). A
    /// transaction contributes iff *all* its commit fences lie inside the
    /// cuts **and** every smaller commit sequence is also fully fenced —
    /// the maximal sequence-dense prefix. A transaction whose locks were
    /// released early but whose fences were torn, and every transaction
    /// sequenced after it, is correctly treated as never having happened.
    ///
    /// Records are returned grouped by transaction in commit-sequence
    /// order; replaying them sequentially (or sharded by row) rebuilds the
    /// exact committed state, because lock release orders dependent
    /// transactions' sequences.
    pub fn committed_changes_in_prefixes(&self, cuts: &[Lsn]) -> Vec<LogRecord> {
        // Analysis runs on borrowed records (holding every stream lock, in
        // stream order — each flusher only ever locks its own stream, so no
        // cycle) and clones only the replayable subset, keeping the serial
        // prefix of parallel recovery short.
        let guards: Vec<_> = self
            .streams
            .iter()
            .map(|stream| stream.records.lock())
            .collect();
        let mut candidates: Vec<&LogRecord> = Vec::new();
        for (s, buffer) in guards.iter().enumerate() {
            let cut = cuts.get(s).copied().unwrap_or(Lsn(u64::MAX));
            candidates.extend(buffer.retained_up_to(cut).iter());
        }
        Self::redo_in_candidate_refs(&candidates, 0)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Runs `f` over the replayable redo records (the same set
    /// [`Self::committed_changes`] returns) without cloning them: the
    /// records stay borrowed from the stream buffers, which remain locked
    /// for the duration of the call. Parallel recovery hands the slice to
    /// its workers and lets each clone only its own shard, keeping the
    /// serial analysis prefix of recovery as short as possible.
    pub fn with_redo_refs<R>(&self, f: impl FnOnce(&[&LogRecord]) -> R) -> R {
        let guards: Vec<_> = self
            .streams
            .iter()
            .map(|stream| stream.records.lock())
            .collect();
        let mut candidates: Vec<&LogRecord> = Vec::new();
        for buffer in guards.iter() {
            candidates.extend(buffer.buffered.iter());
        }
        let redo = Self::redo_in_candidate_refs(&candidates, 0);
        f(&redo)
    }

    /// Scans `candidates` for commit fences and aborts, extending the dense
    /// sequence horizon upward from `base_horizon`.
    fn analyze(candidates: &[&LogRecord], base_horizon: u64) -> Analysis {
        struct Fence {
            seq: u64,
            required: usize,
            seen: usize,
        }
        let mut fences: HashMap<TxnId, Fence> = HashMap::new();
        let mut aborted = HashSet::new();
        for &record in candidates {
            match &record.kind {
                LogRecordKind::Commit { seq, streams } => {
                    let fence = fences.entry(record.txn).or_insert(Fence {
                        seq: *seq,
                        required: streams.len(),
                        seen: 0,
                    });
                    fence.seen += 1;
                }
                LogRecordKind::Abort => {
                    aborted.insert(record.txn);
                }
                _ => {}
            }
        }
        let mut fenced: Vec<(u64, TxnId)> = fences
            .iter()
            .filter(|(_, fence)| fence.seen >= fence.required)
            .map(|(txn, fence)| (fence.seq, *txn))
            .collect();
        fenced.sort_unstable();
        let mut horizon = base_horizon;
        let mut committed = HashMap::new();
        for (seq, txn) in fenced {
            if seq == horizon + 1 {
                horizon = seq;
                committed.insert(txn, seq);
            } else if seq > horizon + 1 {
                break;
            }
        }
        Analysis {
            committed,
            horizon,
            aborted,
        }
    }

    /// The replayable records among `candidates`: data changes of
    /// transactions fully fenced with sequence in the dense range starting
    /// past `base_horizon`, grouped per transaction in sequence order.
    /// `candidates` must preserve per-stream append order (stream-major
    /// concatenation does).
    pub(crate) fn redo_in_candidates(
        candidates: Vec<LogRecord>,
        base_horizon: u64,
    ) -> Vec<LogRecord> {
        let refs: Vec<&LogRecord> = candidates.iter().collect();
        Self::redo_in_candidate_refs(&refs, base_horizon)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Borrowed-record core of [`Self::redo_in_candidates`].
    fn redo_in_candidate_refs<'a>(
        candidates: &[&'a LogRecord],
        base_horizon: u64,
    ) -> Vec<&'a LogRecord> {
        let analysis = Self::analyze(candidates, base_horizon);
        let mut by_txn: HashMap<TxnId, Vec<&LogRecord>> = HashMap::new();
        for &record in candidates {
            if analysis.committed.contains_key(&record.txn) && record.kind.is_data_change() {
                by_txn.entry(record.txn).or_default().push(record);
            }
        }
        let mut order: Vec<(u64, TxnId)> = analysis
            .committed
            .iter()
            .map(|(txn, seq)| (*seq, *txn))
            .collect();
        order.sort_unstable();
        let mut out = Vec::new();
        for (_, txn) in order {
            out.extend(by_txn.remove(&txn).unwrap_or_default());
        }
        out
    }

    /// Takes a fuzzy checkpoint if the configured record interval has
    /// elapsed since the last one; at most one thread builds (others skip
    /// past the `try_lock`). Called from the precommit path.
    pub fn maybe_checkpoint(&self) {
        let interval = self.durability.checkpoint_interval;
        if interval == 0 || self.records_since_checkpoint.load(Ordering::Relaxed) < interval {
            return;
        }
        if let Some(_guard) = self.checkpoint_build.try_lock() {
            if self.records_since_checkpoint.load(Ordering::Relaxed) < interval {
                return;
            }
            self.records_since_checkpoint.store(0, Ordering::Relaxed);
            self.build_checkpoint();
        }
    }

    /// Takes a fuzzy checkpoint now (benchmarks and tests).
    pub fn take_checkpoint(&self) {
        let _guard = self.checkpoint_build.lock();
        self.records_since_checkpoint.store(0, Ordering::Relaxed);
        self.build_checkpoint();
    }

    /// Incrementally folds everything committed since the previous
    /// checkpoint into the net-effect row snapshot. The cut is *fuzzy* —
    /// each stream is cut at whatever length it has when visited — which is
    /// safe because undecided transactions' records are carried in
    /// `pending` and re-examined next time.
    fn build_checkpoint(&self) {
        let previous = self.checkpoint.lock().clone();
        let (mut rows, base_horizon, previous_low, mut candidates) = match previous {
            Some(cp) => (cp.rows, cp.seq_horizon, cp.low_water, cp.pending),
            None => (
                HashMap::new(),
                0,
                vec![Lsn(0); self.streams.len()],
                Vec::new(),
            ),
        };
        let mut cuts = Vec::with_capacity(self.streams.len());
        for (s, stream) in self.streams.iter().enumerate() {
            let records = stream.records.lock();
            let cut = Lsn(records.total());
            cuts.push(cut);
            // The previous low-water mark is ≥ the reclaimed base (we only
            // truncate up to an already-built checkpoint's cut), so the
            // uncovered window is entirely retained.
            let from = previous_low.get(s).copied().unwrap_or(Lsn(0));
            candidates.extend_from_slice(records.retained_after(from));
        }
        let analysis = {
            let refs: Vec<&LogRecord> = candidates.iter().collect();
            Self::analyze(&refs, base_horizon)
        };
        let mut by_txn: HashMap<TxnId, Vec<LogRecord>> = HashMap::new();
        let mut pending = Vec::new();
        for record in candidates {
            if analysis.committed.contains_key(&record.txn) {
                if record.kind.is_data_change() {
                    by_txn.entry(record.txn).or_default().push(record);
                }
            } else if !analysis.aborted.contains(&record.txn) {
                pending.push(record);
            }
        }
        let mut order: Vec<(u64, TxnId)> = analysis
            .committed
            .iter()
            .map(|(txn, seq)| (*seq, *txn))
            .collect();
        order.sort_unstable();
        for (_, txn) in order {
            for record in by_txn.remove(&txn).unwrap_or_default() {
                let key = record.kind.row_key().expect("data record has a row");
                fold_row(rows.entry(key).or_default(), record);
            }
        }
        rows.retain(|_, slot| !slot.is_empty());
        *self.checkpoint.lock() = Some(Checkpoint {
            low_water: cuts.clone(),
            seq_horizon: analysis.horizon,
            rows,
            pending,
        });
        incr(CounterKind::CheckpointsTaken);
        if self.durability.reclaim_log_at_checkpoint {
            self.reclaim_up_to(&cuts);
        }
    }

    /// Truncates each stream's buffered prefix up to its checkpoint cut,
    /// but never past the first buffered record of a *live* transaction
    /// (one still in `last_lsn_per_txn`, i.e. not yet committed or
    /// aborted): rollback walks those chains through buffered indices.
    /// Everything truncated is covered by the just-built checkpoint —
    /// committed history lives in its folded rows, undecided transactions'
    /// records ride its `pending` list — so recovery loses nothing.
    fn reclaim_up_to(&self, cuts: &[Lsn]) {
        for (s, stream) in self.streams.iter().enumerate() {
            let mut buffer = stream.records.lock();
            let live: HashSet<TxnId> = stream.last_lsn_per_txn.lock().keys().copied().collect();
            let mut floor = cuts.get(s).copied().unwrap_or(Lsn(0)).0;
            for record in buffer.buffered.iter() {
                if record.lsn.0 > floor {
                    break;
                }
                if live.contains(&record.txn) {
                    floor = record.lsn.0 - 1;
                    break;
                }
            }
            let drain = floor.saturating_sub(buffer.base) as usize;
            if drain > 0 {
                buffer.buffered.drain(..drain);
                buffer.base += drain as u64;
            }
        }
    }

    /// The latest fuzzy checkpoint, if one has been taken.
    pub fn checkpoint_snapshot(&self) -> Option<Checkpoint> {
        self.checkpoint.lock().clone()
    }

    /// Every record past the per-stream `low_water` marks, stream-major
    /// (per-stream append order preserved): the delta checkpoint recovery
    /// re-analyzes and replays.
    pub fn records_after(&self, low_water: &[Lsn]) -> Vec<LogRecord> {
        let mut out = Vec::new();
        for (s, stream) in self.streams.iter().enumerate() {
            let records = stream.records.lock();
            let from = low_water.get(s).copied().unwrap_or(Lsn(0));
            out.extend_from_slice(records.retained_after(from));
        }
        out
    }

    /// A point-in-time copy of each stream's *retained* records, in LSN
    /// order (checkpoint reclamation may have truncated a prefix).
    /// Diagnostics and tests (the crash-prefix property test inspects
    /// fence positions); not a hot path.
    pub fn records_snapshot(&self) -> Vec<Vec<LogRecord>> {
        self.streams
            .iter()
            .map(|stream| stream.records.lock().buffered.clone())
            .collect()
    }

    /// Forgets per-transaction bookkeeping for a finished transaction.
    pub fn forget(&self, txn: TxnId) {
        for stream in &self.streams {
            stream.last_lsn_per_txn.lock().remove(&txn);
        }
    }
}

/// Point-in-time durability statistics of one log stream.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Which stream.
    pub stream: StreamId,
    /// Records appended so far (full history, including any reclaimed
    /// prefix).
    pub records: usize,
    /// Records truncated off the front by checkpoint reclamation.
    pub reclaimed: u64,
    /// Durable horizon.
    pub flushed_lsn: Lsn,
    /// Flush-group size histogram of this stream's flusher.
    pub group_sizes: ValueHistogram,
}

impl Drop for LogManager {
    fn drop(&mut self) {
        self.watchdog_stop.store(true, Ordering::Release);
        if let Some(handle) = self.watchdog.lock().take() {
            let _ = handle.join();
        }
        for stream in &self.streams {
            stream.shutdown();
        }
    }
}

/// The log watchdog main loop: detect streams whose flush horizon stopped
/// advancing while commits are pending and nudge their flusher awake. A
/// nudge is deliberately just a condvar broadcast — it cannot *unstick* a
/// flusher sleeping inside an injected stall, but it recovers lost-wakeup
/// shapes and, crucially, makes the stall observable
/// ([`CounterKind::WatchdogNudges`]) instead of silent.
fn run_watchdog(cores: Vec<Arc<FlushCore>>, stop: Arc<AtomicBool>) {
    let mut last_horizon: Vec<u64> = vec![0; cores.len()];
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_micros(500));
        for (i, core) in cores.iter().enumerate() {
            let horizon = core.flushed_lsn.load(Ordering::Acquire);
            let outstanding =
                core.inflight.load(Ordering::Acquire) > 0 || !core.queue.lock().pending.is_empty();
            let stalled =
                horizon == last_horizon[i] && outstanding && !core.failed.load(Ordering::Acquire);
            if stalled {
                incr(CounterKind::WatchdogNudges);
                core.work_cond.notify_all();
            }
            last_horizon[i] = horizon;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_record(table: u32, page: u32, slot: u16, after: Vec<u8>) -> LogRecordKind {
        LogRecordKind::Insert {
            table: TableId(table),
            rid: Rid::new(page, slot),
            after,
        }
    }

    fn streams_config(streams: usize) -> DurabilityConfig {
        DurabilityConfig::default().with_log_streams(streams)
    }

    #[test]
    fn lsns_are_monotonic_and_chained_per_txn() {
        let log = LogManager::new(0);
        let (_, a1) = log.append(TxnId(1), LogRecordKind::Begin);
        let (_, b1) = log.append(TxnId(2), LogRecordKind::Begin);
        let (stream, a2) = log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        assert_eq!(stream, StreamId(0), "unbound threads use stream 0");
        assert!(a1 < b1 && b1 < a2);
        let undo = log.records_for_undo(TxnId(1));
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].lsn, a2);
        assert_eq!(undo[0].prev_lsn, a1);
        assert_eq!(undo[1].prev_lsn, Lsn(0));
    }

    #[test]
    fn records_for_undo_skips_other_transactions() {
        let log = LogManager::new(0);
        // Interleave records of three transactions; each chain walk must
        // touch only its own records (and never scan the whole log).
        for round in 0..10u64 {
            for txn in 1..=3u64 {
                log.append(
                    TxnId(txn),
                    LogRecordKind::Update {
                        table: TableId(1),
                        rid: Rid::new(0, round as u16),
                        before: vec![txn as u8],
                        after: vec![round as u8],
                    },
                );
            }
        }
        for txn in 1..=3u64 {
            let undo = log.records_for_undo(TxnId(txn));
            assert_eq!(undo.len(), 10);
            assert!(undo.iter().all(|r| r.txn == TxnId(txn)));
            assert!(undo.windows(2).all(|w| w[0].lsn > w[1].lsn));
        }
        assert!(log.records_for_undo(TxnId(99)).is_empty());
    }

    #[test]
    fn bound_threads_append_to_their_stream() {
        let log = Arc::new(LogManager::with_durability(0, streams_config(3)));
        let handles: Vec<_> = (0..3)
            .map(|s| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    bind_executor_log_stream(StreamId(s));
                    assert_eq!(bound_log_stream(), Some(StreamId(s)));
                    let (stream, _) = log.append(TxnId(s as u64 + 1), LogRecordKind::Begin);
                    assert_eq!(stream, StreamId(s));
                    let (stream, _) =
                        log.append(TxnId(s as u64 + 1), insert_record(1, 0, s as u16, vec![1]));
                    assert_eq!(stream, StreamId(s));
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        // Per-stream LSNs are dense from 1; undo chains span streams.
        for snapshot in log.records_snapshot() {
            for (i, record) in snapshot.iter().enumerate() {
                assert_eq!(record.lsn, Lsn(i as u64 + 1));
            }
        }
        assert_eq!(log.len(), 6);
    }

    #[test]
    fn records_for_undo_spans_streams() {
        let log = Arc::new(LogManager::with_durability(0, streams_config(2)));
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        let log2 = Arc::clone(&log);
        std::thread::spawn(move || {
            bind_executor_log_stream(StreamId(1));
            log2.append(TxnId(1), insert_record(1, 0, 1, vec![2]));
        })
        .join()
        .unwrap();
        let undo = log.records_for_undo(TxnId(1));
        assert_eq!(undo.len(), 2);
        let streams: HashSet<StreamId> = undo.iter().map(|r| r.stream).collect();
        assert_eq!(streams.len(), 2, "undo must cover both streams");
    }

    #[test]
    fn executor_stream_round_robins_past_the_baseline_stream() {
        let single = LogManager::with_durability(0, streams_config(1));
        assert_eq!(single.executor_stream(0), StreamId(0));
        assert_eq!(single.executor_stream(7), StreamId(0));
        let sharded = LogManager::with_durability(0, streams_config(3));
        assert_eq!(sharded.executor_stream(0), StreamId(1));
        assert_eq!(sharded.executor_stream(1), StreamId(2));
        assert_eq!(sharded.executor_stream(2), StreamId(1));
        assert!(
            (0..16).all(|k| sharded.executor_stream(k) != StreamId(0)),
            "stream 0 is reserved for unbound threads"
        );
    }

    #[test]
    fn flush_advances_flushed_lsn() {
        for streams in [1usize, 2] {
            for durability in [
                streams_config(streams),
                DurabilityConfig::sync_commit().with_log_streams(streams),
            ] {
                let log = LogManager::with_durability(0, durability);
                let (stream, lsn) = log.append(TxnId(1), LogRecordKind::Begin);
                assert!(log.flushed_lsn(stream) < lsn);
                log.flush(stream, lsn);
                assert!(log.flushed_lsn(stream) >= lsn);
                // Second flush of the same LSN is a no-op (piggyback path).
                log.flush(stream, lsn);
            }
        }
    }

    #[test]
    fn committed_changes_exclude_uncommitted_and_aborted() {
        let log = LogManager::new(0);
        log.append(TxnId(1), LogRecordKind::Begin);
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        log.append_commit_fences(TxnId(1), &[StreamId(0)]);

        log.append(TxnId(2), LogRecordKind::Begin);
        log.append(TxnId(2), insert_record(1, 0, 1, vec![2]));
        log.append(TxnId(2), LogRecordKind::Abort);

        log.append(TxnId(3), LogRecordKind::Begin);
        log.append(TxnId(3), insert_record(1, 0, 2, vec![3]));

        let committed = log.committed_changes();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].txn, TxnId(1));
    }

    #[test]
    fn torn_fence_on_any_stream_discards_the_transaction() {
        let log = LogManager::with_durability(0, streams_config(2));
        // Txn 1 writes on stream 0 and fences both streams (as if it had
        // touched rows owned by an executor on stream 1 too).
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        let (seq1, fences1) = log.append_commit_fences(TxnId(1), &[StreamId(0), StreamId(1)]);
        assert_eq!(seq1, 1);
        assert_eq!(fences1.len(), 2);
        // Txn 2 writes and fences only stream 0.
        log.append(TxnId(2), insert_record(1, 0, 1, vec![2]));
        let (seq2, _) = log.append_commit_fences(TxnId(2), &[StreamId(0)]);
        assert_eq!(seq2, 2);

        // Cut stream 1 to zero: txn 1's second fence is torn. Txn 1 must
        // not replay — and neither may txn 2, whose sequence sits past the
        // hole (it could depend on txn 1 via early lock release).
        let torn = log.committed_changes_in_prefixes(&[Lsn(4), Lsn(0)]);
        assert!(
            torn.is_empty(),
            "a torn fence and everything sequenced after it must vanish"
        );

        // With both streams intact, both transactions replay, ordered by
        // commit sequence.
        let full = log.committed_changes();
        assert_eq!(full.len(), 2);
        assert_eq!(full[0].txn, TxnId(1));
        assert_eq!(full[1].txn, TxnId(2));
    }

    #[test]
    fn prefix_excludes_commits_past_the_crash_point() {
        let log = LogManager::new(0);
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        let (_, fences1) = log.append_commit_fences(TxnId(1), &[StreamId(0)]);
        log.append(TxnId(2), insert_record(1, 0, 1, vec![2]));
        log.append_commit_fences(TxnId(2), &[StreamId(0)]);
        // Crash right after txn 1's fence: txn 2's insert is in the prefix
        // but its fence is not — it must not be replayed.
        let commit1 = fences1[0].1;
        let prefix = log.committed_changes_in_prefixes(&[commit1]);
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].txn, TxnId(1));
        assert_eq!(log.committed_changes().len(), 2);
    }

    #[test]
    fn simulated_flush_latency_is_applied() {
        for durability in [DurabilityConfig::default(), DurabilityConfig::sync_commit()] {
            let log = LogManager::with_durability(200, durability);
            let (stream, lsn) = log.append(TxnId(1), LogRecordKind::Begin);
            let start = Instant::now();
            log.flush(stream, lsn);
            assert!(start.elapsed() >= Duration::from_micros(200));
        }
    }

    #[test]
    fn per_stream_device_latency_overrides_shared_default() {
        // Stream 0 simulates a fast device (50us), stream 1 falls back to
        // the shared 400us default; synchronous commit makes the caller
        // drive the device write so the latency is observable directly.
        let durability = DurabilityConfig::sync_commit()
            .with_log_streams(2)
            .with_stream_device_micros(vec![50]);
        let log = LogManager::with_durability(400, durability);
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        let (_, fences) = log.append_commit_fences(TxnId(1), &[StreamId(0), StreamId(1)]);
        let fast = Instant::now();
        assert!(log.flush(fences[0].0, fences[0].1));
        let fast = fast.elapsed();
        let slow = Instant::now();
        assert!(log.flush(fences[1].0, fences[1].1));
        let slow = slow.elapsed();
        assert!(fast >= Duration::from_micros(50));
        assert!(slow >= Duration::from_micros(400));
        assert!(slow > fast, "override stream must be faster than default");
    }

    #[test]
    fn group_flusher_batches_concurrent_commits() {
        let log = Arc::new(LogManager::with_durability(100, streams_config(1)));
        let threads = 8;
        let commits_each = 5;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..commits_each {
                        let (stream, lsn) = log.append(TxnId(t + 1), LogRecordKind::Begin);
                        log.flush(stream, lsn);
                        assert!(log.flushed_lsn(stream) >= lsn);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let sizes = log.flush_group_sizes();
        // Commits that found their LSN already hardened by an earlier
        // group's horizon never enqueue (the piggyback fast path), so the
        // histogram covers at most — and usually fewer than — all commits.
        assert!(sizes.count() >= 1);
        assert!(
            sizes.total() <= threads * commits_each,
            "never more grouped commits than commits"
        );
    }

    #[test]
    fn submit_commit_fires_after_every_fence_is_durable() {
        let log = Arc::new(LogManager::with_durability(50, streams_config(2)));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let count = 4;
        for t in 0..count {
            let txn = TxnId(t as u64 + 1);
            log.append(txn, insert_record(1, 0, t as u16, vec![t as u8]));
            let (_, fences) = log.append_commit_fences(txn, &[StreamId(0), StreamId(1)]);
            assert_eq!(fences.len(), 2);
            let done = Arc::clone(&done);
            let log2 = Arc::clone(&log);
            let check = fences.clone();
            log.submit_commit(
                fences,
                Box::new(move |durable| {
                    assert!(durable, "no faults configured, so every fence hardens");
                    for &(stream, lsn) in &check {
                        assert!(
                            log2.flushed_lsn(stream) >= lsn,
                            "callback must run only after every fence is durable"
                        );
                    }
                    let mut n = done.0.lock();
                    *n += 1;
                    done.1.notify_all();
                }),
            );
        }
        let mut n = done.0.lock();
        while *n < count {
            done.1.wait(&mut n);
        }
    }

    #[test]
    fn group_window_holds_the_first_commit_for_the_group() {
        let durability = DurabilityConfig {
            group_window_micros: 20_000,
            ..DurabilityConfig::default()
        };
        let log = LogManager::with_durability(0, durability);
        let (stream, lsn) = log.append(TxnId(1), LogRecordKind::Begin);
        let start = Instant::now();
        log.flush(stream, lsn);
        assert!(
            start.elapsed() >= Duration::from_micros(15_000),
            "a lone commit must wait out (most of) the group window"
        );
    }

    #[test]
    fn concurrent_appends_have_unique_lsns() {
        let log = Arc::new(LogManager::new(0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    (0..500)
                        .map(|_| log.append(TxnId(t + 1), LogRecordKind::Begin).1)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        let unique: HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn checkpoint_folds_committed_history_to_net_effects() {
        let log = LogManager::new(0);
        // Txn 1 inserts a row; txn 2 updates it; txn 3 inserts and deletes
        // another; txn 4 is still in flight at checkpoint time.
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        log.append_commit_fences(TxnId(1), &[StreamId(0)]);
        log.append(
            TxnId(2),
            LogRecordKind::Update {
                table: TableId(1),
                rid: Rid::new(0, 0),
                before: vec![1],
                after: vec![9],
            },
        );
        log.append_commit_fences(TxnId(2), &[StreamId(0)]);
        log.append(TxnId(3), insert_record(1, 0, 1, vec![3]));
        log.append(
            TxnId(3),
            LogRecordKind::Delete {
                table: TableId(1),
                rid: Rid::new(0, 1),
                before: vec![3],
            },
        );
        log.append_commit_fences(TxnId(3), &[StreamId(0)]);
        log.append(TxnId(4), insert_record(1, 0, 2, vec![4]));

        // Txns 1–3 are finished (the database calls `forget` when a
        // transaction commits or aborts); txn 4 is still live.
        for txn in 1..=3 {
            log.forget(TxnId(txn));
        }

        log.take_checkpoint();
        let checkpoint = log.checkpoint_snapshot().expect("checkpoint taken");
        assert_eq!(checkpoint.seq_horizon(), 3);
        assert_eq!(checkpoint.low_water(), &[Lsn(log.len() as u64)]);
        // Insert+update folded to one insert of the final image; txn 3's
        // insert+delete cancelled out entirely.
        assert_eq!(checkpoint.row_count(), 1);
        let rows = checkpoint.rows_flat();
        assert_eq!(rows.len(), 1);
        match &rows[0].kind {
            LogRecordKind::Insert { after, .. } => assert_eq!(after, &vec![9]),
            other => panic!("expected folded insert, got {other:?}"),
        }
        // Txn 4 is undecided: its record is carried, not lost.
        assert!(checkpoint.pending().iter().any(|r| r.txn == TxnId(4)));

        // Reclamation truncated the folded prefix — everything up to the
        // cut except live txn 4's record (lsn 8), whose undo chain must
        // stay walkable. LSNs and totals are unaffected.
        assert_eq!(log.reclaimed_records(), 7);
        assert_eq!(log.retained_records(), 1);
        assert_eq!(log.len(), 8, "len() reports the full appended history");
        let undo = log.records_for_undo(TxnId(4));
        assert_eq!(undo.len(), 1, "live undo chain survives reclamation");
        // Full-log analysis now sees a sequence hole where the prefix was;
        // recovery must come from the checkpoint instead.
        assert!(log.committed_changes().is_empty());

        // Txn 4 commits after the checkpoint; the checkpoint's carried
        // pending plus the post-low-water tail must yield its insert.
        let (_, fences) = log.append_commit_fences(TxnId(4), &[StreamId(0)]);
        assert_eq!(fences.len(), 1);
        assert_eq!(fences[0].1, Lsn(9), "LSNs stay dense across reclamation");
        let mut candidates = checkpoint.pending().to_vec();
        candidates.extend(log.records_after(checkpoint.low_water()));
        let delta = LogManager::redo_in_candidates(candidates, checkpoint.seq_horizon());
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].txn, TxnId(4));
    }

    #[test]
    fn reclamation_can_be_opted_out_for_full_replay_harnesses() {
        let durability = DurabilityConfig {
            reclaim_log_at_checkpoint: false,
            ..DurabilityConfig::default()
        };
        let log = LogManager::with_durability(0, durability);
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        log.append_commit_fences(TxnId(1), &[StreamId(0)]);
        log.forget(TxnId(1));
        log.take_checkpoint();
        assert!(log.checkpoint_snapshot().is_some());
        assert_eq!(log.reclaimed_records(), 0, "opt-out keeps the history");
        assert_eq!(log.retained_records(), 2);
        // The full-history replay view is still intact.
        assert_eq!(log.committed_changes().len(), 1);
    }

    #[test]
    fn maybe_checkpoint_respects_the_interval() {
        let durability = DurabilityConfig {
            checkpoint_interval: 4,
            ..DurabilityConfig::default()
        };
        let log = LogManager::with_durability(0, durability);
        log.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        log.maybe_checkpoint();
        assert!(log.checkpoint_snapshot().is_none(), "below the interval");
        for slot in 1..4u16 {
            log.append(TxnId(1), insert_record(1, 0, slot, vec![1]));
        }
        log.maybe_checkpoint();
        assert!(log.checkpoint_snapshot().is_some(), "interval reached");

        let disabled = LogManager::new(0);
        disabled.append(TxnId(1), insert_record(1, 0, 0, vec![1]));
        disabled.maybe_checkpoint();
        assert!(
            disabled.checkpoint_snapshot().is_none(),
            "interval 0 disables checkpointing"
        );
    }

    fn faulty_log(
        config: FaultConfig,
        durability: DurabilityConfig,
    ) -> (Arc<FaultPlan>, LogManager) {
        let faults = Arc::new(FaultPlan::new(config));
        let log = LogManager::with_faults(10, durability, Arc::clone(&faults));
        (faults, log)
    }

    #[test]
    fn transient_write_errors_retry_until_the_group_hardens() {
        let (faults, log) = faulty_log(
            FaultConfig {
                seed: 7,
                device_error_rate: 0.4,
                max_write_retries: 16,
                retry_backoff_micros: 5,
                ..FaultConfig::default()
            },
            streams_config(1),
        );
        for t in 1..=20u64 {
            let txn = TxnId(t);
            log.append(txn, insert_record(1, 0, t as u16, vec![t as u8]));
            let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
            assert!(
                log.flush_fences(&fences),
                "retries must ride out transient write errors"
            );
        }
        assert!(!log.any_stream_failed());
        assert!(
            faults.draws(FaultSite::DeviceWriteError) > 0,
            "error decisions were actually drawn"
        );
    }

    #[test]
    fn exhausted_retries_lose_durability_for_good() {
        let (_, log) = faulty_log(
            FaultConfig {
                device_error_rate: 1.0,
                max_write_retries: 2,
                retry_backoff_micros: 1,
                ..FaultConfig::default()
            },
            streams_config(1),
        );
        let txn = TxnId(1);
        log.append(txn, insert_record(1, 0, 0, vec![1]));
        let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
        assert!(
            !log.flush_fences(&fences),
            "a stream past its retry budget must report durability lost"
        );
        assert!(log.any_stream_failed());

        // Later commits fast-fail through the callback path too.
        let txn2 = TxnId(2);
        log.append(txn2, insert_record(1, 0, 1, vec![2]));
        let (_, fences2) = log.append_commit_fences(txn2, &[StreamId(0)]);
        let heard = Arc::new((Mutex::new(None::<bool>), Condvar::new()));
        let heard2 = Arc::clone(&heard);
        log.submit_commit(
            fences2,
            Box::new(move |durable| {
                *heard2.0.lock() = Some(durable);
                heard2.1.notify_all();
            }),
        );
        let mut answer = heard.0.lock();
        while answer.is_none() {
            heard.1.wait(&mut answer);
        }
        assert_eq!(
            *answer,
            Some(false),
            "dead streams must not fake durability"
        );
    }

    #[test]
    fn panicking_durability_callback_leaves_the_flusher_alive() {
        silence_injected_panics();
        let before = dora_metrics::global().snapshot();
        let log = LogManager::with_durability(10, streams_config(1));
        let txn = TxnId(1);
        log.append(txn, insert_record(1, 0, 0, vec![1]));
        let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
        log.submit_commit(fences, Box::new(|_| std::panic::panic_any(InjectedPanic)));
        // The flusher must survive the client's panic and harden later
        // commits on the very same thread.
        let txn2 = TxnId(2);
        log.append(txn2, insert_record(1, 0, 1, vec![2]));
        let (_, fences2) = log.append_commit_fences(txn2, &[StreamId(0)]);
        assert!(log.flush_fences(&fences2), "flusher survived the panic");
        // The panicking callback runs on the flusher thread; txn2's fence
        // hardening does not order after txn1's callback having been
        // *counted*, so poll instead of snapshotting once.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let delta = dora_metrics::global().snapshot().since(&before);
            if delta.counter(CounterKind::CallbackPanics) >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "the swallowed panic must be counted"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn watchdog_nudges_a_stalled_flusher() {
        let before = dora_metrics::global().snapshot();
        let (_, log) = faulty_log(
            FaultConfig {
                flusher_stall_rate: 1.0,
                flusher_stall_micros: 20_000,
                ..FaultConfig::default()
            },
            streams_config(1),
        );
        let txn = TxnId(1);
        log.append(txn, insert_record(1, 0, 0, vec![1]));
        let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
        assert!(log.flush_fences(&fences), "a stall delays, never fails");
        // The nudge is counted on the watchdog thread; on a loaded host the
        // stall can expire on its own before the watchdog's count lands, so
        // poll — and keep fresh stalled work in front of the watchdog while
        // waiting (every batch stalls at rate 1.0, so a nudge must arrive).
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut next_txn = 2u64;
        loop {
            let delta = dora_metrics::global().snapshot().since(&before);
            if delta.counter(CounterKind::WatchdogNudges) >= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "the watchdog must notice a horizon that stopped advancing"
            );
            let txn = TxnId(next_txn);
            next_txn += 1;
            log.append(txn, insert_record(1, 0, 1, vec![2]));
            let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
            log.flush_fences(&fences);
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_draws() {
        let run = |seed: u64| {
            let (faults, log) = faulty_log(
                FaultConfig {
                    seed,
                    device_error_rate: 0.3,
                    retry_backoff_micros: 1,
                    ..FaultConfig::default()
                },
                streams_config(1),
            );
            for t in 1..=30u64 {
                let txn = TxnId(t);
                log.append(txn, insert_record(1, 0, t as u16, vec![1]));
                let (_, fences) = log.append_commit_fences(txn, &[StreamId(0)]);
                log.flush_fences(&fences);
            }
            (
                faults.draws(FaultSite::DeviceWriteError),
                log.any_stream_failed(),
            )
        };
        assert_eq!(run(11), run(11), "same seed, same schedule, same fate");
    }
}
