//! ARIES-style write-ahead logging with asynchronous group commit.
//!
//! The log manager assigns LSNs, buffers log records in memory (the paper
//! keeps the log on an in-memory file system), makes commit records durable
//! with a configurable simulated device latency, and retains the full record
//! history so that:
//!
//! * transaction rollback can walk a transaction's records backwards through
//!   the per-transaction `prev_lsn` chain (partial rollback support);
//! * recovery ([`LogManager::committed_changes`]) can replay the effects of
//!   committed transactions into a fresh database — including from any
//!   *flushed prefix* of the log ([`LogManager::committed_changes_in_prefix`]),
//!   which the crash-consistency property tests exercise.
//!
//! The paper points out that for TPC-C NewOrder/Payment and TPC-B the log
//! manager becomes the next bottleneck once lock-manager contention is gone
//! (Section 5.4). Two durability paths reproduce and then relieve that
//! pressure, selected by [`DurabilityConfig::group_commit`]:
//!
//! * **Synchronous** — the committing thread drives the simulated device
//!   write itself under a single flush mutex (with the usual piggybacking
//!   fast path). This serializes every commit behind the device and is kept
//!   as the measurement baseline.
//! * **Group commit** — a dedicated `log-flusher` daemon thread batches all
//!   pending commit records into one device write per group. Committers
//!   either *park* on an LSN-keyed condvar ticket queue
//!   ([`LogManager::flush`]) or hand the flusher a completion callback
//!   ([`LogManager::submit_commit`]) and return immediately — the path DORA
//!   executors use so they never sleep on log I/O. Group sizes are recorded
//!   in a [`ValueHistogram`] and counted under
//!   [`CounterKind::GroupCommits`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dora_common::prelude::*;
use dora_metrics::{incr, record_time, CounterKind, TimeCategory, ValueHistogram};

/// Log sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

/// What a log record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecordKind {
    /// Transaction begin. Appended lazily, immediately before the
    /// transaction's first data-change record — read-only transactions
    /// generate zero log traffic.
    Begin,
    /// A record insert: `after` holds the row image.
    Insert {
        table: TableId,
        rid: Rid,
        after: Vec<u8>,
    },
    /// A record update: both images are kept for undo/redo.
    Update {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// A record delete: `before` holds the row image for undo.
    Delete {
        table: TableId,
        rid: Rid,
        before: Vec<u8>,
    },
    /// Transaction commit.
    Commit,
    /// Transaction abort (all updates undone).
    Abort,
}

impl LogRecordKind {
    /// `true` for the record kinds recovery replays (insert/update/delete).
    fn is_data_change(&self) -> bool {
        matches!(
            self,
            LogRecordKind::Insert { .. }
                | LogRecordKind::Update { .. }
                | LogRecordKind::Delete { .. }
        )
    }
}

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// This record's LSN.
    pub lsn: Lsn,
    /// Owning transaction.
    pub txn: TxnId,
    /// Previous LSN written by the same transaction ([`Lsn`] 0 if none):
    /// the backward chain rollback walks.
    pub prev_lsn: Lsn,
    /// Payload.
    pub kind: LogRecordKind,
}

/// Completion callback fired by the flusher once a submitted commit record
/// is durable. Runs on the flusher thread; must not block on the log.
pub type DurableCallback = Box<dyn FnOnce() + Send + 'static>;

/// One commit record waiting for the flusher, with its optional completion
/// callback (parked waiters use the condvar ticket queue instead).
struct PendingCommit {
    lsn: Lsn,
    callback: Option<DurableCallback>,
}

/// Flusher-side queue state, shared between the daemon and submitters.
#[derive(Default)]
struct FlusherQueue {
    pending: Vec<PendingCommit>,
    /// When the oldest pending commit arrived (starts the group window).
    first_arrival: Option<Instant>,
    shutdown: bool,
}

/// State shared between the log manager, committers and the flusher daemon.
struct FlushCore {
    /// Highest LSN known durable (lock-free fast path).
    flushed_lsn: AtomicU64,
    /// Highest LSN ever assigned; a device write hardens everything
    /// buffered, i.e. up to this point at write start.
    last_assigned: AtomicU64,
    /// Condvar ticket queue keyed by LSN: waiters park here until the
    /// mirror value reaches their LSN; the flusher broadcasts per group.
    durable: Mutex<u64>,
    durable_cond: Condvar,
    /// Work queue for the flusher daemon.
    queue: Mutex<FlusherQueue>,
    work_cond: Condvar,
    /// Simulated log-device latency per write.
    flush_latency: Duration,
    durability: DurabilityConfig,
    /// Commit records hardened per device write.
    group_sizes: Mutex<ValueHistogram>,
}

impl FlushCore {
    /// Publishes a new durable horizon and wakes parked committers.
    fn advance(&self, new_flushed: u64) {
        self.flushed_lsn.fetch_max(new_flushed, Ordering::AcqRel);
        let mut durable = self.durable.lock();
        if new_flushed > *durable {
            *durable = new_flushed;
            self.durable_cond.notify_all();
        }
    }

    /// Simulates the log-device write latency. Busy-wait rather than sleep:
    /// sleeping rounds up to scheduler granularity and would distort the
    /// microsecond-scale latencies we are simulating.
    fn device_write(&self) {
        if self.flush_latency.is_zero() {
            return;
        }
        let deadline = Instant::now() + self.flush_latency;
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// The flusher daemon main loop: collect a group (waiting out the
    /// configured window unless the group is already full), perform one
    /// device write for the whole group, advance the durable horizon, wake
    /// parked committers and fire completion callbacks.
    fn run_flusher(self: Arc<Self>) {
        let window = Duration::from_micros(self.durability.group_window_micros);
        let max_group = self.durability.max_group_size.max(1);
        loop {
            let batch = {
                let mut queue = self.queue.lock();
                loop {
                    if queue.pending.is_empty() {
                        if queue.shutdown {
                            return;
                        }
                        self.work_cond.wait(&mut queue);
                        continue;
                    }
                    if queue.shutdown || window.is_zero() || queue.pending.len() >= max_group {
                        break;
                    }
                    let deadline = queue.first_arrival.unwrap_or_else(Instant::now) + window;
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    // May wake early on new arrivals; the loop re-evaluates
                    // the group-size cutoff and the remaining window.
                    self.work_cond.wait_for(&mut queue, deadline - now);
                }
                queue.first_arrival = None;
                std::mem::take(&mut queue.pending)
            };
            // Everything appended up to this point rides this device write.
            let horizon = self.last_assigned.load(Ordering::Acquire);
            let target = batch.iter().map(|p| p.lsn.0).max().unwrap_or(0);
            let start = Instant::now();
            self.device_write();
            record_time(TimeCategory::LogWait, start.elapsed());
            self.advance(horizon.max(target));
            incr(CounterKind::LogFlushes);
            incr(CounterKind::GroupCommits);
            self.group_sizes.lock().record(batch.len() as u64);
            for commit in batch {
                if let Some(callback) = commit.callback {
                    // The durability work for this group is already done
                    // (horizon advanced, parked waiters woken); a panicking
                    // completion callback must not kill the daemon, or every
                    // later commit would park forever on a dead flusher.
                    if let Err(panic) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(callback))
                    {
                        eprintln!("log-flusher: durability callback panicked: {panic:?}");
                    }
                }
            }
        }
    }
}

/// The write-ahead log.
pub struct LogManager {
    /// All records, in LSN order: the record with LSN `n` lives at index
    /// `n - 1` (LSNs are assigned under this mutex).
    records: Mutex<Vec<LogRecord>>,
    last_lsn_per_txn: Mutex<HashMap<TxnId, Lsn>>,
    core: Arc<FlushCore>,
    /// Serializes caller-driven device writes in synchronous mode.
    flush_lock: Mutex<()>,
    /// The `log-flusher` daemon, spawned lazily on the first group-commit
    /// request and joined on drop.
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for LogManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogManager")
            .field(
                "last_assigned",
                &self.core.last_assigned.load(Ordering::Relaxed),
            )
            .field(
                "flushed_lsn",
                &self.core.flushed_lsn.load(Ordering::Relaxed),
            )
            .field("group_commit", &self.core.durability.group_commit)
            .finish()
    }
}

impl LogManager {
    /// Creates a log manager whose device write takes `flush_latency_micros`
    /// simulated microseconds, with the default [`DurabilityConfig`]
    /// (asynchronous group commit).
    pub fn new(flush_latency_micros: u64) -> Self {
        Self::with_durability(flush_latency_micros, DurabilityConfig::default())
    }

    /// Creates a log manager with explicit durability knobs.
    pub fn with_durability(flush_latency_micros: u64, durability: DurabilityConfig) -> Self {
        Self {
            records: Mutex::new(Vec::new()),
            last_lsn_per_txn: Mutex::new(HashMap::new()),
            core: Arc::new(FlushCore {
                flushed_lsn: AtomicU64::new(0),
                last_assigned: AtomicU64::new(0),
                durable: Mutex::new(0),
                durable_cond: Condvar::new(),
                queue: Mutex::new(FlusherQueue::default()),
                work_cond: Condvar::new(),
                flush_latency: Duration::from_micros(flush_latency_micros),
                durability,
                group_sizes: Mutex::new(ValueHistogram::new()),
            }),
            flush_lock: Mutex::new(()),
            flusher: Mutex::new(None),
        }
    }

    /// The durability knobs this log runs with.
    pub fn durability(&self) -> &DurabilityConfig {
        &self.core.durability
    }

    /// Appends a record for `txn`, returning its LSN. LSNs are assigned
    /// under the records mutex, so the in-memory log is always a dense,
    /// LSN-ordered sequence (record `n` at index `n - 1`).
    pub fn append(&self, txn: TxnId, kind: LogRecordKind) -> Lsn {
        let mut records = self.records.lock();
        let lsn = Lsn(records.len() as u64 + 1);
        self.core.last_assigned.store(lsn.0, Ordering::Release);
        let prev_lsn = {
            let mut last = self.last_lsn_per_txn.lock();
            last.insert(txn, lsn).unwrap_or(Lsn(0))
        };
        records.push(LogRecord {
            lsn,
            txn,
            prev_lsn,
            kind,
        });
        drop(records);
        incr(CounterKind::LogRecords);
        lsn
    }

    fn ensure_flusher(&self) {
        let mut flusher = self.flusher.lock();
        if flusher.is_none() {
            let core = Arc::clone(&self.core);
            *flusher = Some(
                std::thread::Builder::new()
                    .name("log-flusher".into())
                    .spawn(move || core.run_flusher())
                    .expect("spawn log-flusher"),
            );
        }
    }

    /// Hands a pending commit to the flusher daemon.
    fn enqueue(&self, lsn: Lsn, callback: Option<DurableCallback>) {
        self.ensure_flusher();
        let mut queue = self.core.queue.lock();
        if queue.first_arrival.is_none() {
            queue.first_arrival = Some(Instant::now());
        }
        queue.pending.push(PendingCommit { lsn, callback });
        drop(queue);
        self.core.work_cond.notify_one();
    }

    /// Blocks until the log is durable up to (at least) `lsn`.
    ///
    /// Under group commit the calling thread enqueues the request and
    /// *parks* on the LSN-keyed ticket queue until the flusher daemon
    /// hardens a group covering it. In synchronous mode the caller drives
    /// the device write itself under the flush mutex; threads that find
    /// their LSN already flushed return immediately (the piggybacking
    /// fast path both modes share).
    pub fn flush(&self, lsn: Lsn) {
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            return;
        }
        if self.core.durability.group_commit {
            self.enqueue(lsn, None);
            let mut durable = self.core.durable.lock();
            while *durable < lsn.0 {
                self.core.durable_cond.wait(&mut durable);
            }
            return;
        }
        let start = Instant::now();
        let _guard = self.flush_lock.lock();
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            record_time(TimeCategory::LogWait, start.elapsed());
            return;
        }
        let horizon = self.core.last_assigned.load(Ordering::Acquire);
        self.core.device_write();
        self.core.advance(horizon.max(lsn.0));
        incr(CounterKind::LogFlushes);
        record_time(TimeCategory::LogWait, start.elapsed());
    }

    /// Registers `callback` to fire (on the flusher thread) once the log is
    /// durable up to `lsn`, without blocking the caller — the asynchronous
    /// commit path DORA executors use. If `lsn` is already durable, or the
    /// log runs in synchronous mode (where the caller must pay the device
    /// latency itself for the A/B comparison to mean anything), the flush
    /// is completed on the calling thread and the callback fires inline.
    pub fn submit_commit(&self, lsn: Lsn, callback: DurableCallback) {
        if self.core.flushed_lsn.load(Ordering::Acquire) >= lsn.0 {
            callback();
            return;
        }
        if !self.core.durability.group_commit {
            self.flush(lsn);
            callback();
            return;
        }
        self.enqueue(lsn, Some(callback));
    }

    /// Highest LSN known to be flushed.
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.core.flushed_lsn.load(Ordering::Acquire))
    }

    /// Flush-group sizes observed so far (commit records hardened per
    /// device write of the flusher daemon). Empty in synchronous mode.
    pub fn flush_group_sizes(&self) -> ValueHistogram {
        self.core.group_sizes.lock().clone()
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the records of `txn` in reverse order of appending (the order
    /// rollback must apply undo in), by walking the transaction's `prev_lsn`
    /// chain backwards from its last record — O(records of `txn`), not a
    /// full-log scan.
    pub fn records_for_undo(&self, txn: TxnId) -> Vec<LogRecord> {
        let last = self
            .last_lsn_per_txn
            .lock()
            .get(&txn)
            .copied()
            .unwrap_or(Lsn(0));
        let records = self.records.lock();
        let mut chain = Vec::new();
        let mut cursor = last;
        while cursor.0 != 0 {
            let record = &records[(cursor.0 - 1) as usize];
            debug_assert_eq!(record.txn, txn, "prev_lsn chain crossed transactions");
            cursor = record.prev_lsn;
            chain.push(record.clone());
        }
        chain
    }

    /// Analysis + redo view of the log: the data-change records of every
    /// transaction that has a `Commit` record, in LSN order. Recovery applies
    /// these to an empty database to reconstruct committed state.
    pub fn committed_changes(&self) -> Vec<LogRecord> {
        self.committed_changes_in_prefix(Lsn(u64::MAX))
    }

    /// [`Self::committed_changes`] restricted to the log prefix of records
    /// with LSN ≤ `upto`: what recovery would see if the tail past `upto`
    /// were lost in a crash. Only transactions whose `Commit` record is
    /// *inside* the prefix contribute — a transaction whose locks were
    /// released early but whose commit record missed the flushed prefix is
    /// correctly treated as never having happened.
    pub fn committed_changes_in_prefix(&self, upto: Lsn) -> Vec<LogRecord> {
        let records = self.records.lock();
        let len = (upto.0.min(records.len() as u64)) as usize;
        let prefix = &records[..len];
        let committed: std::collections::HashSet<TxnId> = prefix
            .iter()
            .filter(|r| matches!(r.kind, LogRecordKind::Commit))
            .map(|r| r.txn)
            .collect();
        prefix
            .iter()
            .filter(|r| committed.contains(&r.txn) && r.kind.is_data_change())
            .cloned()
            .collect()
    }

    /// A point-in-time copy of the whole log, in LSN order. Diagnostics and
    /// tests (e.g. the crash-prefix property test inspects commit-record
    /// positions); not a hot path.
    pub fn records_snapshot(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Forgets per-transaction bookkeeping for a finished transaction.
    pub fn forget(&self, txn: TxnId) {
        self.last_lsn_per_txn.lock().remove(&txn);
    }
}

impl Drop for LogManager {
    fn drop(&mut self) {
        let handle = self.flusher.lock().take();
        if let Some(handle) = handle {
            {
                let mut queue = self.core.queue.lock();
                queue.shutdown = true;
            }
            self.core.work_cond.notify_one();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic_and_chained_per_txn() {
        let log = LogManager::new(0);
        let a1 = log.append(TxnId(1), LogRecordKind::Begin);
        let b1 = log.append(TxnId(2), LogRecordKind::Begin);
        let a2 = log.append(
            TxnId(1),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 0),
                after: vec![1],
            },
        );
        assert!(a1 < b1 && b1 < a2);
        let undo = log.records_for_undo(TxnId(1));
        assert_eq!(undo.len(), 2);
        assert_eq!(undo[0].lsn, a2);
        assert_eq!(undo[0].prev_lsn, a1);
        assert_eq!(undo[1].prev_lsn, Lsn(0));
    }

    #[test]
    fn records_for_undo_skips_other_transactions() {
        let log = LogManager::new(0);
        // Interleave records of three transactions; each chain walk must
        // touch only its own records (and never scan the whole log).
        for round in 0..10u64 {
            for txn in 1..=3u64 {
                log.append(
                    TxnId(txn),
                    LogRecordKind::Update {
                        table: TableId(1),
                        rid: Rid::new(0, round as u16),
                        before: vec![txn as u8],
                        after: vec![round as u8],
                    },
                );
            }
        }
        for txn in 1..=3u64 {
            let undo = log.records_for_undo(TxnId(txn));
            assert_eq!(undo.len(), 10);
            assert!(undo.iter().all(|r| r.txn == TxnId(txn)));
            assert!(undo.windows(2).all(|w| w[0].lsn > w[1].lsn));
        }
        assert!(log.records_for_undo(TxnId(99)).is_empty());
    }

    #[test]
    fn flush_advances_flushed_lsn() {
        for durability in [DurabilityConfig::default(), DurabilityConfig::sync_commit()] {
            let log = LogManager::with_durability(0, durability);
            let lsn = log.append(TxnId(1), LogRecordKind::Commit);
            assert!(log.flushed_lsn() < lsn);
            log.flush(lsn);
            assert!(log.flushed_lsn() >= lsn);
            // Second flush of the same LSN is a no-op (piggyback fast path).
            log.flush(lsn);
        }
    }

    #[test]
    fn committed_changes_exclude_uncommitted_and_aborted() {
        let log = LogManager::new(0);
        log.append(TxnId(1), LogRecordKind::Begin);
        log.append(
            TxnId(1),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 0),
                after: vec![1],
            },
        );
        log.append(TxnId(1), LogRecordKind::Commit);

        log.append(TxnId(2), LogRecordKind::Begin);
        log.append(
            TxnId(2),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 1),
                after: vec![2],
            },
        );
        log.append(TxnId(2), LogRecordKind::Abort);

        log.append(TxnId(3), LogRecordKind::Begin);
        log.append(
            TxnId(3),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 2),
                after: vec![3],
            },
        );

        let committed = log.committed_changes();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].txn, TxnId(1));
    }

    #[test]
    fn prefix_excludes_commits_past_the_crash_point() {
        let log = LogManager::new(0);
        log.append(
            TxnId(1),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 0),
                after: vec![1],
            },
        );
        let commit1 = log.append(TxnId(1), LogRecordKind::Commit);
        log.append(
            TxnId(2),
            LogRecordKind::Insert {
                table: TableId(1),
                rid: Rid::new(0, 1),
                after: vec![2],
            },
        );
        let commit2 = log.append(TxnId(2), LogRecordKind::Commit);
        // Crash right after txn 1's commit: txn 2's insert is in the prefix
        // but its commit record is not — it must not be replayed.
        let prefix = log.committed_changes_in_prefix(commit1);
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].txn, TxnId(1));
        let full = log.committed_changes_in_prefix(commit2);
        assert_eq!(full.len(), 2);
        assert_eq!(log.committed_changes().len(), 2);
    }

    #[test]
    fn simulated_flush_latency_is_applied() {
        for durability in [DurabilityConfig::default(), DurabilityConfig::sync_commit()] {
            let log = LogManager::with_durability(200, durability);
            let lsn = log.append(TxnId(1), LogRecordKind::Commit);
            let start = Instant::now();
            log.flush(lsn);
            assert!(start.elapsed() >= Duration::from_micros(200));
        }
    }

    #[test]
    fn group_flusher_batches_concurrent_commits() {
        let log = Arc::new(LogManager::with_durability(
            100,
            DurabilityConfig::default(),
        ));
        let threads = 8;
        let commits_each = 5;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..commits_each {
                        let lsn = log.append(TxnId(t + 1), LogRecordKind::Commit);
                        log.flush(lsn);
                        assert!(log.flushed_lsn() >= lsn);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let sizes = log.flush_group_sizes();
        // Commits that found their LSN already hardened by an earlier
        // group's horizon never enqueue (the piggyback fast path), so the
        // histogram covers at most — and usually fewer than — all commits.
        assert!(sizes.count() >= 1);
        assert!(
            sizes.total() <= threads * commits_each,
            "never more grouped commits than commits"
        );
    }

    #[test]
    fn submit_commit_fires_callback_after_durable() {
        let log = Arc::new(LogManager::new(50));
        let fired = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let count = 4;
        for t in 0..count {
            let lsn = log.append(TxnId(t as u64 + 1), LogRecordKind::Commit);
            let fired = Arc::clone(&fired);
            let done = Arc::clone(&done);
            let log2 = Arc::clone(&log);
            log.submit_commit(
                lsn,
                Box::new(move || {
                    assert!(
                        log2.flushed_lsn() >= lsn,
                        "callback must run post-durability"
                    );
                    fired.lock().push(lsn);
                    let mut n = done.0.lock();
                    *n += 1;
                    done.1.notify_all();
                }),
            );
        }
        let mut n = done.0.lock();
        while *n < count {
            done.1.wait(&mut n);
        }
        drop(n);
        assert_eq!(fired.lock().len(), count);
    }

    #[test]
    fn group_window_holds_the_first_commit_for_the_group() {
        let durability = DurabilityConfig {
            group_window_micros: 20_000,
            ..DurabilityConfig::default()
        };
        let log = LogManager::with_durability(0, durability);
        let lsn = log.append(TxnId(1), LogRecordKind::Commit);
        let start = Instant::now();
        log.flush(lsn);
        assert!(
            start.elapsed() >= Duration::from_micros(15_000),
            "a lone commit must wait out (most of) the group window"
        );
    }

    #[test]
    fn concurrent_appends_have_unique_lsns() {
        let log = Arc::new(LogManager::new(0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    (0..500)
                        .map(|_| log.append(TxnId(t + 1), LogRecordKind::Begin))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
