//! Spin latches with contention accounting.
//!
//! Shore-MT protects the physical consistency of its in-memory structures
//! with latches; the paper's testbed uses a preemption-resistant variation of
//! the MCS queue-based spinlock and reports that, for the CPU loads studied,
//! spinning beats blocking (the paper's reference \[12\]). The time threads
//! spend *spinning on latches
//! inside the lock manager* is exactly the "Lock Mgr Cont." component of the
//! paper's time breakdowns, so our latch records the time it spends spinning
//! into a caller-supplied [`TimeCategory`].
//!
//! The implementation is a test-and-test-and-set spinlock with exponential
//! backoff and eventual `yield_now`, which gives the same qualitative
//! behaviour (contention grows super-linearly with the number of waiters) as
//! the MCS lock while staying simple. The latch owns its protected data, like
//! `std::sync::Mutex`.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use dora_metrics::{incr, record_time, CounterKind, TimeCategory};

/// Number of busy-spin iterations before the waiter starts yielding the CPU.
/// Mirrors the "preemption resistant" flavour of the paper's MCS latch: after
/// a bounded spin we give the scheduler a chance to run the holder.
const SPIN_BEFORE_YIELD: u32 = 128;

/// A spin latch protecting a value of type `T`.
#[derive(Debug)]
pub struct Latch<T> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// Safety: the latch provides mutual exclusion for access to `data`, exactly
// like a mutex; `T: Send` is required to move the protected value across the
// threads that may acquire the latch.
unsafe impl<T: Send> Send for Latch<T> {}
unsafe impl<T: Send> Sync for Latch<T> {}

impl<T> Latch<T> {
    /// Creates a latch protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the latch, charging any spin time to `contention_category`.
    ///
    /// The fast path (latch free, single compare-and-swap) performs no timing
    /// at all so that un-contended acquisitions stay cheap, mirroring how
    /// latch costs only become visible under contention.
    pub fn lock(&self, contention_category: TimeCategory) -> LatchGuard<'_, T> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            incr(CounterKind::LatchFastPath);
            return LatchGuard { latch: self };
        }
        self.lock_slow(contention_category)
    }

    #[cold]
    fn lock_slow(&self, contention_category: TimeCategory) -> LatchGuard<'_, T> {
        incr(CounterKind::LatchContended);
        let start = Instant::now();
        let mut spins: u32 = 0;
        loop {
            // Test-and-test-and-set: spin on a plain load to avoid hammering
            // the cache line with RMW operations.
            while self.locked.load(Ordering::Relaxed) {
                spins = spins.wrapping_add(1);
                if spins < SPIN_BEFORE_YIELD {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            if self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                record_time(contention_category, start.elapsed());
                return LatchGuard { latch: self };
            }
        }
    }

    /// Attempts to acquire the latch without spinning.
    pub fn try_lock(&self) -> Option<LatchGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            incr(CounterKind::LatchFastPath);
            Some(LatchGuard { latch: self })
        } else {
            None
        }
    }

    /// Returns whether the latch is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Consumes the latch and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// RAII guard for a held [`Latch`]. Dereferences to the protected value and
/// releases the latch on drop.
#[derive(Debug)]
pub struct LatchGuard<'a, T> {
    latch: &'a Latch<T>,
}

impl<T> Deref for LatchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the guard's existence proves we hold the latch.
        unsafe { &*self.latch.data.get() }
    }
}

impl<T> DerefMut for LatchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard's existence proves we hold the latch exclusively.
        unsafe { &mut *self.latch.data.get() }
    }
}

impl<T> Drop for LatchGuard<'_, T> {
    fn drop(&mut self) {
        self.latch.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn provides_mutual_exclusion() {
        let latch = Arc::new(Latch::new(0u64));
        let threads = 8;
        let iterations = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let latch = Arc::clone(&latch);
                std::thread::spawn(move || {
                    for _ in 0..iterations {
                        let mut guard = latch.lock(TimeCategory::OtherContention);
                        *guard += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            *latch.lock(TimeCategory::OtherContention),
            threads * iterations
        );
    }

    #[test]
    fn try_lock_fails_while_held() {
        let latch = Latch::new(1);
        let guard = latch.lock(TimeCategory::OtherContention);
        assert!(latch.try_lock().is_none());
        drop(guard);
        assert!(latch.try_lock().is_some());
    }

    #[test]
    fn contention_is_recorded() {
        use dora_metrics::global;
        let before = global().snapshot();
        let latch = Arc::new(Latch::new(()));
        let guard = latch.lock(TimeCategory::LockMgrAcquireContention);
        let latch2 = Arc::clone(&latch);
        let waiter = std::thread::spawn(move || {
            let _guard = latch2.lock(TimeCategory::LockMgrAcquireContention);
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(guard);
        waiter.join().unwrap();
        let delta = global().snapshot().since(&before);
        assert!(delta.nanos(TimeCategory::LockMgrAcquireContention) >= 1_000_000);
        assert!(delta.counter(CounterKind::LatchContended) >= 1);
    }

    #[test]
    fn into_inner_returns_value() {
        let latch = Latch::new(vec![1, 2, 3]);
        assert_eq!(latch.into_inner(), vec![1, 2, 3]);
    }
}
