//! The centralized, hierarchical lock manager.
//!
//! This is the component Section 3 of the paper dissects and blames for the
//! scalability collapse of conventional OLTP on multicores, and the component
//! DORA bypasses. Its structure follows the paper's description of Shore-MT:
//!
//! * every logical lock is a data structure holding the lock's mode, a linked
//!   list of granted/pending requests, and a **latch**;
//! * acquiring a lock first ensures the proper **intention locks** higher up
//!   the hierarchy (database → table → record) are held, then probes a hash
//!   table, latches the lock head, and appends the request;
//! * releasing walks the transaction's requests youngest-first, latching each
//!   lock, unlinking the request, recomputing the group mode and waking any
//!   pending requests that can now be granted;
//! * deadlock detection runs over a waits-for graph; DORA's thread-local lock
//!   tables can feed their own waits into the same detector (Section 4.2.3).
//!
//! All latch spin time and logical lock wait time is recorded into
//! [`dora_metrics`] so the harness can reproduce Figures 1–3.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use dora_common::prelude::*;
use dora_metrics::{incr, CounterKind, TimeCategory, TimerGuard};

use crate::latch::Latch;

/// Hierarchical lock modes, as in System R and Shore-MT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared: some descendant is locked in S.
    IS,
    /// Intention exclusive: some descendant is locked in X.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Standard multigranularity compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Least upper bound of two modes in the lock lattice: the mode a
    /// transaction must hold to cover both. Used for lock upgrades
    /// (e.g. S + IX = SIX, S + X = X).
    pub fn combine(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            (S, IS) | (IS, S) => S,
            (IX, IS) | (IS, IX) => IX,
            (IS, IS) => IS,
            (S, S) => S,
            (IX, IX) => IX,
        }
    }

    /// `true` if holding `self` also satisfies a request for `other`.
    pub fn covers(self, other: LockMode) -> bool {
        self.combine(other) == self
    }

    /// The intention mode a parent in the hierarchy must be held in before
    /// requesting `self` on a child.
    pub fn intention(self) -> LockMode {
        use LockMode::*;
        match self {
            IS | S => IS,
            IX | SIX | X => IX,
        }
    }
}

/// Identity of a lockable resource in the hierarchy.
///
/// The paper's analysis needs three levels: the database, tables (whose
/// intention locks every transaction touches and which therefore become the
/// hot, contended lock heads) and records. Record locks are keyed by RID,
/// matching Shore-MT and the insert/delete slot coordination of
/// Section 4.2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockId {
    /// The whole database.
    Database,
    /// A table.
    Table(TableId),
    /// A record, addressed by its table and packed RID.
    Record(TableId, u64),
}

impl LockId {
    /// Builds the record lock id for a RID.
    pub fn record(table: TableId, rid: Rid) -> Self {
        LockId::Record(table, rid.pack())
    }

    /// The parent resource in the hierarchy, if any.
    pub fn parent(self) -> Option<LockId> {
        match self {
            LockId::Database => None,
            LockId::Table(_) => Some(LockId::Database),
            LockId::Record(table, _) => Some(LockId::Table(table)),
        }
    }

    /// `true` if this is a row-level (record) lock. Figure 5 of the paper
    /// splits lock counts into row-level and higher-level.
    pub fn is_row_level(self) -> bool {
        matches!(self, LockId::Record(_, _))
    }
}

/// Why a blocked request stopped waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GrantOutcome {
    Granted,
    Deadlock,
    Timeout,
}

/// Shared wait/notify cell for one pending request.
#[derive(Debug, Default)]
struct GrantSignal {
    state: Mutex<Option<GrantOutcome>>,
    cond: Condvar,
}

impl GrantSignal {
    fn notify(&self, outcome: GrantOutcome) {
        let mut state = self.state.lock();
        *state = Some(outcome);
        self.cond.notify_all();
    }

    fn wait(&self, timeout: Duration) -> GrantOutcome {
        let mut state = self.state.lock();
        while state.is_none() {
            if self.cond.wait_for(&mut state, timeout).timed_out() && state.is_none() {
                return GrantOutcome::Timeout;
            }
        }
        state.expect("checked above")
    }
}

/// One entry in a lock head's request list.
#[derive(Debug)]
struct LockRequest {
    txn: TxnId,
    /// Mode currently granted (meaningful only when `granted`).
    granted_mode: LockMode,
    /// Mode the request wants (differs from `granted_mode` during upgrades).
    wanted_mode: LockMode,
    granted: bool,
    signal: Arc<GrantSignal>,
}

/// State behind a lock head's latch.
#[derive(Debug, Default)]
struct LockHeadInner {
    requests: Vec<LockRequest>,
    /// Set when the head has been unlinked from its hash bucket; a racer that
    /// still holds an `Arc` must retry its probe.
    unlinked: bool,
}

impl LockHeadInner {
    /// Transactions whose granted or earlier pending requests are
    /// incompatible with `mode` (ignoring `except`'s own requests).
    fn conflicting_txns(&self, mode: LockMode, except: TxnId) -> Vec<TxnId> {
        self.requests
            .iter()
            .filter(|r| r.txn != except)
            .filter(|r| {
                let other = if r.granted {
                    r.granted_mode
                } else {
                    r.wanted_mode
                };
                !mode.compatible(other)
            })
            .map(|r| r.txn)
            .collect()
    }

    /// FIFO grant sweep: grants every pending request (in arrival order) that
    /// is compatible with the currently granted group, stopping lock-mode
    /// upgrades ahead of ordinary requests.
    fn grant_pending(&mut self) {
        // Upgrades (granted request whose wanted mode is stronger) first.
        for i in 0..self.requests.len() {
            if self.requests[i].granted
                && self.requests[i].wanted_mode != self.requests[i].granted_mode
            {
                let wanted = self.requests[i].wanted_mode;
                let txn = self.requests[i].txn;
                let compatible = self
                    .requests
                    .iter()
                    .filter(|r| r.granted && r.txn != txn)
                    .all(|r| wanted.compatible(r.granted_mode));
                if compatible {
                    self.requests[i].granted_mode = wanted;
                    self.requests[i].signal.notify(GrantOutcome::Granted);
                }
            }
        }
        // Then plain pending requests in FIFO order.
        for i in 0..self.requests.len() {
            if !self.requests[i].granted {
                let wanted = self.requests[i].wanted_mode;
                let compatible = self
                    .requests
                    .iter()
                    .take(i)
                    .chain(self.requests.iter().skip(i + 1))
                    .filter(|r| r.granted)
                    .all(|r| wanted.compatible(r.granted_mode));
                if !compatible {
                    // Preserve FIFO order: later requests stay blocked behind
                    // this one.
                    break;
                }
                self.requests[i].granted = true;
                self.requests[i].granted_mode = wanted;
                self.requests[i].signal.notify(GrantOutcome::Granted);
            }
        }
    }
}

/// A lock head: the per-resource structure holding the request list.
#[derive(Debug)]
struct LockHead {
    inner: Latch<LockHeadInner>,
}

impl LockHead {
    fn new() -> Self {
        Self {
            inner: Latch::new(LockHeadInner::default()),
        }
    }
}

type Bucket = Latch<HashMap<LockId, Arc<LockHead>>>;

/// The centralized lock manager.
pub struct LockManager {
    buckets: Vec<Bucket>,
    /// Waits-for graph: waiter → (holder → number of live wait edges). Edges
    /// are *counted* because one transaction can wait at several places at
    /// once — two actions parked at different DORA executors, or a parked
    /// action plus a blocked centralized acquire — and resolving one wait
    /// must not erase the edges the others still need for cycle detection.
    waits_for: Mutex<HashMap<TxnId, HashMap<TxnId, usize>>>,
    deadlock_detection: bool,
    wait_timeout: Duration,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

/// Per-transaction record of held locks; owned by the transaction state and
/// handed back to the lock manager at commit/abort for release.
#[derive(Debug, Default)]
pub struct HeldLocks {
    /// Acquisition order is preserved so release can run youngest-first.
    locks: Vec<(LockId, LockMode)>,
    /// Fast lookup of the strongest mode held per lock.
    modes: HashMap<LockId, LockMode>,
}

impl HeldLocks {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Strongest mode held on `id`, if any.
    pub fn mode(&self, id: &LockId) -> Option<LockMode> {
        self.modes.get(id).copied()
    }

    /// Number of distinct locks held.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// `true` if no locks are held.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    fn note(&mut self, id: LockId, mode: LockMode) {
        match self.modes.get_mut(&id) {
            Some(existing) => {
                *existing = existing.combine(mode);
            }
            None => {
                self.modes.insert(id, mode);
                self.locks.push((id, mode));
            }
        }
    }
}

/// Default number of hash buckets in the lock table.
const DEFAULT_BUCKETS: usize = 1024;

/// How long a blocked request waits before giving up. This is a safety net
/// (the deadlock detector should fire first); it maps to an abort, like a
/// lock timeout would in a production engine.
const DEFAULT_WAIT_TIMEOUT: Duration = Duration::from_secs(10);

impl LockManager {
    /// Creates a lock manager with deadlock detection enabled.
    pub fn new(deadlock_detection: bool) -> Self {
        Self {
            buckets: (0..DEFAULT_BUCKETS)
                .map(|_| Latch::new(HashMap::new()))
                .collect(),
            waits_for: Mutex::new(HashMap::new()),
            deadlock_detection,
            wait_timeout: DEFAULT_WAIT_TIMEOUT,
        }
    }

    /// Overrides the blocked-request timeout (tests use short values).
    pub fn with_wait_timeout(mut self, timeout: Duration) -> Self {
        self.wait_timeout = timeout;
        self
    }

    fn bucket(&self, id: &LockId) -> &Bucket {
        let mut hasher = DefaultHasher::new();
        id.hash(&mut hasher);
        &self.buckets[(hasher.finish() as usize) % self.buckets.len()]
    }

    fn head_for(&self, id: LockId) -> Arc<LockHead> {
        loop {
            let head = {
                let mut bucket = self
                    .bucket(&id)
                    .lock(TimeCategory::LockMgrAcquireContention);
                Arc::clone(
                    bucket
                        .entry(id)
                        .or_insert_with(|| Arc::new(LockHead::new())),
                )
            };
            // The head may have been unlinked between our probe and latch; the
            // check happens under the head latch in the caller, so hand the
            // caller a closure-ish contract: we verify here quickly instead.
            let inner = head.inner.lock(TimeCategory::LockMgrAcquireContention);
            if !inner.unlinked {
                drop(inner);
                return head;
            }
        }
    }

    /// Acquires `mode` on `id` for `txn`, blocking if necessary.
    ///
    /// `held` is the transaction's private ledger of locks; re-acquiring a
    /// lock already covered by a held mode is a no-op (this is how intention
    /// locks end up being acquired once per transaction rather than once per
    /// record access).
    pub fn acquire(
        &self,
        txn: TxnId,
        held: &mut HeldLocks,
        id: LockId,
        mode: LockMode,
    ) -> DbResult<()> {
        if let Some(existing) = held.mode(&id) {
            if existing.covers(mode) {
                return Ok(());
            }
        }
        let mut timer = TimerGuard::new(TimeCategory::LockMgrAcquire);

        let head = self.head_for(id);
        let mut inner = head.inner.lock(TimeCategory::LockMgrAcquireContention);
        if inner.unlinked {
            // Extremely unlikely (checked in head_for); retry.
            drop(inner);
            drop(timer);
            return self.acquire(txn, held, id, mode);
        }
        // Upgrade path: the transaction already has a request here.
        if let Some(pos) = inner.requests.iter().position(|r| r.txn == txn) {
            let wanted = inner.requests[pos].granted_mode.combine(mode);
            if inner.requests[pos].granted && inner.requests[pos].granted_mode.covers(mode) {
                held.note(id, wanted);
                return Ok(());
            }
            let others_compatible = inner
                .requests
                .iter()
                .filter(|r| r.granted && r.txn != txn)
                .all(|r| wanted.compatible(r.granted_mode));
            if others_compatible {
                inner.requests[pos].granted_mode = wanted;
                inner.requests[pos].wanted_mode = wanted;
                inner.requests[pos].granted = true;
                held.note(id, wanted);
                self.count_acquisition(id);
                return Ok(());
            }
            // Must wait for the conversion.
            inner.requests[pos].wanted_mode = wanted;
            let signal = Arc::clone(&inner.requests[pos].signal);
            let blockers = inner.conflicting_txns(wanted, txn);
            drop(inner);
            self.block_on(txn, held, id, wanted, &head, signal, blockers, &mut timer)?;
            self.count_acquisition(id);
            return Ok(());
        }
        // Fresh request.
        let wanted = mode;
        let compatible_with_granted = inner
            .requests
            .iter()
            .filter(|r| r.granted)
            .all(|r| wanted.compatible(r.granted_mode));
        let no_pending = inner.requests.iter().all(|r| r.granted);
        if compatible_with_granted && no_pending {
            inner.requests.push(LockRequest {
                txn,
                granted_mode: wanted,
                wanted_mode: wanted,
                granted: true,
                signal: Arc::new(GrantSignal::default()),
            });
            held.note(id, wanted);
            self.count_acquisition(id);
            return Ok(());
        }
        // Must block.
        let signal = Arc::new(GrantSignal::default());
        inner.requests.push(LockRequest {
            txn,
            granted_mode: wanted,
            wanted_mode: wanted,
            granted: false,
            signal: Arc::clone(&signal),
        });
        let blockers = inner.conflicting_txns(wanted, txn);
        drop(inner);
        self.block_on(txn, held, id, wanted, &head, signal, blockers, &mut timer)?;
        self.count_acquisition(id);
        Ok(())
    }

    /// Shared blocking path for fresh waits and upgrade waits.
    #[allow(clippy::too_many_arguments)]
    fn block_on(
        &self,
        txn: TxnId,
        held: &mut HeldLocks,
        id: LockId,
        wanted: LockMode,
        head: &Arc<LockHead>,
        signal: Arc<GrantSignal>,
        blockers: Vec<TxnId>,
        timer: &mut TimerGuard,
    ) -> DbResult<()> {
        incr(CounterKind::LockWaits);
        self.add_waits(txn, &blockers);
        if self.deadlock_detection && self.creates_cycle(txn) {
            self.remove_waits(txn, &blockers);
            self.cancel_request(head, txn, id);
            incr(CounterKind::DeadlockVictim);
            return Err(DbError::Deadlock { victim: txn });
        }
        timer.switch(TimeCategory::LockWait);
        let outcome = signal.wait(self.wait_timeout);
        timer.switch(TimeCategory::LockMgrAcquire);
        // Drop exactly the edges this wait registered; a concurrent action of
        // the same transaction parked on a DORA local lock keeps its edges.
        self.remove_waits(txn, &blockers);
        match outcome {
            GrantOutcome::Granted => {
                held.note(id, wanted);
                Ok(())
            }
            GrantOutcome::Deadlock => {
                self.cancel_request(head, txn, id);
                incr(CounterKind::DeadlockVictim);
                Err(DbError::Deadlock { victim: txn })
            }
            GrantOutcome::Timeout => {
                self.cancel_request(head, txn, id);
                incr(CounterKind::DeadlockVictim);
                Err(DbError::Deadlock { victim: txn })
            }
        }
    }

    /// Removes a pending (never granted) request after a deadlock or timeout.
    /// If the request was granted concurrently with the decision to give up,
    /// it is released instead so no lock leaks.
    fn cancel_request(&self, head: &Arc<LockHead>, txn: TxnId, _id: LockId) {
        let mut inner = head.inner.lock(TimeCategory::LockMgrAcquireContention);
        if let Some(pos) = inner.requests.iter().position(|r| r.txn == txn) {
            let was_upgrade = inner.requests[pos].granted
                && inner.requests[pos].wanted_mode != inner.requests[pos].granted_mode;
            if was_upgrade {
                // Keep the originally granted mode; just forget the upgrade.
                let granted_mode = inner.requests[pos].granted_mode;
                inner.requests[pos].wanted_mode = granted_mode;
            } else if !inner.requests[pos].granted {
                inner.requests.remove(pos);
            } else {
                // Granted between timeout and cancellation: leave it held; the
                // caller will release it with the rest of the transaction's
                // locks at abort.
            }
            inner.grant_pending();
        }
    }

    /// Releases every lock `txn` holds, youngest first, waking any waiters
    /// that become grantable. The caller passes the transaction's ledger by
    /// value; afterwards the transaction holds nothing.
    pub fn release_all(&self, txn: TxnId, held: HeldLocks) {
        for (id, _) in held.locks.iter().rev() {
            self.release_one(txn, *id);
        }
        self.clear_waits(txn);
    }

    fn release_one(&self, txn: TxnId, id: LockId) {
        let mut timer = TimerGuard::new(TimeCategory::LockMgrRelease);
        let head = {
            let bucket = self
                .bucket(&id)
                .lock(TimeCategory::LockMgrReleaseContention);
            match bucket.get(&id) {
                Some(head) => Arc::clone(head),
                None => return,
            }
        };
        let empty = {
            let mut inner = head.inner.lock(TimeCategory::LockMgrReleaseContention);
            if let Some(pos) = inner.requests.iter().position(|r| r.txn == txn) {
                let request = inner.requests.remove(pos);
                if !request.granted {
                    // A pending request released at abort: wake it so the
                    // waiter (if any) does not hang; it will observe deadlock.
                    request.signal.notify(GrantOutcome::Deadlock);
                }
            }
            inner.grant_pending();
            inner.requests.is_empty()
        };
        timer.switch(TimeCategory::LockMgrRelease);
        if empty {
            // Unlink the now-empty head so record locks do not accumulate.
            let mut bucket = self
                .bucket(&id)
                .lock(TimeCategory::LockMgrReleaseContention);
            if let Some(candidate) = bucket.get(&id) {
                if Arc::ptr_eq(candidate, &head) {
                    let mut inner = head.inner.lock(TimeCategory::LockMgrReleaseContention);
                    if inner.requests.is_empty() {
                        inner.unlinked = true;
                        drop(inner);
                        bucket.remove(&id);
                    }
                }
            }
        }
    }

    fn count_acquisition(&self, id: LockId) {
        if id.is_row_level() {
            incr(CounterKind::RowLevelLock);
        } else {
            incr(CounterKind::HigherLevelLock);
        }
    }

    // ----- waits-for graph -------------------------------------------------

    fn add_waits(&self, waiter: TxnId, holders: &[TxnId]) {
        if holders.is_empty() {
            return;
        }
        let mut graph = self.waits_for.lock();
        let edges = graph.entry(waiter).or_default();
        for holder in holders {
            *edges.entry(*holder).or_insert(0) += 1;
        }
    }

    /// Removes one wait edge per listed holder. Edges another wait of the
    /// same transaction still relies on (count > 1) survive; holders with no
    /// recorded edge are ignored.
    fn remove_waits(&self, waiter: TxnId, holders: &[TxnId]) {
        if holders.is_empty() {
            return;
        }
        let mut graph = self.waits_for.lock();
        if let Some(edges) = graph.get_mut(&waiter) {
            for holder in holders {
                if let Some(count) = edges.get_mut(holder) {
                    *count -= 1;
                    if *count == 0 {
                        edges.remove(holder);
                    }
                }
            }
            if edges.is_empty() {
                graph.remove(&waiter);
            }
        }
    }

    fn clear_waits(&self, waiter: TxnId) {
        self.waits_for.lock().remove(&waiter);
    }

    /// Registers a wait edge coming from outside the lock manager — DORA's
    /// thread-local lock tables use this so that waits on local locks
    /// participate in global deadlock detection (Section 4.2.3).
    pub fn add_external_wait(&self, waiter: TxnId, holder: TxnId) -> DbResult<()> {
        self.add_waits(waiter, &[holder]);
        if self.deadlock_detection && self.creates_cycle(waiter) {
            // Undo only the edge that closed the cycle; the transaction's
            // other waits (parked actions at other executors) stay in the
            // graph — they are still real until those actions resolve.
            self.remove_waits(waiter, &[holder]);
            incr(CounterKind::DeadlockVictim);
            return Err(DbError::Deadlock { victim: waiter });
        }
        Ok(())
    }

    /// Removes the specific wait edges a resolved local-lock wait had
    /// registered — one edge per holder in `holders`. Edges registered by
    /// the transaction's other still-pending waits are preserved.
    pub fn remove_external_waits(&self, waiter: TxnId, holders: &[TxnId]) {
        self.remove_waits(waiter, holders);
    }

    /// Removes every wait edge originating at `waiter` — for transaction
    /// completion, when no wait of the transaction can still be live.
    pub fn remove_external_wait(&self, waiter: TxnId) {
        self.clear_waits(waiter);
    }

    /// DFS over the waits-for graph looking for a cycle through `start`.
    fn creates_cycle(&self, start: TxnId) -> bool {
        let graph = self.waits_for.lock();
        let mut stack: Vec<TxnId> = graph
            .get(&start)
            .map(|edges| edges.keys().copied().collect())
            .unwrap_or_default();
        let mut visited = HashSet::new();
        while let Some(current) = stack.pop() {
            if current == start {
                return true;
            }
            if !visited.insert(current) {
                continue;
            }
            if let Some(next) = graph.get(&current) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }

    /// Number of lock heads currently linked into the hash table (for tests
    /// and diagnostics).
    pub fn live_lock_heads(&self) -> usize {
        self.buckets
            .iter()
            .map(|bucket| bucket.lock(TimeCategory::LockMgrOther).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn manager() -> Arc<LockManager> {
        Arc::new(LockManager::new(true).with_wait_timeout(Duration::from_secs(2)))
    }

    #[test]
    fn compatibility_matrix_is_symmetric() {
        use LockMode::*;
        let modes = [IS, IX, S, SIX, X];
        for a in modes {
            for b in modes {
                assert_eq!(a.compatible(b), b.compatible(a), "{a:?} vs {b:?}");
            }
        }
        assert!(IS.compatible(IX));
        assert!(!S.compatible(IX));
        assert!(!X.compatible(IS));
        assert!(SIX.compatible(IS));
        assert!(!SIX.compatible(S));
    }

    #[test]
    fn combine_produces_supremum() {
        use LockMode::*;
        assert_eq!(S.combine(IX), SIX);
        assert_eq!(IS.combine(IX), IX);
        assert_eq!(S.combine(X), X);
        assert_eq!(IS.combine(S), S);
        assert_eq!(SIX.combine(IS), SIX);
        assert!(X.covers(S));
        assert!(!S.covers(X));
    }

    #[test]
    fn combine_is_a_least_upper_bound_over_covers() {
        use LockMode::*;
        let modes = [IS, IX, S, SIX, X];
        for a in modes {
            // Idempotent and reflexive.
            assert_eq!(a.combine(a), a);
            assert!(a.covers(a));
            for b in modes {
                let join = a.combine(b);
                // Commutative.
                assert_eq!(join, b.combine(a), "combine({a:?}, {b:?}) not commutative");
                // Upper bound: the join satisfies both operands.
                assert!(
                    join.covers(a),
                    "combine({a:?}, {b:?}) = {join:?} does not cover {a:?}"
                );
                assert!(
                    join.covers(b),
                    "combine({a:?}, {b:?}) = {join:?} does not cover {b:?}"
                );
                // Least: anything covering both operands covers the join.
                for c in modes {
                    if c.covers(a) && c.covers(b) {
                        assert!(
                            c.covers(join),
                            "{c:?} covers {a:?} and {b:?} but not their join {join:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stronger_modes_conflict_with_at_least_as_much() {
        // If `strong` covers `weak`, anything compatible with `strong` must
        // also be compatible with `weak` — upgrades can only shrink the set
        // of admissible concurrent holders.
        use LockMode::*;
        let modes = [IS, IX, S, SIX, X];
        for strong in modes {
            for weak in modes {
                if !strong.covers(weak) {
                    continue;
                }
                for other in modes {
                    if strong.compatible(other) {
                        assert!(
                            weak.compatible(other),
                            "{strong:?} covers {weak:?} and allows {other:?}, but {weak:?} \
                             rejects it"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn intention_modes() {
        assert_eq!(LockMode::S.intention(), LockMode::IS);
        assert_eq!(LockMode::X.intention(), LockMode::IX);
        assert_eq!(LockMode::SIX.intention(), LockMode::IX);
    }

    #[test]
    fn shared_locks_do_not_block_each_other() {
        let manager = manager();
        let id = LockId::Table(TableId(1));
        let mut held1 = HeldLocks::new();
        let mut held2 = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held1, id, LockMode::S)
            .unwrap();
        manager
            .acquire(TxnId(2), &mut held2, id, LockMode::S)
            .unwrap();
        manager.release_all(TxnId(1), held1);
        manager.release_all(TxnId(2), held2);
    }

    #[test]
    fn exclusive_lock_blocks_until_release() {
        let manager = manager();
        let id = LockId::record(TableId(1), Rid::new(0, 0));
        let mut held1 = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held1, id, LockMode::X)
            .unwrap();

        let acquired = Arc::new(AtomicBool::new(false));
        let acquired_clone = Arc::clone(&acquired);
        let manager_clone = Arc::clone(&manager);
        let waiter = std::thread::spawn(move || {
            let mut held2 = HeldLocks::new();
            manager_clone
                .acquire(TxnId(2), &mut held2, id, LockMode::X)
                .unwrap();
            acquired_clone.store(true, Ordering::SeqCst);
            manager_clone.release_all(TxnId(2), held2);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !acquired.load(Ordering::SeqCst),
            "waiter should still be blocked"
        );
        manager.release_all(TxnId(1), held1);
        waiter.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn reacquiring_a_covered_lock_is_a_noop() {
        let manager = manager();
        let id = LockId::Table(TableId(3));
        let mut held = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held, id, LockMode::X)
            .unwrap();
        manager
            .acquire(TxnId(1), &mut held, id, LockMode::S)
            .unwrap();
        manager
            .acquire(TxnId(1), &mut held, id, LockMode::IX)
            .unwrap();
        assert_eq!(held.len(), 1);
        manager.release_all(TxnId(1), held);
    }

    #[test]
    fn upgrade_from_shared_to_exclusive() {
        let manager = manager();
        let id = LockId::record(TableId(1), Rid::new(1, 1));
        let mut held = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held, id, LockMode::S)
            .unwrap();
        manager
            .acquire(TxnId(1), &mut held, id, LockMode::X)
            .unwrap();
        assert_eq!(held.mode(&id), Some(LockMode::X));
        manager.release_all(TxnId(1), held);
    }

    #[test]
    fn deadlock_is_detected() {
        let manager = manager();
        let id_a = LockId::record(TableId(1), Rid::new(0, 1));
        let id_b = LockId::record(TableId(1), Rid::new(0, 2));

        let mut held1 = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held1, id_a, LockMode::X)
            .unwrap();

        let manager_clone = Arc::clone(&manager);
        let other = std::thread::spawn(move || {
            let mut held2 = HeldLocks::new();
            manager_clone
                .acquire(TxnId(2), &mut held2, id_b, LockMode::X)
                .unwrap();
            // Now try to take A; this blocks on T1.
            let result = manager_clone.acquire(TxnId(2), &mut held2, id_a, LockMode::X);
            manager_clone.release_all(TxnId(2), held2);
            result
        });
        std::thread::sleep(Duration::from_millis(50));
        // T1 tries to take B, closing the cycle: one of the two must abort.
        let result1 = manager.acquire(TxnId(1), &mut held1, id_b, LockMode::X);
        let result2 = other.join().unwrap();
        manager.release_all(TxnId(1), held1);
        assert!(
            result1.is_err() || result2.is_err(),
            "at least one participant must be chosen as deadlock victim"
        );
    }

    #[test]
    fn lock_counters_split_row_and_higher_level() {
        use dora_metrics::global;
        let before = global().snapshot();
        let manager = manager();
        let mut held = HeldLocks::new();
        manager
            .acquire(TxnId(9), &mut held, LockId::Database, LockMode::IX)
            .unwrap();
        manager
            .acquire(TxnId(9), &mut held, LockId::Table(TableId(1)), LockMode::IX)
            .unwrap();
        manager
            .acquire(
                TxnId(9),
                &mut held,
                LockId::record(TableId(1), Rid::new(0, 0)),
                LockMode::X,
            )
            .unwrap();
        manager.release_all(TxnId(9), held);
        let delta = global().snapshot().since(&before);
        assert!(delta.counter(CounterKind::HigherLevelLock) >= 2);
        assert!(delta.counter(CounterKind::RowLevelLock) >= 1);
    }

    #[test]
    fn empty_heads_are_unlinked_after_release() {
        let manager = manager();
        let mut held = HeldLocks::new();
        for i in 0..100u16 {
            manager
                .acquire(
                    TxnId(5),
                    &mut held,
                    LockId::record(TableId(1), Rid::new(0, i)),
                    LockMode::X,
                )
                .unwrap();
        }
        assert!(manager.live_lock_heads() >= 100);
        manager.release_all(TxnId(5), held);
        assert_eq!(manager.live_lock_heads(), 0);
    }

    #[test]
    fn external_waits_feed_deadlock_detection() {
        let manager = manager();
        manager.add_external_wait(TxnId(1), TxnId(2)).unwrap();
        let result = manager.add_external_wait(TxnId(2), TxnId(1));
        assert!(matches!(result, Err(DbError::Deadlock { .. })));
        manager.remove_external_wait(TxnId(1));
        manager.remove_external_wait(TxnId(2));
    }

    #[test]
    fn external_wait_edges_are_counted_per_wait() {
        // A transaction parked at two executors registers the same edge
        // twice; resolving one wait must leave the other's edge in place so
        // a cycle through it is still caught.
        let manager = manager();
        manager.add_external_wait(TxnId(1), TxnId(2)).unwrap();
        manager.add_external_wait(TxnId(1), TxnId(2)).unwrap();
        manager.remove_external_waits(TxnId(1), &[TxnId(2)]);
        let result = manager.add_external_wait(TxnId(2), TxnId(1));
        assert!(
            matches!(result, Err(DbError::Deadlock { victim }) if victim == TxnId(2)),
            "edge 1→2 must survive removing one of its two registrations"
        );
        manager.remove_external_wait(TxnId(1));
        manager.remove_external_wait(TxnId(2));
    }

    #[test]
    fn resolving_a_cleared_external_wait_is_harmless() {
        // remove for a holder with no recorded edge must not underflow or
        // disturb other edges.
        let manager = manager();
        manager.add_external_wait(TxnId(3), TxnId(4)).unwrap();
        manager.remove_external_waits(TxnId(3), &[TxnId(9)]);
        let result = manager.add_external_wait(TxnId(4), TxnId(3));
        assert!(matches!(result, Err(DbError::Deadlock { .. })));
        manager.remove_external_wait(TxnId(3));
        manager.remove_external_wait(TxnId(4));
    }

    #[test]
    fn fifo_fairness_prevents_starvation() {
        // A stream of shared lockers must not starve a pending exclusive one.
        let manager = manager();
        let id = LockId::Table(TableId(7));
        let mut held_reader = HeldLocks::new();
        manager
            .acquire(TxnId(1), &mut held_reader, id, LockMode::S)
            .unwrap();

        let manager_writer = Arc::clone(&manager);
        let writer = std::thread::spawn(move || {
            let mut held = HeldLocks::new();
            manager_writer
                .acquire(TxnId(2), &mut held, id, LockMode::X)
                .unwrap();
            manager_writer.release_all(TxnId(2), held);
        });
        std::thread::sleep(Duration::from_millis(20));

        // A reader arriving after the writer must queue behind it.
        let manager_late = Arc::clone(&manager);
        let late_reader = std::thread::spawn(move || {
            let mut held = HeldLocks::new();
            manager_late
                .acquire(TxnId(3), &mut held, id, LockMode::S)
                .unwrap();
            manager_late.release_all(TxnId(3), held);
        });
        std::thread::sleep(Duration::from_millis(20));
        manager.release_all(TxnId(1), held_reader);
        writer.join().unwrap();
        late_reader.join().unwrap();
    }

    #[test]
    fn concurrent_stress_preserves_exclusivity() {
        let manager = manager();
        let counter = Arc::new(Mutex::new(0u64));
        let in_critical = Arc::new(AtomicBool::new(false));
        let threads = 8;
        let iterations = 200;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let counter = Arc::clone(&counter);
                let in_critical = Arc::clone(&in_critical);
                std::thread::spawn(move || {
                    for i in 0..iterations {
                        let txn = TxnId((t * iterations + i + 1) as u64);
                        let mut held = HeldLocks::new();
                        let id = LockId::record(TableId(1), Rid::new(0, 7));
                        manager.acquire(txn, &mut held, id, LockMode::X).unwrap();
                        assert!(!in_critical.swap(true, Ordering::SeqCst));
                        *counter.lock() += 1;
                        in_critical.store(false, Ordering::SeqCst);
                        manager.release_all(txn, held);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), (threads * iterations) as u64);
    }
}
