//! Transaction state and the transaction manager.
//!
//! The transaction manager allocates transaction ids and tracks per
//! transaction state: status, the ledger of centralized locks held (released
//! at commit/abort), and the last LSN written on each log stream the
//! transaction touched (the points every stream must be fenced and flushed
//! to at commit). A transaction's state is shared behind an `Arc`
//! because under DORA a single transaction's actions execute on several
//! executor threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dora_common::prelude::*;
use dora_metrics::{incr, CounterKind};

use crate::lock::HeldLocks;
use crate::log::{Lsn, StreamId};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running; may still acquire locks and write log records.
    Active,
    /// Successfully committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Shared state of one transaction.
#[derive(Debug)]
pub struct TxnState {
    /// Transaction id.
    pub id: TxnId,
    status: Mutex<TxnStatus>,
    /// Centralized locks held; the lock manager's release path consumes this
    /// at commit/abort.
    pub(crate) held: Mutex<HeldLocks>,
    /// Last LSN written by this transaction on each log stream it touched
    /// (commit must fence and flush every one of them). Small vector: a
    /// transaction rarely spans more than a few executors.
    touched: Mutex<Vec<(StreamId, Lsn)>>,
    /// Set by whichever thread appends the transaction's first data-change
    /// record (the `Begin` record is written lazily just before it, so
    /// read-only transactions generate zero log traffic).
    begin_logged: AtomicBool,
}

impl TxnState {
    fn new(id: TxnId) -> Self {
        Self {
            id,
            status: Mutex::new(TxnStatus::Active),
            held: Mutex::new(HeldLocks::new()),
            touched: Mutex::new(Vec::new()),
            begin_logged: AtomicBool::new(false),
        }
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        *self.status.lock()
    }

    /// `true` while the transaction can still do work.
    pub fn is_active(&self) -> bool {
        self.status() == TxnStatus::Active
    }

    /// Records a newly written LSN on `stream`.
    pub fn note_lsn(&self, stream: StreamId, lsn: Lsn) {
        let mut touched = self.touched.lock();
        match touched.iter_mut().find(|(s, _)| *s == stream) {
            Some((_, last)) => {
                if lsn > *last {
                    *last = lsn;
                }
            }
            None => touched.push((stream, lsn)),
        }
    }

    /// The streams this transaction wrote, with the last LSN on each.
    pub fn touched_streams(&self) -> Vec<(StreamId, Lsn)> {
        self.touched.lock().clone()
    }

    /// `true` once the transaction has written any data-change record
    /// (commit must then fence and flush its streams).
    pub fn has_writes(&self) -> bool {
        !self.touched.lock().is_empty()
    }

    /// Number of centralized locks currently held (diagnostics / tests).
    pub fn held_lock_count(&self) -> usize {
        self.held.lock().len()
    }

    pub(crate) fn set_status(&self, status: TxnStatus) {
        *self.status.lock() = status;
    }

    /// Flags the transaction as having logged its `Begin` record; returns
    /// `true` exactly once (for the thread that must append it). Under DORA
    /// several executor threads may race to write the first data-change
    /// record, hence the atomic swap.
    pub(crate) fn claim_begin_record(&self) -> bool {
        !self.begin_logged.swap(true, Ordering::AcqRel)
    }

    /// `true` once any log record has been appended for this transaction.
    pub(crate) fn has_logged(&self) -> bool {
        self.begin_logged.load(Ordering::Acquire)
    }
}

/// Allocates transaction ids and tracks active transactions.
pub struct TxnManager {
    next_id: AtomicU64,
    active: Mutex<HashMap<TxnId, Arc<TxnState>>>,
}

impl std::fmt::Debug for TxnManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnManager")
            .field("active", &self.active_count())
            .finish()
    }
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Creates a transaction manager.
    pub fn new() -> Self {
        Self {
            next_id: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
        }
    }

    /// Starts a new transaction.
    pub fn begin(&self) -> Arc<TxnState> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(TxnState::new(id));
        self.active.lock().insert(id, Arc::clone(&state));
        state
    }

    /// Marks a transaction finished and forgets it.
    pub fn finish(&self, txn: &TxnState, status: TxnStatus) {
        txn.set_status(status);
        self.active.lock().remove(&txn.id);
        match status {
            TxnStatus::Committed => incr(CounterKind::TxnCommitted),
            TxnStatus::Aborted => incr(CounterKind::TxnAborted),
            TxnStatus::Active => {}
        }
    }

    /// Number of transactions currently active.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Looks up an active transaction by id.
    pub fn get(&self, id: TxnId) -> Option<Arc<TxnState>> {
        self.active.lock().get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_and_finish_lifecycle() {
        let manager = TxnManager::new();
        let txn = manager.begin();
        assert!(txn.is_active());
        assert_eq!(manager.active_count(), 1);
        assert!(manager.get(txn.id).is_some());
        manager.finish(&txn, TxnStatus::Committed);
        assert_eq!(txn.status(), TxnStatus::Committed);
        assert_eq!(manager.active_count(), 0);
        assert!(manager.get(txn.id).is_none());
    }

    #[test]
    fn txn_ids_are_unique_across_threads() {
        let manager = Arc::new(TxnManager::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let manager = Arc::clone(&manager);
                std::thread::spawn(move || (0..250).map(|_| manager.begin().id).collect::<Vec<_>>())
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn touched_streams_track_per_stream_maxima() {
        let manager = TxnManager::new();
        let txn = manager.begin();
        assert!(!txn.has_writes());
        txn.note_lsn(StreamId(0), Lsn(5));
        txn.note_lsn(StreamId(0), Lsn(3));
        txn.note_lsn(StreamId(2), Lsn(9));
        txn.note_lsn(StreamId(0), Lsn(7));
        assert!(txn.has_writes());
        let mut touched = txn.touched_streams();
        touched.sort_unstable();
        assert_eq!(touched, vec![(StreamId(0), Lsn(7)), (StreamId(2), Lsn(9))]);
    }
}
