//! Rolling fine-grained time categories up into the paper's figure categories.

use std::fmt;

use crate::registry::Snapshot;
use crate::timing::TimeCategory;

/// The stacked-bar breakdown the paper plots.
///
/// * Figures 1(b), 1(c) and 2 use four components: **Work**, **Lock Mgr
///   Cont.**, **Lock Mgr** (other, i.e. un-contended lock-manager work) and
///   **Other Cont.**
/// * Figure 3 zooms into the lock manager itself: **Acquire**, **Acquire
///   Cont.**, **Release**, **Release Cont.** and **Other**.
///
/// Both views are derived from the same [`Snapshot`] delta.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Useful transaction work (including DORA local-lock work, which the
    /// paper counts as part of DORA's — much cheaper — execution).
    pub work_nanos: u64,
    /// Contention (latch spinning and logical lock waiting) inside the
    /// centralized lock manager.
    pub lock_mgr_contention_nanos: u64,
    /// Un-contended lock-manager work (acquire/release/other useful cycles).
    pub lock_mgr_work_nanos: u64,
    /// Contention outside the lock manager (page latches, queue latches) plus
    /// log waits.
    pub other_contention_nanos: u64,
    /// Fine-grained lock-manager components for the Figure 3 view.
    pub lock_mgr_acquire_nanos: u64,
    /// Latch spinning during lock acquisition.
    pub lock_mgr_acquire_cont_nanos: u64,
    /// Un-contended release-path work.
    pub lock_mgr_release_nanos: u64,
    /// Latch spinning during lock release.
    pub lock_mgr_release_cont_nanos: u64,
    /// Other lock-manager work (deadlock detection, bookkeeping) plus logical
    /// lock waits.
    pub lock_mgr_other_nanos: u64,
    /// DORA-specific work (local lock tables, waits on them, engine overhead)
    /// — reported separately so the DORA bars can show the mechanism's cost.
    pub dora_nanos: u64,
}

impl TimeBreakdown {
    /// Builds a breakdown from a snapshot delta.
    ///
    /// [`TimeCategory::CommitWait`] is deliberately *not* rolled up: it is
    /// the client-visible commit stall, which in synchronous-commit mode
    /// overlaps the [`TimeCategory::LogWait`] device time already counted
    /// under other contention. The driver reports it separately as commit
    /// latency.
    pub fn from_snapshot(delta: &Snapshot) -> Self {
        let acquire = delta.nanos(TimeCategory::LockMgrAcquire);
        let acquire_cont = delta.nanos(TimeCategory::LockMgrAcquireContention);
        let release = delta.nanos(TimeCategory::LockMgrRelease);
        let release_cont = delta.nanos(TimeCategory::LockMgrReleaseContention);
        let other = delta.nanos(TimeCategory::LockMgrOther);
        let lock_wait = delta.nanos(TimeCategory::LockWait);
        let dora_local = delta.nanos(TimeCategory::DoraLocal);
        let dora_wait = delta.nanos(TimeCategory::DoraLocalWait);
        let engine = delta.nanos(TimeCategory::EngineOverhead);

        Self {
            work_nanos: delta.nanos(TimeCategory::Work) + dora_local,
            lock_mgr_contention_nanos: acquire_cont + release_cont + lock_wait,
            lock_mgr_work_nanos: acquire + release + other,
            other_contention_nanos: delta.nanos(TimeCategory::OtherContention)
                + delta.nanos(TimeCategory::LogWait)
                + dora_wait,
            lock_mgr_acquire_nanos: acquire,
            lock_mgr_acquire_cont_nanos: acquire_cont,
            lock_mgr_release_nanos: release,
            lock_mgr_release_cont_nanos: release_cont,
            lock_mgr_other_nanos: other + lock_wait,
            dora_nanos: dora_local + dora_wait + engine,
        }
    }

    /// Total accounted time.
    pub fn total_nanos(&self) -> u64 {
        self.work_nanos
            + self.lock_mgr_contention_nanos
            + self.lock_mgr_work_nanos
            + self.other_contention_nanos
    }

    /// Fraction (0..=1) of the accounted time spent on useful work.
    pub fn work_fraction(&self) -> f64 {
        self.fraction(self.work_nanos)
    }

    /// Fraction of accounted time spent on lock-manager contention — the
    /// quantity the paper reports growing beyond 85% for the baseline at
    /// saturation.
    pub fn lock_mgr_contention_fraction(&self) -> f64 {
        self.fraction(self.lock_mgr_contention_nanos)
    }

    /// Fraction of accounted time spent on un-contended lock-manager work.
    pub fn lock_mgr_work_fraction(&self) -> f64 {
        self.fraction(self.lock_mgr_work_nanos)
    }

    /// Fraction of accounted time spent on contention outside the lock
    /// manager.
    pub fn other_contention_fraction(&self) -> f64 {
        self.fraction(self.other_contention_nanos)
    }

    /// Fraction of the *lock-manager* time that is contention (spinning),
    /// the quantity Figure 3 tracks as load increases.
    pub fn lock_mgr_internal_contention_fraction(&self) -> f64 {
        let total = self.lock_mgr_acquire_nanos
            + self.lock_mgr_acquire_cont_nanos
            + self.lock_mgr_release_nanos
            + self.lock_mgr_release_cont_nanos
            + self.lock_mgr_other_nanos;
        if total == 0 {
            return 0.0;
        }
        (self.lock_mgr_acquire_cont_nanos + self.lock_mgr_release_cont_nanos) as f64 / total as f64
    }

    fn fraction(&self, part: u64) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }
}

impl fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work {:>5.1}% | lockmgr-cont {:>5.1}% | lockmgr {:>5.1}% | other-cont {:>5.1}%",
            100.0 * self.work_fraction(),
            100.0 * self.lock_mgr_contention_fraction(),
            100.0 * self.lock_mgr_work_fraction(),
            100.0 * self.other_contention_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_from_registry() {
        use crate::{global, record_time};
        use std::time::Duration;
        let before = global().snapshot();
        record_time(TimeCategory::Work, Duration::from_nanos(600));
        record_time(TimeCategory::LockMgrAcquire, Duration::from_nanos(100));
        record_time(
            TimeCategory::LockMgrAcquireContention,
            Duration::from_nanos(200),
        );
        record_time(TimeCategory::LockMgrRelease, Duration::from_nanos(50));
        record_time(
            TimeCategory::LockMgrReleaseContention,
            Duration::from_nanos(25),
        );
        record_time(TimeCategory::OtherContention, Duration::from_nanos(25));
        let delta = global().snapshot().since(&before);
        let breakdown = TimeBreakdown::from_snapshot(&delta);

        assert!(breakdown.work_nanos >= 600);
        assert!(breakdown.lock_mgr_contention_nanos >= 225);
        assert!(breakdown.lock_mgr_work_nanos >= 150);
        assert!(breakdown.other_contention_nanos >= 25);
        assert!(breakdown.total_nanos() >= 1000);
        let fraction_sum = breakdown.work_fraction()
            + breakdown.lock_mgr_contention_fraction()
            + breakdown.lock_mgr_work_fraction()
            + breakdown.other_contention_fraction();
        assert!((fraction_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let breakdown = TimeBreakdown::default();
        assert_eq!(breakdown.work_fraction(), 0.0);
        assert_eq!(breakdown.lock_mgr_internal_contention_fraction(), 0.0);
        assert_eq!(breakdown.total_nanos(), 0);
    }
}
