//! A small latency recorder used for the response-time experiments
//! (Figure 7) and for per-transaction latency reporting in the harness.

use std::time::Duration;

/// Log-scaled latency histogram with power-of-two microsecond buckets.
///
/// Good enough for the paper's reporting needs (average and tail response
/// times); not a general-purpose HDR histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    total_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

const BUCKETS: usize = 40;

/// Index of the power-of-two bucket holding `value` (0 and 1 share bucket
/// 1) — the single bucketing scheme both histograms use.
fn bucket_of(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize).min(BUCKETS - 1)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            total_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(micros)] += 1;
        self.count += 1;
        self.total_micros += micros as u128;
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Merges another histogram into this one (used to combine per-thread
    /// recorders).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_micros += other.total_micros;
        self.min_micros = self.min_micros.min(other.min_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros((self.total_micros / self.count as u128) as u64)
        }
    }

    /// Smallest recorded latency, or zero when empty.
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_micros)
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// Approximate latency at the given percentile (0..=100), using the upper
    /// edge of the bucket containing that rank.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_micros(1u64 << i.min(62));
            }
        }
        self.max()
    }
}

/// Log-scaled histogram of dimensionless `u64` samples (power-of-two
/// buckets), used for flush-group sizes. Same bucketing scheme as
/// [`LatencyHistogram`], without the `Duration` framing.
#[derive(Debug, Clone)]
pub struct ValueHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total: u128,
    max: u64,
}

impl Default for ValueHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.total += value as u128;
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one (used to combine per-stream
    /// recorders into a whole-log view).
    pub fn merge(&mut self, other: &ValueHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.total.min(u64::MAX as u128) as u64
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples per power-of-two bucket, for text rendering: entry `i` counts
    /// samples whose highest set bit is `i` (i.e. values in `[2^(i-1), 2^i)`,
    /// with values 0 and 1 both in entry 1). Trailing empty buckets are
    /// trimmed.
    pub fn buckets(&self) -> Vec<u64> {
        let last = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |i| i + 1);
        self.buckets[..last].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_min_max() {
        let mut histogram = LatencyHistogram::new();
        histogram.record(Duration::from_micros(100));
        histogram.record(Duration::from_micros(300));
        assert_eq!(histogram.count(), 2);
        assert_eq!(histogram.mean(), Duration::from_micros(200));
        assert_eq!(histogram.min(), Duration::from_micros(100));
        assert_eq!(histogram.max(), Duration::from_micros(300));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let histogram = LatencyHistogram::new();
        assert_eq!(histogram.mean(), Duration::ZERO);
        assert_eq!(histogram.percentile(99.0), Duration::ZERO);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Duration::from_micros(10));
        assert_eq!(a.max(), Duration::from_micros(1000));
    }

    #[test]
    fn value_histogram_tracks_mean_and_max() {
        let mut histogram = ValueHistogram::new();
        assert_eq!(histogram.mean(), 0.0);
        assert!(histogram.buckets().is_empty());
        for value in [1u64, 2, 4, 9] {
            histogram.record(value);
        }
        assert_eq!(histogram.count(), 4);
        assert_eq!(histogram.total(), 16);
        assert_eq!(histogram.mean(), 4.0);
        assert_eq!(histogram.max(), 9);
        // 1 -> bucket 1, 2 -> bucket 2, 4 -> bucket 3, 9 -> bucket 4.
        assert_eq!(histogram.buckets(), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn value_histogram_merge_combines_streams() {
        let mut a = ValueHistogram::new();
        let mut b = ValueHistogram::new();
        a.record(2);
        b.record(8);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 13);
        assert_eq!(a.max(), 8);
    }

    #[test]
    fn percentile_is_monotone() {
        let mut histogram = LatencyHistogram::new();
        for i in 1..=1000u64 {
            histogram.record(Duration::from_micros(i));
        }
        assert!(histogram.percentile(50.0) <= histogram.percentile(99.0));
        assert!(histogram.percentile(99.0) <= histogram.percentile(100.0).max(histogram.max()));
    }
}
