//! Per-executor load monitoring for adaptive repartitioning.
//!
//! The paper's resource manager (Appendix A.2.1) watches the load of every
//! executor and resizes datasets when the assignment becomes
//! disproportional. [`LoadMonitor`] is the measurement half of that loop: it
//! keeps a sliding window of per-executor samples — the cumulative
//! serviced-action count and the instantaneous incoming-queue depth — and
//! derives the two statistics the skew detector consumes: the *windowed
//! load* (actions served during the window, plus the backlog still queued)
//! and the *imbalance ratio* (busiest executor over average).
//!
//! The monitor is deliberately engine-agnostic: it sees plain vectors, so it
//! lives here in `dora-metrics` below every engine crate.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// One observation of a table's executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSample {
    /// Cumulative actions served per executor (monotone across samples).
    pub served: Vec<u64>,
    /// Incoming-queue depth per executor at sampling time.
    pub queue_depth: Vec<usize>,
}

/// Sliding window of [`LoadSample`]s for one table.
#[derive(Debug)]
pub struct LoadMonitor {
    window: usize,
    samples: Mutex<VecDeque<LoadSample>>,
}

impl LoadMonitor {
    /// Creates a monitor keeping the most recent `window` samples
    /// (`window >= 2`, since a load delta needs two observations).
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(2),
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Number of samples the window holds when full.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records one observation. A sample whose executor count differs from
    /// the window's (the table was re-bound) resets the window.
    pub fn record(&self, sample: LoadSample) {
        let mut samples = self.samples.lock();
        if samples
            .back()
            .is_some_and(|last| last.served.len() != sample.served.len())
        {
            samples.clear();
        }
        if samples.len() == self.window {
            samples.pop_front();
        }
        samples.push_back(sample);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// `true` when no samples have been recorded since the last clear.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// `true` once the window holds its full complement of samples.
    pub fn is_full(&self) -> bool {
        self.len() == self.window
    }

    /// Discards every sample (called after a resize so that imbalance is
    /// re-evaluated only on observations taken under the new rule).
    pub fn clear(&self) {
        self.samples.lock().clear();
    }

    /// Per-executor load over the window: the serviced-action delta between
    /// the oldest and newest sample, plus the newest backlog (actions queued
    /// but not yet served still represent routed load). `None` until at
    /// least two samples exist.
    pub fn windowed_load(&self) -> Option<Vec<u64>> {
        let samples = self.samples.lock();
        if samples.len() < 2 {
            return None;
        }
        let oldest = samples.front().expect("len >= 2");
        let newest = samples.back().expect("len >= 2");
        Some(
            newest
                .served
                .iter()
                .zip(&oldest.served)
                .zip(&newest.queue_depth)
                .map(|((new, old), depth)| new.saturating_sub(*old) + *depth as u64)
                .collect(),
        )
    }

    /// Busiest executor's windowed load over the average — the statistic the
    /// skew detector thresholds. `None` until two samples exist or while the
    /// window saw no load at all.
    pub fn imbalance(&self) -> Option<f64> {
        let load = self.windowed_load()?;
        let total: u64 = load.iter().sum();
        if total == 0 || load.is_empty() {
            return None;
        }
        let average = total as f64 / load.len() as f64;
        let busiest = *load.iter().max().expect("non-empty") as f64;
        Some(busiest / average)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(served: &[u64], depth: &[usize]) -> LoadSample {
        LoadSample {
            served: served.to_vec(),
            queue_depth: depth.to_vec(),
        }
    }

    #[test]
    fn windowed_load_is_delta_plus_backlog() {
        let monitor = LoadMonitor::new(3);
        assert!(monitor.windowed_load().is_none());
        monitor.record(sample(&[10, 20], &[0, 0]));
        assert!(monitor.windowed_load().is_none(), "one sample is no window");
        monitor.record(sample(&[110, 25], &[4, 0]));
        assert_eq!(monitor.windowed_load(), Some(vec![104, 5]));
    }

    #[test]
    fn window_slides_and_caps_length() {
        let monitor = LoadMonitor::new(2);
        monitor.record(sample(&[0], &[0]));
        monitor.record(sample(&[10], &[0]));
        monitor.record(sample(&[30], &[0]));
        assert_eq!(monitor.len(), 2);
        // Oldest surviving sample is served=10, so the delta is 20.
        assert_eq!(monitor.windowed_load(), Some(vec![20]));
        assert!(monitor.is_full());
    }

    #[test]
    fn imbalance_is_busiest_over_average() {
        let monitor = LoadMonitor::new(2);
        monitor.record(sample(&[0, 0, 0, 0], &[0, 0, 0, 0]));
        monitor.record(sample(&[90, 10, 0, 0], &[0, 0, 0, 0]));
        // Loads 90/10/0/0, average 25 -> imbalance 3.6.
        let imbalance = monitor.imbalance().unwrap();
        assert!((imbalance - 3.6).abs() < 1e-9, "got {imbalance}");
    }

    #[test]
    fn idle_window_reports_no_imbalance() {
        let monitor = LoadMonitor::new(2);
        monitor.record(sample(&[5, 5], &[0, 0]));
        monitor.record(sample(&[5, 5], &[0, 0]));
        assert_eq!(monitor.imbalance(), None);
    }

    #[test]
    fn executor_count_change_resets_the_window() {
        let monitor = LoadMonitor::new(3);
        monitor.record(sample(&[1, 2], &[0, 0]));
        monitor.record(sample(&[1, 2, 3], &[0, 0, 0]));
        assert_eq!(monitor.len(), 1, "mismatched sample must reset the window");
    }

    #[test]
    fn clear_empties_the_window() {
        let monitor = LoadMonitor::new(2);
        monitor.record(sample(&[1], &[0]));
        monitor.clear();
        assert!(monitor.is_empty());
    }
}
