//! Per-thread metric slots and the global registry aggregating them.
//!
//! Each thread that records metrics gets a [`ThreadSlot`] full of relaxed
//! atomics; the slot is registered with the global [`MetricsRegistry`] on
//! first use and stays alive (via `Arc`) even after the thread exits, so a
//! benchmark can join its worker threads and still read their totals.
//! Aggregation is snapshot-based: readers call [`MetricsRegistry::snapshot`]
//! before and after the measured interval and subtract.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::counters::{CounterKind, ALL_COUNTER_KINDS, COUNTER_KIND_COUNT};
use crate::timing::{TimeCategory, ALL_TIME_CATEGORIES, TIME_CATEGORY_COUNT};

/// Per-thread metric storage. All fields are written by the owning thread
/// with relaxed atomics and read by aggregators.
#[derive(Debug)]
pub struct ThreadSlot {
    time_nanos: [AtomicU64; TIME_CATEGORY_COUNT],
    counters: [AtomicU64; COUNTER_KIND_COUNT],
}

impl ThreadSlot {
    fn new() -> Self {
        Self {
            time_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds `nanos` to the given time category.
    pub fn add_time(&self, category: TimeCategory, nanos: u64) {
        self.time_nanos[category.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Adds `delta` to the given counter.
    pub fn incr(&self, kind: CounterKind, delta: u64) {
        self.counters[kind.index()].fetch_add(delta, Ordering::Relaxed);
    }
}

thread_local! {
    static THREAD_SLOT: RefCell<Option<Arc<ThreadSlot>>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling thread's slot, creating and registering it on
/// first use.
pub fn with_thread_slot<R>(f: impl FnOnce(&ThreadSlot) -> R) -> R {
    THREAD_SLOT.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let new_slot = Arc::new(ThreadSlot::new());
            global().register(Arc::clone(&new_slot));
            *slot = Some(new_slot);
        }
        f(slot.as_ref().expect("slot just initialized"))
    })
}

/// Global registry of all thread slots ever created in the process.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<Vec<Arc<ThreadSlot>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry. Most callers use [`global`] instead.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, slot: Arc<ThreadSlot>) {
        self.slots.lock().push(slot);
    }

    /// Sums every thread's totals into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock();
        let mut snap = Snapshot::default();
        for slot in slots.iter() {
            for category in ALL_TIME_CATEGORIES {
                snap.time_nanos[category.index()] +=
                    slot.time_nanos[category.index()].load(Ordering::Relaxed);
            }
            for kind in ALL_COUNTER_KINDS {
                snap.counters[kind.index()] += slot.counters[kind.index()].load(Ordering::Relaxed);
            }
        }
        snap
    }

    /// Number of threads that have recorded at least one metric.
    pub fn thread_count(&self) -> usize {
        self.slots.lock().len()
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Snapshot of the *calling thread's* metrics only.
///
/// Useful for tests that need exact counts without interference from other
/// threads running in the same process (the global registry aggregates every
/// thread that ever recorded a metric).
pub fn current_thread_snapshot() -> Snapshot {
    with_thread_slot(|slot| {
        let mut snap = Snapshot::default();
        for category in ALL_TIME_CATEGORIES {
            snap.time_nanos[category.index()] =
                slot.time_nanos[category.index()].load(Ordering::Relaxed);
        }
        for kind in ALL_COUNTER_KINDS {
            snap.counters[kind.index()] = slot.counters[kind.index()].load(Ordering::Relaxed);
        }
        snap
    })
}

/// A point-in-time aggregation of every thread's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    time_nanos: [u64; TIME_CATEGORY_COUNT],
    counters: [u64; COUNTER_KIND_COUNT],
}

impl Default for Snapshot {
    fn default() -> Self {
        Self {
            time_nanos: [0; TIME_CATEGORY_COUNT],
            counters: [0; COUNTER_KIND_COUNT],
        }
    }
}

impl Snapshot {
    /// Nanoseconds accumulated in `category`.
    pub fn nanos(&self, category: TimeCategory) -> u64 {
        self.time_nanos[category.index()]
    }

    /// Value of `kind`.
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.counters[kind.index()]
    }

    /// Component-wise difference `self - earlier` (saturating, so a snapshot
    /// taken on a registry that lost no data never underflows).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut delta = Snapshot::default();
        for i in 0..TIME_CATEGORY_COUNT {
            delta.time_nanos[i] = self.time_nanos[i].saturating_sub(earlier.time_nanos[i]);
        }
        for i in 0..COUNTER_KIND_COUNT {
            delta.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        delta
    }

    /// Total nanoseconds across every category (the denominator for the
    /// paper's percentage breakdowns).
    pub fn total_nanos(&self) -> u64 {
        self.time_nanos.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_since_subtracts() {
        let mut a = Snapshot::default();
        let mut b = Snapshot::default();
        a.time_nanos[TimeCategory::Work.index()] = 100;
        b.time_nanos[TimeCategory::Work.index()] = 350;
        b.counters[CounterKind::TxnCommitted.index()] = 4;
        let delta = b.since(&a);
        assert_eq!(delta.nanos(TimeCategory::Work), 250);
        assert_eq!(delta.counter(CounterKind::TxnCommitted), 4);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let mut a = Snapshot::default();
        a.time_nanos[TimeCategory::Work.index()] = 10;
        let b = Snapshot::default();
        assert_eq!(b.since(&a).nanos(TimeCategory::Work), 0);
    }

    #[test]
    fn registry_registers_each_thread_once() {
        let before = global().thread_count();
        with_thread_slot(|_| {});
        with_thread_slot(|_| {});
        let after = global().thread_count();
        // At most one new registration for this thread, never two.
        assert!(after <= before + 1);
    }

    #[test]
    fn total_nanos_sums_all_categories() {
        let mut snap = Snapshot::default();
        snap.time_nanos[TimeCategory::Work.index()] = 5;
        snap.time_nanos[TimeCategory::LockWait.index()] = 7;
        assert_eq!(snap.total_nanos(), 12);
    }
}
