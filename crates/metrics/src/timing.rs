//! Time categories and timing helpers.

use std::time::{Duration, Instant};

use crate::registry;

/// Fine-grained categories of where a thread's time goes.
///
/// These are deliberately more fine-grained than the paper's stacked bars so
/// that both Figure 1/2 (whole-system breakdown) and Figure 3 (breakdown
/// *inside* the lock manager) can be derived from the same counters; see
/// [`crate::TimeBreakdown`] for the roll-ups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum TimeCategory {
    /// Useful transaction work outside of any synchronization: index probes,
    /// record reads and writes, workload logic.
    Work = 0,
    /// Useful work inside the lock manager's acquire path: hash probe,
    /// request-list append, hierarchy checks.
    LockMgrAcquire = 1,
    /// Time spent spinning on lock-head or bucket latches while acquiring a
    /// logical lock. This is the paper's "Lock Mgr Cont." component.
    LockMgrAcquireContention = 2,
    /// Useful work inside the lock manager's release path.
    LockMgrRelease = 3,
    /// Latch spinning in the release path.
    LockMgrReleaseContention = 4,
    /// Other lock-manager work: deadlock detection, upgrades, bookkeeping.
    LockMgrOther = 5,
    /// Time blocked waiting for an incompatible logical lock to be released.
    LockWait = 6,
    /// Latch contention outside the lock manager: page latches, buffer-pool
    /// bucket latches, executor queue latches.
    OtherContention = 7,
    /// Work performed in DORA's thread-local lock tables (acquire, release,
    /// conflict checks). The paper argues this is far cheaper than the
    /// centralized lock manager; keeping it separate lets us verify that.
    DoraLocal = 8,
    /// Time blocked on DORA local locks (waiting for a conflicting action of
    /// another in-flight transaction on the same executor).
    DoraLocalWait = 9,
    /// Waiting for the log flush at commit (the device-latency share:
    /// driving the flush, or spinning/parking while another thread does).
    LogWait = 10,
    /// Everything else attributable to the transaction-processing engine
    /// itself: queueing, dispatching, RVP bookkeeping.
    EngineOverhead = 11,
    /// Client-visible commit wait: from precommit (commit record appended)
    /// until the commit is durable and the transaction finished. Kept
    /// separate from [`LogWait`] so the driver can report commit latency
    /// separately from execute latency.
    ///
    /// [`LogWait`]: TimeCategory::LogWait
    CommitWait = 12,
}

/// Number of [`TimeCategory`] variants; sizes the per-thread arrays.
pub const TIME_CATEGORY_COUNT: usize = 13;

/// All categories, in `repr` order. Useful for iteration and reporting.
pub const ALL_TIME_CATEGORIES: [TimeCategory; TIME_CATEGORY_COUNT] = [
    TimeCategory::Work,
    TimeCategory::LockMgrAcquire,
    TimeCategory::LockMgrAcquireContention,
    TimeCategory::LockMgrRelease,
    TimeCategory::LockMgrReleaseContention,
    TimeCategory::LockMgrOther,
    TimeCategory::LockWait,
    TimeCategory::OtherContention,
    TimeCategory::DoraLocal,
    TimeCategory::DoraLocalWait,
    TimeCategory::LogWait,
    TimeCategory::EngineOverhead,
    TimeCategory::CommitWait,
];

impl TimeCategory {
    /// Stable index into the per-thread arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used by the text reports.
    pub fn label(self) -> &'static str {
        match self {
            TimeCategory::Work => "work",
            TimeCategory::LockMgrAcquire => "lockmgr-acquire",
            TimeCategory::LockMgrAcquireContention => "lockmgr-acquire-cont",
            TimeCategory::LockMgrRelease => "lockmgr-release",
            TimeCategory::LockMgrReleaseContention => "lockmgr-release-cont",
            TimeCategory::LockMgrOther => "lockmgr-other",
            TimeCategory::LockWait => "lock-wait",
            TimeCategory::OtherContention => "other-contention",
            TimeCategory::DoraLocal => "dora-local",
            TimeCategory::DoraLocalWait => "dora-local-wait",
            TimeCategory::LogWait => "log-wait",
            TimeCategory::EngineOverhead => "engine-overhead",
            TimeCategory::CommitWait => "commit-wait",
        }
    }
}

/// Record `duration` against `category` on the calling thread.
pub fn record_time(category: TimeCategory, duration: Duration) {
    registry::with_thread_slot(|slot| slot.add_time(category, duration.as_nanos() as u64));
}

/// Time the execution of `f` and charge it to `category`.
pub fn time_section<R>(category: TimeCategory, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let result = f();
    record_time(category, start.elapsed());
    result
}

/// RAII timer: charges the elapsed time to its category when dropped.
///
/// The category can be switched mid-flight with [`TimerGuard::switch`], which
/// is convenient in the lock manager where an acquisition starts as useful
/// work and becomes contention the moment it has to spin.
#[derive(Debug)]
pub struct TimerGuard {
    category: TimeCategory,
    start: Instant,
    stopped: bool,
}

impl TimerGuard {
    /// Starts timing against `category`.
    pub fn new(category: TimeCategory) -> Self {
        Self {
            category,
            start: Instant::now(),
            stopped: false,
        }
    }

    /// Charges the time accumulated so far to the current category and
    /// restarts the clock against `next`.
    pub fn switch(&mut self, next: TimeCategory) {
        let now = Instant::now();
        record_time(self.category, now.duration_since(self.start));
        self.category = next;
        self.start = now;
    }

    /// Stops the timer early, charging the elapsed time now.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.stopped {
            record_time(self.category, self.start.elapsed());
            self.stopped = true;
        }
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global;

    #[test]
    fn category_indices_match_array_order() {
        for (i, category) in ALL_TIME_CATEGORIES.iter().enumerate() {
            assert_eq!(category.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ALL_TIME_CATEGORIES.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TIME_CATEGORY_COUNT);
    }

    #[test]
    fn timer_guard_switch_accounts_both_categories() {
        let before = global().snapshot();
        let mut guard = TimerGuard::new(TimeCategory::LockMgrAcquire);
        std::thread::sleep(Duration::from_millis(2));
        guard.switch(TimeCategory::LockMgrAcquireContention);
        std::thread::sleep(Duration::from_millis(2));
        drop(guard);
        let delta = global().snapshot().since(&before);
        assert!(delta.nanos(TimeCategory::LockMgrAcquire) >= 1_000_000);
        assert!(delta.nanos(TimeCategory::LockMgrAcquireContention) >= 1_000_000);
    }

    #[test]
    fn time_section_returns_value() {
        let value = time_section(TimeCategory::Work, || 7 * 6);
        assert_eq!(value, 42);
    }
}
