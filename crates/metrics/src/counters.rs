//! Event counters.

/// Kinds of counted events.
///
/// The first three mirror Figure 5 of the paper, which plots locks acquired
/// per 100 transactions split into *row-level* centralized locks,
/// *higher-level* centralized locks (intention locks on tables, pages and the
/// database) and *DORA thread-local* locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterKind {
    /// Row-level (record) locks acquired through the centralized lock manager.
    RowLevelLock = 0,
    /// Centralized locks that are not row-level: database, table and page
    /// intention locks.
    HigherLevelLock = 1,
    /// Locks acquired in DORA's thread-local lock tables.
    DoraLocalLock = 2,
    /// Transactions committed.
    TxnCommitted = 3,
    /// Transactions aborted (for any reason).
    TxnAborted = 4,
    /// Transactions aborted specifically as deadlock victims.
    DeadlockVictim = 5,
    /// DORA actions executed.
    ActionsExecuted = 6,
    /// Latch acquisitions that succeeded without spinning.
    LatchFastPath = 7,
    /// Latch acquisitions that had to spin at least once.
    LatchContended = 8,
    /// Logical lock requests that had to wait for an incompatible holder.
    LockWaits = 9,
    /// Log records appended.
    LogRecords = 10,
    /// Log flushes performed.
    LogFlushes = 11,
    /// Buffer-pool page hits.
    BufferHits = 12,
    /// Buffer-pool page misses (page had to be materialized / "read").
    BufferMisses = 13,
    /// Actions from already-aborted transactions whose execution was wasted
    /// (relevant to the Figure 11 experiment).
    WastedActions = 14,
    /// Messages exchanged between DORA threads (dispatch, RVP hand-offs and
    /// commit notifications) — the "additional inter-core communication" the
    /// appendix mentions.
    DoraMessages = 15,
    /// Routing-rule resizes completed (the drain/swap protocol of
    /// Appendix A.2.1), whether triggered manually or by the adaptive
    /// repartitioning controller.
    RoutingResizes = 16,
    /// Producer-side executor-inbox pushes: one per lock acquisition on a
    /// destination queue (a push may carry many messages when batching is
    /// on). `DoraMessages / DispatchBatches` is the average producer batch
    /// size.
    DispatchBatches = 17,
    /// Consumer-side executor-inbox drains: one per lock acquisition that
    /// handed the executor work (the whole backlog when batching is on, a
    /// single message otherwise). `DoraMessages / InboxDrains` is the
    /// average drain batch size.
    InboxDrains = 18,
    /// Transactions that exhausted a conventional engine's deadlock-retry
    /// budget (the `GaveUp` outcome). Kept separate from [`TxnAborted`]
    /// (workload aborts) so retry exhaustion is visible in reports.
    ///
    /// [`TxnAborted`]: CounterKind::TxnAborted
    TxnGaveUp = 19,
    /// Flush groups hardened by the log-flusher daemon: one per simulated
    /// device write that made at least one commit record durable.
    /// `LogRecords`-independent; divide the commit count by this for the
    /// mean flush-group size (the log manager also keeps a histogram).
    GroupCommits = 20,
    /// Transactions whose locks (centralized and DORA thread-local) were
    /// released at precommit, before their commit record was durable —
    /// early lock release in action.
    ElrEarlyReleases = 21,
    /// Fuzzy checkpoints taken by the log manager (each folds the committed
    /// history into a net-effect snapshot and advances the per-stream
    /// low-water marks that bound recovery replay).
    CheckpointsTaken = 22,
    /// Commit-fence records appended. With a partitioned log a transaction
    /// writes one fence to *every* stream it touched, so this exceeds
    /// `TxnCommitted` exactly by the cross-stream fan-out.
    CommitFences = 23,
    /// Transactions rejected outright by the admission controller (load
    /// shedding at saturation): never executed, reported to the client as
    /// shed.
    TxnShed = 24,
    /// Transactions the admission controller parked in its bounded queue
    /// before granting a slot (each queued admission is counted once, when
    /// it first queues).
    TxnQueued = 25,
    /// Client sessions opened against a serving front-end.
    SessionsOpened = 26,
    /// Faults fired by the deterministic injector (all sites: device write
    /// errors, latency spikes, flusher stalls, executor panics).
    FaultsInjected = 27,
    /// Log-device writes retried by a flusher after a transient failure
    /// (the self-healing capped-backoff path).
    FlushRetries = 28,
    /// Commits whose durability was lost for good: their log stream's
    /// device writes failed past the retry budget. With early lock release
    /// these are ghost commits — applied in memory, never durable.
    DurabilityLost = 29,
    /// Executor-thread panics caught by supervision: the owning transaction
    /// was aborted and quarantined while the executor kept draining.
    ExecutorPanicsRecovered = 30,
    /// Submissions that exceeded their admission deadline while queued.
    TxnTimedOut = 31,
    /// Aborted submissions re-run by the serving front-end's retry policy.
    TxnRetried = 32,
    /// Durability-callback panics swallowed (and survived) by a log flusher.
    CallbackPanics = 33,
    /// Stalled-flusher nudges issued by the log watchdog after it observed a
    /// stream's flush horizon stop advancing with work pending.
    WatchdogNudges = 34,
    /// Row versions installed in the multi-version store (one per committed
    /// write, plus the copy-on-write base version seeded the first time a
    /// bulk-loaded row is touched transactionally).
    VersionsCreated = 35,
    /// Row versions pruned by the version-chain garbage collector once no
    /// live snapshot could still read them.
    VersionsReclaimed = 36,
    /// Snapshot handles taken (each pins a commit-ticket horizon until it is
    /// dropped, bounding what the version GC may reclaim).
    SnapshotsTaken = 37,
    /// Reads served from a snapshot: point probes and scanned rows resolved
    /// against a pinned horizon with no lock-manager or local-lock-table
    /// traffic at all.
    SnapshotReads = 38,
    /// Local-lock-table probes skipped entirely because the bind-time
    /// conflict matrix proved the step's template conflicts with nothing in
    /// the workload (static conflict analysis / probe elision).
    LockProbesElided = 39,
    /// Actions dispatched as *undeclared* secondary fallbacks: their step
    /// carried no routing key the bound routing fields could cover, so they
    /// ran unrouted on the submitting thread. Declared-secondary steps are
    /// intentional and not counted.
    SecondaryFallbacks = 40,
}

/// Number of [`CounterKind`] variants; sizes the per-thread arrays.
pub const COUNTER_KIND_COUNT: usize = 41;

/// All counters, in `repr` order.
pub const ALL_COUNTER_KINDS: [CounterKind; COUNTER_KIND_COUNT] = [
    CounterKind::RowLevelLock,
    CounterKind::HigherLevelLock,
    CounterKind::DoraLocalLock,
    CounterKind::TxnCommitted,
    CounterKind::TxnAborted,
    CounterKind::DeadlockVictim,
    CounterKind::ActionsExecuted,
    CounterKind::LatchFastPath,
    CounterKind::LatchContended,
    CounterKind::LockWaits,
    CounterKind::LogRecords,
    CounterKind::LogFlushes,
    CounterKind::BufferHits,
    CounterKind::BufferMisses,
    CounterKind::WastedActions,
    CounterKind::DoraMessages,
    CounterKind::RoutingResizes,
    CounterKind::DispatchBatches,
    CounterKind::InboxDrains,
    CounterKind::TxnGaveUp,
    CounterKind::GroupCommits,
    CounterKind::ElrEarlyReleases,
    CounterKind::CheckpointsTaken,
    CounterKind::CommitFences,
    CounterKind::TxnShed,
    CounterKind::TxnQueued,
    CounterKind::SessionsOpened,
    CounterKind::FaultsInjected,
    CounterKind::FlushRetries,
    CounterKind::DurabilityLost,
    CounterKind::ExecutorPanicsRecovered,
    CounterKind::TxnTimedOut,
    CounterKind::TxnRetried,
    CounterKind::CallbackPanics,
    CounterKind::WatchdogNudges,
    CounterKind::VersionsCreated,
    CounterKind::VersionsReclaimed,
    CounterKind::SnapshotsTaken,
    CounterKind::SnapshotReads,
    CounterKind::LockProbesElided,
    CounterKind::SecondaryFallbacks,
];

impl CounterKind {
    /// Stable index into the per-thread arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label used by the text reports.
    pub fn label(self) -> &'static str {
        match self {
            CounterKind::RowLevelLock => "row-level-locks",
            CounterKind::HigherLevelLock => "higher-level-locks",
            CounterKind::DoraLocalLock => "dora-local-locks",
            CounterKind::TxnCommitted => "txn-committed",
            CounterKind::TxnAborted => "txn-aborted",
            CounterKind::DeadlockVictim => "deadlock-victims",
            CounterKind::ActionsExecuted => "actions-executed",
            CounterKind::LatchFastPath => "latch-fast-path",
            CounterKind::LatchContended => "latch-contended",
            CounterKind::LockWaits => "lock-waits",
            CounterKind::LogRecords => "log-records",
            CounterKind::LogFlushes => "log-flushes",
            CounterKind::BufferHits => "buffer-hits",
            CounterKind::BufferMisses => "buffer-misses",
            CounterKind::WastedActions => "wasted-actions",
            CounterKind::DoraMessages => "dora-messages",
            CounterKind::RoutingResizes => "routing-resizes",
            CounterKind::DispatchBatches => "dispatch-batches",
            CounterKind::InboxDrains => "inbox-drains",
            CounterKind::TxnGaveUp => "txn-gave-up",
            CounterKind::GroupCommits => "group-commits",
            CounterKind::ElrEarlyReleases => "elr-early-releases",
            CounterKind::CheckpointsTaken => "checkpoints-taken",
            CounterKind::CommitFences => "commit-fences",
            CounterKind::TxnShed => "txn-shed",
            CounterKind::TxnQueued => "txn-queued",
            CounterKind::SessionsOpened => "sessions-opened",
            CounterKind::FaultsInjected => "faults-injected",
            CounterKind::FlushRetries => "flush-retries",
            CounterKind::DurabilityLost => "durability-lost",
            CounterKind::ExecutorPanicsRecovered => "executor-panics-recovered",
            CounterKind::TxnTimedOut => "txn-timed-out",
            CounterKind::TxnRetried => "txn-retried",
            CounterKind::CallbackPanics => "callback-panics",
            CounterKind::WatchdogNudges => "watchdog-nudges",
            CounterKind::VersionsCreated => "versions-created",
            CounterKind::VersionsReclaimed => "versions-reclaimed",
            CounterKind::SnapshotsTaken => "snapshots-taken",
            CounterKind::SnapshotReads => "snapshot-reads",
            CounterKind::LockProbesElided => "lock-probes-elided",
            CounterKind::SecondaryFallbacks => "secondary-fallbacks",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_match_array_order() {
        for (i, kind) in ALL_COUNTER_KINDS.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = ALL_COUNTER_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), COUNTER_KIND_COUNT);
    }
}
