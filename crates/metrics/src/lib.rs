//! Instrumentation for reproducing the paper's measurements.
//!
//! The original evaluation used the Sun Studio profiler to attribute
//! execution time to the lock manager, to latch spinning, and to useful work
//! (Figures 1, 2 and 3), and instrumented Shore-MT to count acquired locks by
//! class (Figure 5). This crate provides the equivalent machinery:
//!
//! * [`TimeCategory`] / [`record_time`] / [`TimerGuard`] — every interesting
//!   region of code (latch spins, lock-manager work, logical lock waits,
//!   DORA local-lock operations, useful work) is timed into a thread-local
//!   slot.
//! * [`CounterKind`] / [`incr`] — event counters, most importantly the three
//!   lock classes the paper plots: row-level centralized locks, higher-level
//!   centralized locks and DORA thread-local locks.
//! * [`MetricsRegistry`] — aggregates the per-thread slots into a
//!   [`Snapshot`]; the benchmark harness takes snapshots before and after a
//!   measured interval and works with the difference.
//! * [`TimeBreakdown`] — rolls the fine-grained categories up into the
//!   stacked-bar categories the paper's figures use.

pub mod breakdown;
pub mod counters;
pub mod histogram;
pub mod load;
pub mod registry;
pub mod timing;

pub use breakdown::TimeBreakdown;
pub use counters::CounterKind;
pub use histogram::{LatencyHistogram, ValueHistogram};
pub use load::{LoadMonitor, LoadSample};
pub use registry::{current_thread_snapshot, global, MetricsRegistry, Snapshot};
pub use timing::{record_time, time_section, TimeCategory, TimerGuard};

/// Increment a counter on the calling thread's slot.
pub fn incr(kind: CounterKind) {
    registry::with_thread_slot(|slot| slot.incr(kind, 1));
}

/// Add `delta` to a counter on the calling thread's slot.
pub fn incr_by(kind: CounterKind, delta: u64) {
    registry::with_thread_slot(|slot| slot.incr(kind, delta));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_counters_and_time_flow_into_snapshots() {
        let before = global().snapshot();
        incr(CounterKind::RowLevelLock);
        incr_by(CounterKind::DoraLocalLock, 5);
        record_time(TimeCategory::Work, std::time::Duration::from_micros(50));
        let after = global().snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.counter(CounterKind::RowLevelLock), 1);
        assert_eq!(delta.counter(CounterKind::DoraLocalLock), 5);
        assert!(delta.nanos(TimeCategory::Work) >= 50_000);
    }

    #[test]
    fn many_threads_aggregate() {
        let before = global().snapshot();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        incr(CounterKind::HigherLevelLock);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let delta = global().snapshot().since(&before);
        assert_eq!(delta.counter(CounterKind::HigherLevelLock), 800);
    }
}
