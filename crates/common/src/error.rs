//! Error types shared by every layer of the system.

use std::fmt;

use crate::ids::{Rid, TableId, TxnId};
use crate::value::ValueType;

/// Result alias used across the workspace.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by the storage manager, the execution engines and the
/// workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// A logical lock could not be granted because granting it would create a
    /// deadlock; the transaction holding `victim` must abort.
    Deadlock { victim: TxnId },
    /// The transaction was aborted (explicitly, by deadlock resolution, or by
    /// workload logic such as TM1's invalid-input aborts).
    TxnAborted { txn: TxnId, reason: String },
    /// A record that was expected to exist was not found.
    NotFound { table: TableId, detail: String },
    /// A uniqueness constraint (primary key) was violated.
    DuplicateKey { table: TableId, detail: String },
    /// The requested table or index does not exist in the catalog.
    NoSuchObject(String),
    /// A value had the wrong type for the requested operation.
    TypeMismatch {
        expected: ValueType,
        found: ValueType,
    },
    /// A page, slot or log record failed validation.
    Corruption(String),
    /// The referenced RID does not point at a live record.
    InvalidRid { table: TableId, rid: Rid },
    /// A page had no room for the record and the heap could not extend.
    PageFull { table: TableId },
    /// Misuse of the API (e.g. operating on a finished transaction).
    InvalidOperation(String),
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// The transaction's commit record can never become durable: its log
    /// stream's device writes failed past the retry budget. With early lock
    /// release the transaction's effects may already be applied in memory
    /// (a "ghost commit"), so this is **not** retryable — re-running it
    /// could apply it twice.
    DurabilityLost,
}

impl DbError {
    /// `true` for errors that the engines treat as "abort and retry the
    /// transaction" rather than as bugs: deadlocks and explicit aborts.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DbError::Deadlock { .. } | DbError::TxnAborted { .. })
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Deadlock { victim } => write!(f, "deadlock detected; victim {victim}"),
            DbError::TxnAborted { txn, reason } => write!(f, "{txn} aborted: {reason}"),
            DbError::NotFound { table, detail } => write!(f, "not found in {table}: {detail}"),
            DbError::DuplicateKey { table, detail } => {
                write!(f, "duplicate key in {table}: {detail}")
            }
            DbError::NoSuchObject(name) => write!(f, "no such table or index: {name}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected:?}, found {found:?}")
            }
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::InvalidRid { table, rid } => write!(f, "invalid {rid} in {table}"),
            DbError::PageFull { table } => write!(f, "no space left in heap of {table}"),
            DbError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            DbError::ShuttingDown => write!(f, "engine is shutting down"),
            DbError::DurabilityLost => {
                write!(f, "durability lost: log stream failed past retry budget")
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(DbError::Deadlock { victim: TxnId(1) }.is_retryable());
        assert!(DbError::TxnAborted {
            txn: TxnId(2),
            reason: "bad input".into()
        }
        .is_retryable());
        assert!(!DbError::Corruption("x".into()).is_retryable());
        assert!(!DbError::ShuttingDown.is_retryable());
        assert!(
            !DbError::DurabilityLost.is_retryable(),
            "a ghost commit must never be re-run"
        );
    }

    #[test]
    fn display_is_informative() {
        let err = DbError::NotFound {
            table: TableId(2),
            detail: "key (1)".into(),
        };
        let text = err.to_string();
        assert!(text.contains("table#2"));
        assert!(text.contains("key (1)"));
    }
}
