//! Transaction outcome vocabulary shared by every execution engine.
//!
//! These used to live in the engine crate, but they are pure vocabulary: the
//! workloads produce them, the load driver counts them, and every execution
//! architecture — conventional, DORA, or anything a future PR adds — reports
//! them. Keeping them here lets the workload crate stay independent of any
//! particular engine.

/// Outcome of one transaction attempt as seen by the load driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnOutcome {
    /// Committed.
    Committed,
    /// Aborted for a workload reason (invalid input) or any error.
    Aborted,
    /// A conventional engine exhausted its deadlock-retry budget. Kept
    /// distinct from [`Aborted`](Self::Aborted): a workload abort is expected
    /// input behaviour, retry exhaustion is a contention signal.
    GaveUp,
}

impl TxnOutcome {
    /// `true` for any non-committed outcome.
    pub fn is_failure(self) -> bool {
        !matches!(self, TxnOutcome::Committed)
    }
}

/// Outcome of running one transaction body to completion on a conventional
/// (thread-to-transaction) engine, which retries deadlock victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineOutcome {
    /// The transaction committed.
    Committed,
    /// The transaction aborted for a workload reason (e.g. TM1 invalid
    /// input) and was *not* retried.
    Aborted,
    /// The transaction hit the retry limit (repeated deadlocks).
    GaveUp,
}

impl From<BaselineOutcome> for TxnOutcome {
    fn from(outcome: BaselineOutcome) -> Self {
        match outcome {
            BaselineOutcome::Committed => TxnOutcome::Committed,
            BaselineOutcome::Aborted => TxnOutcome::Aborted,
            BaselineOutcome::GaveUp => TxnOutcome::GaveUp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_outcomes_map_one_to_one() {
        assert_eq!(
            TxnOutcome::from(BaselineOutcome::Committed),
            TxnOutcome::Committed
        );
        assert_eq!(
            TxnOutcome::from(BaselineOutcome::Aborted),
            TxnOutcome::Aborted
        );
        assert_eq!(
            TxnOutcome::from(BaselineOutcome::GaveUp),
            TxnOutcome::GaveUp
        );
        assert!(!TxnOutcome::Committed.is_failure());
        assert!(TxnOutcome::Aborted.is_failure());
        assert!(TxnOutcome::GaveUp.is_failure());
    }
}
