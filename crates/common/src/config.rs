//! Run-time configuration shared by the baseline and DORA engines.

use std::time::Duration;

use crate::fault::FaultConfig;

/// Which execution architecture a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Conventional thread-to-transaction execution: each worker thread runs
    /// whole transactions against the storage manager with full centralized
    /// concurrency control. This is the paper's "Baseline" (Shore-MT).
    Baseline,
    /// Data-oriented thread-to-data execution (the paper's contribution).
    Dora,
}

impl EngineKind {
    /// Every registered execution architecture, in the order the paper's
    /// figures list them. Sweeps, equivalence tests and examples iterate
    /// this instead of hard-coding engines, so a new architecture only has
    /// to be appended here (and given a factory arm in `dora-engine`).
    pub const ALL: [EngineKind; 2] = [EngineKind::Baseline, EngineKind::Dora];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "Baseline",
            EngineKind::Dora => "DORA",
        }
    }
}

/// Concurrency-control mode for an individual storage operation.
///
/// The paper (Section 4.3) describes the prototype's only Shore-MT
/// modifications: an extra flag telling the storage manager to skip
/// concurrency control for reads/updates executed by DORA executors, and a
/// flag to acquire only the row-level lock (not the whole hierarchy) for
/// inserts and deletes. `CcMode` models exactly those three behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcMode {
    /// Acquire the full hierarchy of intention locks plus the record lock —
    /// what the conventional engine does for every access.
    Full,
    /// Acquire only the row-level lock, skipping the intention-lock
    /// hierarchy — what DORA does for record inserts and deletes
    /// (Section 4.2.1).
    RowOnly,
    /// Skip the centralized lock manager entirely — what DORA does for
    /// probes and updates, because its executor serializes them via the
    /// thread-local lock table.
    None,
}

impl CcMode {
    /// `true` if this mode touches the centralized lock manager at all.
    pub fn uses_lock_manager(self) -> bool {
        !matches!(self, CcMode::None)
    }
}

/// Global knobs for a run. Defaults are sized so that unit and integration
/// tests finish quickly; the benchmark harness overrides them.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of worker threads the baseline engine uses / number of client
    /// threads generating load.
    pub worker_threads: usize,
    /// Number of hardware contexts the "machine" is assumed to have; offered
    /// CPU load is reported relative to this (the paper's x-axes).
    pub hardware_contexts: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// Page size in bytes for the slotted heap pages.
    pub page_size: usize,
    /// Simulated latency of a log flush, in microseconds. The paper stores
    /// the log on an in-memory file system; a small non-zero value models the
    /// memcpy + fsync-to-tmpfs cost and creates the group-commit pressure the
    /// paper mentions for TPC-C NewOrder/Payment.
    pub log_flush_micros: u64,
    /// Upper bound on spin iterations before a latch acquisition starts
    /// yielding the CPU (preemption-resistant MCS-style behaviour).
    pub latch_spin_limit: u32,
    /// Whether the lock manager runs deadlock detection on conflict.
    pub deadlock_detection: bool,
    /// Maximum number of retries for transactions aborted by deadlocks.
    pub max_retries: usize,
    /// Commit-path durability knobs: group commit and early lock release.
    pub durability: DurabilityConfig,
    /// Deterministic fault-injection knobs (inert by default): transient log
    /// device errors, latency spikes, flusher stalls and executor panics.
    pub faults: FaultConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            worker_threads: 4,
            hardware_contexts: num_cpus(),
            buffer_pool_pages: 4096,
            page_size: 8192,
            log_flush_micros: 0,
            latch_spin_limit: 64,
            deadlock_detection: true,
            max_retries: 10,
            durability: DurabilityConfig::default(),
            faults: FaultConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Configuration for quick unit tests: tiny buffer pool, no log latency.
    pub fn for_tests() -> Self {
        Self {
            worker_threads: 2,
            buffer_pool_pages: 256,
            ..Self::default()
        }
    }

    /// Offered CPU load (percent) when `threads` client threads run on this
    /// configuration, following the paper's definition (measured utilization
    /// plus time spent runnable): with a CPU-bound workload every client
    /// thread contributes one context worth of demand.
    pub fn offered_load_percent(&self, threads: usize) -> f64 {
        100.0 * threads as f64 / self.hardware_contexts as f64
    }

    /// Number of client threads that produces approximately `percent` offered
    /// CPU load (at least one).
    pub fn threads_for_load(&self, percent: f64) -> usize {
        ((percent / 100.0) * self.hardware_contexts as f64)
            .round()
            .max(1.0) as usize
    }
}

/// Commit-path durability knobs: asynchronous group commit and early lock
/// release (ELR).
///
/// The paper notes (Section 5.4) that once lock-manager contention is gone
/// the log manager becomes the next bottleneck for write-heavy workloads.
/// The standard fixes from the same research line are modelled here:
///
/// * **Group commit** — a dedicated log-flusher daemon batches the commit
///   records of concurrently committing transactions into one simulated
///   device write. Committers park on an LSN-keyed ticket queue (or hand the
///   flusher a completion callback) instead of driving the flush themselves,
///   so log-device latency is paid once per *group*, not once per
///   transaction.
/// * **Early lock release** — a transaction's locks (centralized and DORA
///   thread-local) are released as soon as its commit record is *in the log
///   buffer*, before it is durable. Dependent transactions draw strictly
///   larger commit sequence numbers (the sequence is taken while the
///   writer's locks are still held), and recovery only replays a
///   sequence-dense prefix of fully fenced transactions — no "ELR ghosts".
/// * **Partitioned log streams** — the log itself can be sharded into
///   independent streams (one per DORA executor plus a dedicated stream for
///   the baseline/secondary path), each with its own buffer, flusher daemon
///   and simulated device, so commit batching parallelizes instead of
///   serializing behind one mutex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Run the dedicated log-flusher daemon (asynchronous group commit).
    /// When `false`, committers drive the flush themselves under a mutex —
    /// the synchronous baseline for A/B measurements.
    pub group_commit: bool,
    /// How long the flusher waits after the first pending commit of a group
    /// for more commits to accumulate, in microseconds. Zero flushes each
    /// batch as soon as the daemon wakes — groups then form *naturally*
    /// from the commits that arrive while earlier groups occupy the device,
    /// which adds no idle latency and is the right default; a positive
    /// window trades commit latency for larger groups on slow devices.
    pub group_window_micros: u64,
    /// Commit records pending past which the flusher stops waiting out the
    /// window and flushes immediately (bounds group latency under load).
    pub max_group_size: usize,
    /// Release transaction locks at precommit (commit record appended)
    /// instead of after the record is durable. Off = strict two-phase
    /// commit-duration locking, kept as the A/B baseline.
    pub early_lock_release: bool,
    /// Number of independent log streams the write-ahead log is sharded
    /// into. Stream 0 serves unbound threads (baseline workers, clients,
    /// secondary actions); DORA executor threads are spread round-robin over
    /// the remaining streams. `1` (the default) reproduces the classic
    /// single-log behaviour exactly.
    pub log_streams: usize,
    /// Log records appended between two fuzzy checkpoints. A checkpoint
    /// folds the committed history into a net-effect snapshot with
    /// per-stream low-water LSNs, so recovery replays only the delta since
    /// the last checkpoint. `0` (the default) disables checkpointing.
    pub checkpoint_interval: u64,
    /// Reclaim log space at each fuzzy checkpoint: truncate every stream's
    /// folded prefix (up to its low-water mark, never past the first record
    /// of a still-live transaction, whose undo chain must survive). On by
    /// default — a no-op unless checkpoints actually run — but switched off
    /// by harnesses that deliberately measure *full-history* replay after a
    /// checkpoint was taken.
    pub reclaim_log_at_checkpoint: bool,
    /// Per-stream simulated device write latencies, in microseconds. Stream
    /// `s` uses `stream_flush_micros[s]` when present and falls back to the
    /// system-wide `log_flush_micros` otherwise, so a heterogeneous log
    /// farm (one fast NVMe stream, several slow SATA streams) can be
    /// modelled without giving up the single shared default. Empty (the
    /// default) keeps every stream on the shared value.
    pub stream_flush_micros: Vec<u64>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            group_commit: true,
            group_window_micros: 0,
            max_group_size: 64,
            early_lock_release: true,
            log_streams: 1,
            checkpoint_interval: 0,
            reclaim_log_at_checkpoint: true,
            stream_flush_micros: Vec::new(),
        }
    }
}

impl DurabilityConfig {
    /// Synchronous commit: caller-driven flush, locks held until durable.
    /// The measurement baseline the `repro commit` experiment compares
    /// against.
    pub fn sync_commit() -> Self {
        Self {
            group_commit: false,
            early_lock_release: false,
            ..Self::default()
        }
    }

    /// Group commit with locks held until durable (isolates the batching
    /// win from the lock-hold-time win in A/B runs).
    pub fn group_commit_only() -> Self {
        Self {
            early_lock_release: false,
            ..Self::default()
        }
    }

    /// This configuration with the log sharded into `streams` streams (the
    /// other knobs untouched), for sweeping the stream-count axis.
    pub fn with_log_streams(self, streams: usize) -> Self {
        Self {
            log_streams: streams.max(1),
            ..self
        }
    }

    /// This configuration with per-stream device write latencies. Stream `s`
    /// takes `micros[s]`; streams past the end of the slice keep the shared
    /// system-wide latency.
    pub fn with_stream_device_micros(self, micros: Vec<u64>) -> Self {
        Self {
            stream_flush_micros: micros,
            ..self
        }
    }

    /// Device write latency for stream `index`: the per-stream override when
    /// one is configured, the shared `default_micros` otherwise.
    pub fn device_micros_for(&self, index: usize, default_micros: u64) -> u64 {
        self.stream_flush_micros
            .get(index)
            .copied()
            .unwrap_or(default_micros)
    }
}

/// Tuning knobs for adaptive skew-aware repartitioning (Appendix A.2.1).
///
/// The resource manager samples per-executor serviced-action counts and
/// queue depths into a sliding window; when the busiest executor's windowed
/// load exceeds the average by [`imbalance_threshold`](Self::imbalance_threshold),
/// it synthesizes a rebalanced routing rule (splitting hot ranges, merging
/// cold ones) and drives the dataset-resize drain protocol while
/// transactions stay in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Whether the engine spawns the adaptive repartitioning controller when
    /// a workload is bound.
    pub enabled: bool,
    /// Interval between two load samples.
    pub sample_interval: Duration,
    /// Number of samples in the sliding window the skew detector evaluates.
    /// Imbalance is computed over the served-action delta across the window,
    /// so larger windows react more slowly but resist noise.
    pub window: usize,
    /// Ratio of busiest executor's windowed load to the average past which a
    /// rebalance is triggered (must be > 1.0).
    pub imbalance_threshold: f64,
    /// Minimum width (in routing-key values) of any range a rebalance may
    /// produce; prevents the detector from shrinking a hot range below the
    /// granularity at which routing stays meaningful.
    pub min_range_width: i64,
    /// Minimum time between two resizes of the same table. Each resize
    /// drains the table's executors, so back-to-back resizes would stall the
    /// pipeline; the cooldown also gives the window time to refill with
    /// samples taken under the new rule.
    pub cooldown: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            sample_interval: Duration::from_millis(50),
            window: 3,
            imbalance_threshold: 1.5,
            min_range_width: 1,
            cooldown: Duration::from_millis(200),
        }
    }
}

impl AdaptiveConfig {
    /// An enabled configuration that reacts quickly — suitable for tests and
    /// the short measured intervals of the quick benchmark scale.
    pub fn eager() -> Self {
        Self {
            enabled: true,
            sample_interval: Duration::from_millis(10),
            window: 2,
            imbalance_threshold: 1.2,
            min_range_width: 1,
            cooldown: Duration::from_millis(40),
        }
    }
}

/// Number of logical CPUs visible to the process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_mode_lock_manager_usage() {
        assert!(CcMode::Full.uses_lock_manager());
        assert!(CcMode::RowOnly.uses_lock_manager());
        assert!(!CcMode::None.uses_lock_manager());
    }

    #[test]
    fn offered_load_round_trips_thread_count() {
        let config = SystemConfig {
            hardware_contexts: 8,
            ..SystemConfig::default()
        };
        assert_eq!(config.threads_for_load(100.0), 8);
        assert_eq!(config.threads_for_load(50.0), 4);
        assert_eq!(config.threads_for_load(1.0), 1);
        assert!((config.offered_load_percent(4) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_defaults_are_sane() {
        let config = AdaptiveConfig::default();
        assert!(!config.enabled, "adaptivity must be opt-in");
        assert!(config.imbalance_threshold > 1.0);
        assert!(config.window >= 2, "imbalance needs at least two samples");
        assert!(config.min_range_width >= 1);
        let eager = AdaptiveConfig::eager();
        assert!(eager.enabled);
        assert!(eager.sample_interval < config.sample_interval);
    }

    #[test]
    fn durability_defaults_and_ab_presets() {
        let config = DurabilityConfig::default();
        assert!(config.group_commit);
        assert!(config.early_lock_release);
        assert!(config.max_group_size >= 1);
        assert_eq!(config.log_streams, 1, "single stream is the default");
        assert_eq!(config.checkpoint_interval, 0, "checkpointing is opt-in");
        assert!(
            config.reclaim_log_at_checkpoint,
            "reclamation rides checkpoints by default"
        );
        let sync = DurabilityConfig::sync_commit();
        assert!(!sync.group_commit && !sync.early_lock_release);
        let group = DurabilityConfig::group_commit_only();
        assert!(group.group_commit && !group.early_lock_release);
        assert_eq!(SystemConfig::default().durability, config);
        // Sync commit composes with multiple streams (per-stream
        // caller-driven flush), keeping the A/B baseline available on the
        // stream-count axis.
        let sharded_sync = DurabilityConfig::sync_commit().with_log_streams(4);
        assert!(!sharded_sync.group_commit);
        assert_eq!(sharded_sync.log_streams, 4);
        assert_eq!(
            DurabilityConfig::default().with_log_streams(0).log_streams,
            1,
            "stream counts clamp to at least one"
        );
        assert!(
            config.stream_flush_micros.is_empty(),
            "per-stream device latencies are opt-in"
        );
        let mixed = DurabilityConfig::default()
            .with_log_streams(3)
            .with_stream_device_micros(vec![5, 80]);
        assert_eq!(mixed.device_micros_for(0, 25), 5);
        assert_eq!(mixed.device_micros_for(1, 25), 80);
        assert_eq!(
            mixed.device_micros_for(2, 25),
            25,
            "streams past the override slice keep the shared default"
        );
    }

    #[test]
    fn engine_labels_match_paper() {
        assert_eq!(EngineKind::Baseline.label(), "Baseline");
        assert_eq!(EngineKind::Dora.label(), "DORA");
    }
}
