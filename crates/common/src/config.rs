//! Run-time configuration shared by the baseline and DORA engines.

/// Which execution architecture a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Conventional thread-to-transaction execution: each worker thread runs
    /// whole transactions against the storage manager with full centralized
    /// concurrency control. This is the paper's "Baseline" (Shore-MT).
    Baseline,
    /// Data-oriented thread-to-data execution (the paper's contribution).
    Dora,
}

impl EngineKind {
    /// Every registered execution architecture, in the order the paper's
    /// figures list them. Sweeps, equivalence tests and examples iterate
    /// this instead of hard-coding engines, so a new architecture only has
    /// to be appended here (and given a factory arm in `dora-engine`).
    pub const ALL: [EngineKind; 2] = [EngineKind::Baseline, EngineKind::Dora];

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "Baseline",
            EngineKind::Dora => "DORA",
        }
    }
}

/// Concurrency-control mode for an individual storage operation.
///
/// The paper (Section 4.3) describes the prototype's only Shore-MT
/// modifications: an extra flag telling the storage manager to skip
/// concurrency control for reads/updates executed by DORA executors, and a
/// flag to acquire only the row-level lock (not the whole hierarchy) for
/// inserts and deletes. `CcMode` models exactly those three behaviours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcMode {
    /// Acquire the full hierarchy of intention locks plus the record lock —
    /// what the conventional engine does for every access.
    Full,
    /// Acquire only the row-level lock, skipping the intention-lock
    /// hierarchy — what DORA does for record inserts and deletes
    /// (Section 4.2.1).
    RowOnly,
    /// Skip the centralized lock manager entirely — what DORA does for
    /// probes and updates, because its executor serializes them via the
    /// thread-local lock table.
    None,
}

impl CcMode {
    /// `true` if this mode touches the centralized lock manager at all.
    pub fn uses_lock_manager(self) -> bool {
        !matches!(self, CcMode::None)
    }
}

/// Global knobs for a run. Defaults are sized so that unit and integration
/// tests finish quickly; the benchmark harness overrides them.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of worker threads the baseline engine uses / number of client
    /// threads generating load.
    pub worker_threads: usize,
    /// Number of hardware contexts the "machine" is assumed to have; offered
    /// CPU load is reported relative to this (the paper's x-axes).
    pub hardware_contexts: usize,
    /// Buffer pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// Page size in bytes for the slotted heap pages.
    pub page_size: usize,
    /// Simulated latency of a log flush, in microseconds. The paper stores
    /// the log on an in-memory file system; a small non-zero value models the
    /// memcpy + fsync-to-tmpfs cost and creates the group-commit pressure the
    /// paper mentions for TPC-C NewOrder/Payment.
    pub log_flush_micros: u64,
    /// Upper bound on spin iterations before a latch acquisition starts
    /// yielding the CPU (preemption-resistant MCS-style behaviour).
    pub latch_spin_limit: u32,
    /// Whether the lock manager runs deadlock detection on conflict.
    pub deadlock_detection: bool,
    /// Maximum number of retries for transactions aborted by deadlocks.
    pub max_retries: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            worker_threads: 4,
            hardware_contexts: num_cpus(),
            buffer_pool_pages: 4096,
            page_size: 8192,
            log_flush_micros: 0,
            latch_spin_limit: 64,
            deadlock_detection: true,
            max_retries: 10,
        }
    }
}

impl SystemConfig {
    /// Configuration for quick unit tests: tiny buffer pool, no log latency.
    pub fn for_tests() -> Self {
        Self {
            worker_threads: 2,
            buffer_pool_pages: 256,
            ..Self::default()
        }
    }

    /// Offered CPU load (percent) when `threads` client threads run on this
    /// configuration, following the paper's definition (measured utilization
    /// plus time spent runnable): with a CPU-bound workload every client
    /// thread contributes one context worth of demand.
    pub fn offered_load_percent(&self, threads: usize) -> f64 {
        100.0 * threads as f64 / self.hardware_contexts as f64
    }

    /// Number of client threads that produces approximately `percent` offered
    /// CPU load (at least one).
    pub fn threads_for_load(&self, percent: f64) -> usize {
        ((percent / 100.0) * self.hardware_contexts as f64)
            .round()
            .max(1.0) as usize
    }
}

/// Number of logical CPUs visible to the process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_mode_lock_manager_usage() {
        assert!(CcMode::Full.uses_lock_manager());
        assert!(CcMode::RowOnly.uses_lock_manager());
        assert!(!CcMode::None.uses_lock_manager());
    }

    #[test]
    fn offered_load_round_trips_thread_count() {
        let config = SystemConfig {
            hardware_contexts: 8,
            ..SystemConfig::default()
        };
        assert_eq!(config.threads_for_load(100.0), 8);
        assert_eq!(config.threads_for_load(50.0), 4);
        assert_eq!(config.threads_for_load(1.0), 1);
        assert!((config.offered_load_percent(4) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn engine_labels_match_paper() {
        assert_eq!(EngineKind::Baseline.label(), "Baseline");
        assert_eq!(EngineKind::Dora.label(), "DORA");
    }
}
