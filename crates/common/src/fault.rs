//! Deterministic fault injection.
//!
//! The durability tricks this reproduction measures — early lock release and
//! asynchronous group commit — are exactly the mechanisms that turn one slow
//! or failed log write into cascading stalls and ghost commits. To exercise
//! those paths repeatably, faults are *planned*, not random: every injection
//! decision is a pure function of the configured seed, the fault site and the
//! ordinal of the draw at that site. Two runs with the same [`FaultConfig`]
//! therefore draw the identical decision sequence per site, regardless of
//! thread interleaving (interleaving only changes *which wall-clock operation*
//! consumes draw `k`, never what draw `k` decides).
//!
//! The plan itself lives here in `dora-common` so every layer (storage's log
//! device, the DORA executors, the serving front-end's tests) shares one
//! schedule; the layers that consume decisions count them through
//! `dora-metrics` at the call site.

use std::sync::atomic::{AtomicU64, Ordering};

/// Knobs for the deterministic fault injector. All rates are probabilities in
/// `[0, 1]`; a rate of zero disables that site entirely (and draws nothing
/// from its decision stream). The default configuration injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-site decision streams. Fixing the seed fixes the
    /// entire fault schedule.
    pub seed: u64,
    /// Probability that a simulated log-device write fails transiently.
    pub device_error_rate: f64,
    /// Probability that a simulated log-device write takes a latency spike.
    pub device_spike_rate: f64,
    /// Extra latency of a spiked device write, in microseconds.
    pub device_spike_micros: u64,
    /// Probability that a log flusher stalls before a device write.
    pub flusher_stall_rate: f64,
    /// Duration of an injected flusher stall, in microseconds.
    pub flusher_stall_micros: u64,
    /// Probability that an executor panics at an action boundary.
    pub executor_panic_rate: f64,
    /// How many times a flusher retries a failed device write before
    /// declaring the stream's durability lost for good. `0` disables the
    /// self-healing retry path: the first failed write kills the stream.
    pub max_write_retries: u32,
    /// Base of the capped exponential backoff between write retries, in
    /// microseconds (doubled per attempt, capped at 32x the base).
    pub retry_backoff_micros: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0xD07A,
            device_error_rate: 0.0,
            device_spike_rate: 0.0,
            device_spike_micros: 500,
            flusher_stall_rate: 0.0,
            flusher_stall_micros: 2_000,
            executor_panic_rate: 0.0,
            max_write_retries: 8,
            retry_backoff_micros: 50,
        }
    }
}

impl FaultConfig {
    /// `true` if any fault site has a non-zero rate — the cheap gate callers
    /// use to skip injection bookkeeping entirely on clean runs.
    pub fn enabled(&self) -> bool {
        self.device_error_rate > 0.0
            || self.device_spike_rate > 0.0
            || self.flusher_stall_rate > 0.0
            || self.executor_panic_rate > 0.0
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::DeviceWriteError => self.device_error_rate,
            FaultSite::DeviceLatencySpike => self.device_spike_rate,
            FaultSite::FlusherStall => self.flusher_stall_rate,
            FaultSite::ExecutorPanic => self.executor_panic_rate,
        }
    }
}

/// Where a fault can be injected. Each site has its own independent decision
/// stream so enabling one site never perturbs another's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A simulated log-device write fails transiently.
    DeviceWriteError,
    /// A simulated log-device write takes a latency spike.
    DeviceLatencySpike,
    /// A log flusher stalls before writing.
    FlusherStall,
    /// An executor thread panics at an action boundary.
    ExecutorPanic,
}

impl FaultSite {
    /// Every fault site, in decision-stream order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::DeviceWriteError,
        FaultSite::DeviceLatencySpike,
        FaultSite::FlusherStall,
        FaultSite::ExecutorPanic,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::DeviceWriteError => 0,
            FaultSite::DeviceLatencySpike => 1,
            FaultSite::FlusherStall => 2,
            FaultSite::ExecutorPanic => 3,
        }
    }
}

/// A live fault schedule: a [`FaultConfig`] plus one draw counter per site.
///
/// [`Self::should_inject`] consumes the next decision of the site's stream;
/// [`Self::decision`] previews any decision without consuming anything, which
/// is how tests and the chaos experiment verify that a fixed seed reproduces
/// the identical schedule.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    draws: [AtomicU64; 4],
}

impl FaultPlan {
    /// Builds a plan with all draw counters at zero.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            draws: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// `true` if any site can fire (see [`FaultConfig::enabled`]).
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Consumes the next decision of `site`'s stream. Sites with a zero rate
    /// draw nothing and always answer `false`.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let rate = self.config.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let draw = self.draws[site.index()].fetch_add(1, Ordering::Relaxed);
        self.decision(site, draw)
    }

    /// The decision the `draw`-th consumption of `site`'s stream yields — a
    /// pure function of `(seed, site, draw)`, usable to preview or replay the
    /// schedule without touching the live counters.
    pub fn decision(&self, site: FaultSite, draw: u64) -> bool {
        let rate = self.config.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let salt = (site.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let hash = splitmix64(self.config.seed ^ salt ^ draw.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // Top 53 bits give a uniform draw in [0, 1).
        ((hash >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    /// The first `n` decisions of `site`'s stream (schedule preview).
    pub fn schedule(&self, site: FaultSite, n: u64) -> Vec<bool> {
        (0..n).map(|draw| self.decision(site, draw)).collect()
    }

    /// How many decisions `site`'s stream has consumed so far.
    pub fn draws(&self, site: FaultSite) -> u64 {
        self.draws[site.index()].load(Ordering::Relaxed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Panic payload used for injected executor panics, so supervision code and
/// the process panic hook can tell a *planned* crash from a genuine bug.
#[derive(Debug, Clone, Copy)]
pub struct InjectedPanic;

/// Installs a process panic hook that suppresses the default backtrace noise
/// for [`InjectedPanic`] payloads (chaos runs inject thousands) while leaving
/// every other panic's reporting untouched. Idempotent.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<InjectedPanic>() {
                default_hook(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultConfig {
        FaultConfig {
            seed: 42,
            device_error_rate: 0.25,
            device_spike_rate: 0.1,
            flusher_stall_rate: 0.05,
            executor_panic_rate: 0.02,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_config_is_inert() {
        let plan = FaultPlan::disabled();
        assert!(!plan.enabled());
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(!plan.should_inject(site));
            }
            assert_eq!(plan.draws(site), 0, "zero-rate sites must not draw");
        }
    }

    #[test]
    fn same_seed_reproduces_the_identical_schedule() {
        let a = FaultPlan::new(chaotic());
        let b = FaultPlan::new(chaotic());
        for site in FaultSite::ALL {
            assert_eq!(a.schedule(site, 10_000), b.schedule(site, 10_000));
        }
        // Live draws agree with the previewed schedule.
        let live: Vec<bool> = (0..10_000)
            .map(|_| a.should_inject(FaultSite::DeviceWriteError))
            .collect();
        assert_eq!(live, b.schedule(FaultSite::DeviceWriteError, 10_000));
    }

    #[test]
    fn different_seeds_diverge_and_rates_are_roughly_honored() {
        let a = FaultPlan::new(chaotic());
        let b = FaultPlan::new(FaultConfig {
            seed: 43,
            ..chaotic()
        });
        let sa = a.schedule(FaultSite::DeviceWriteError, 4_096);
        let sb = b.schedule(FaultSite::DeviceWriteError, 4_096);
        assert_ne!(sa, sb, "different seeds must yield different schedules");
        let hits = sa.iter().filter(|&&h| h).count() as f64 / 4_096.0;
        assert!(
            (hits - 0.25).abs() < 0.05,
            "empirical rate {hits} strays too far from 0.25"
        );
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::new(chaotic());
        // Consuming one site's stream must not move another's.
        for _ in 0..50 {
            plan.should_inject(FaultSite::FlusherStall);
        }
        assert_eq!(plan.draws(FaultSite::FlusherStall), 50);
        assert_eq!(plan.draws(FaultSite::DeviceWriteError), 0);
    }
}
