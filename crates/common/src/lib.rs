//! Shared building blocks for the DORA reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: identifiers for transactions, tables, pages and records,
//! the [`Value`]/[`Key`] data model, error types and the run-time
//! configuration knobs shared by the baseline and DORA engines.
//!
//! Nothing in here is specific to either execution architecture; the goal is
//! that `dora-storage`, `dora-engine` (the conventional thread-to-transaction
//! engine) and `dora-core` (the thread-to-data engine from the paper) can all
//! speak the same language.

pub mod config;
pub mod error;
pub mod fault;
pub mod ids;
pub mod key;
pub mod outcome;
pub mod value;

pub use config::{AdaptiveConfig, CcMode, DurabilityConfig, EngineKind, SystemConfig};
pub use error::{DbError, DbResult};
pub use fault::{silence_injected_panics, FaultConfig, FaultPlan, FaultSite, InjectedPanic};
pub use ids::{IndexId, PageId, Rid, SlotId, TableId, TxnId};
pub use key::{Key, KeyRange};
pub use outcome::{BaselineOutcome, TxnOutcome};
pub use value::{Row, Value, ValueType};

/// Convenience prelude re-exporting the types almost every module needs.
pub mod prelude {
    pub use crate::config::{AdaptiveConfig, CcMode, DurabilityConfig, EngineKind, SystemConfig};
    pub use crate::error::{DbError, DbResult};
    pub use crate::fault::{
        silence_injected_panics, FaultConfig, FaultPlan, FaultSite, InjectedPanic,
    };
    pub use crate::ids::{IndexId, PageId, Rid, SlotId, TableId, TxnId};
    pub use crate::key::{Key, KeyRange};
    pub use crate::outcome::{BaselineOutcome, TxnOutcome};
    pub use crate::value::{Row, Value, ValueType};
}
