//! Composite keys and key ranges.
//!
//! A [`Key`] is an ordered tuple of values used for index lookups, routing
//! decisions and DORA action identifiers. DORA's thread-local lock table
//! operates on *key prefixes* (Section 4.1.3: "the locking scheme employed is
//! similar to that of key-prefix locks"), so [`Key`] exposes prefix tests.
//!
//! Keys sit on the executor hot path: every action carries one, every local
//! lock probe compares them and every routing decision reads the leading
//! field. To keep that path allocation-free, short keys (up to
//! [`Key::INLINE_LEN`] components — the overwhelmingly common case: warehouse
//! id, (warehouse, district), subscriber id, counter id) are stored *inline*
//! on the stack; only longer keys spill to a heap vector. The two
//! representations are an invisible implementation detail: equality, hashing
//! and ordering are defined over the logical value sequence, so an inline key
//! and a heap key with the same components are fully interchangeable (there
//! is a property test pinning this down).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Filler for unused inline slots (never observed through the public API).
const FILL: Value = Value::Int(0);

/// Inline capacity; re-exported as [`Key::INLINE_LEN`].
const INLINE_LEN: usize = 2;

/// Internal storage of a [`Key`].
#[derive(Debug, Clone)]
enum Repr {
    /// Up to [`Key::INLINE_LEN`] components stored in place; `len` of them
    /// are live, the rest are [`FILL`].
    Inline { len: u8, slots: [Value; INLINE_LEN] },
    /// Longer keys fall back to a heap vector.
    Heap(Vec<Value>),
}

/// A composite key: an ordered tuple of column values.
#[derive(Debug, Clone)]
pub struct Key(Repr);

impl Key {
    /// Number of components a key stores without heap allocation.
    pub const INLINE_LEN: usize = INLINE_LEN;

    /// The empty key. Used as the identifier of *secondary actions*, whose
    /// responsible executor cannot be determined from the action alone
    /// (Section 4.2.2).
    pub fn empty() -> Self {
        Key(Repr::Inline {
            len: 0,
            slots: [FILL; INLINE_LEN],
        })
    }

    /// Builds a key from anything convertible to values. Stays on the stack
    /// for up to [`Key::INLINE_LEN`] components.
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut key = Key::empty();
        for value in values {
            key.push(value);
        }
        key
    }

    /// Single-column integer key, the most common case in the benchmarks.
    pub fn int(v: i64) -> Self {
        Key(Repr::Inline {
            len: 1,
            slots: [Value::Int(v), FILL],
        })
    }

    /// Two-column integer key.
    pub fn int2(a: i64, b: i64) -> Self {
        Key(Repr::Inline {
            len: 2,
            slots: [Value::Int(a), Value::Int(b)],
        })
    }

    /// Three-column integer key.
    pub fn int3(a: i64, b: i64, c: i64) -> Self {
        Key(Repr::Heap(vec![
            Value::Int(a),
            Value::Int(b),
            Value::Int(c),
        ]))
    }

    /// Number of components in the key.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(values) => values.len(),
        }
    }

    /// `true` if the key has no components (a secondary-action identifier).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if the key is stored inline (no heap allocation). Diagnostics
    /// and tests only — the representation never changes key semantics.
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Returns the components.
    pub fn values(&self) -> &[Value] {
        match &self.0 {
            Repr::Inline { len, slots } => &slots[..*len as usize],
            Repr::Heap(values) => values,
        }
    }

    /// Appends a component in place. Spills to the heap only past
    /// [`Key::INLINE_LEN`] components.
    pub fn push(&mut self, value: impl Into<Value>) {
        let value = value.into();
        match &mut self.0 {
            Repr::Inline { len, slots } => {
                let live = *len as usize;
                if live < Self::INLINE_LEN {
                    slots[live] = value;
                    *len += 1;
                } else {
                    let mut values = Vec::with_capacity(live + 1);
                    for slot in slots.iter_mut() {
                        values.push(std::mem::replace(slot, FILL));
                    }
                    values.push(value);
                    self.0 = Repr::Heap(values);
                }
            }
            Repr::Heap(values) => values.push(value),
        }
    }

    /// Returns a new key containing only the first `n` components.
    pub fn prefix(&self, n: usize) -> Key {
        Key::from_values(self.values().iter().take(n).cloned())
    }

    /// Appends a component, returning the extended key.
    pub fn extend(&self, value: impl Into<Value>) -> Key {
        let mut key = self.clone();
        key.push(value);
        key
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Key) -> bool {
        let (a, b) = (self.values(), other.values());
        a.len() <= b.len() && a.iter().zip(b.iter()).all(|(x, y)| x == y)
    }

    /// Key-prefix overlap test: two identifiers cover overlapping record sets
    /// iff one is a prefix of the other (including equality). This is the
    /// conflict test DORA's local lock tables use.
    pub fn overlaps(&self, other: &Key) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// First component interpreted as an integer, if present. Routing rules
    /// frequently partition on the leading routing field.
    pub fn leading_int(&self) -> Option<i64> {
        match self.values().first() {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }
}

impl Default for Key {
    fn default() -> Self {
        Key::empty()
    }
}

// Equality, hashing and ordering go through `values()` so the inline and
// heap representations of the same logical key are indistinguishable —
// `HashMap<Key, _>` lookups and B-Tree ordering must not depend on how a key
// happened to be built.
impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.values().cmp(other.values())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Key {
    /// Adopts the vector as-is (heap representation, no copying). Hot paths
    /// that want short keys inline should build through [`Key::from_values`]
    /// or the `int*` constructors instead.
    fn from(values: Vec<Value>) -> Self {
        Key(Repr::Heap(values))
    }
}

impl FromIterator<Value> for Key {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Key::from_values(iter)
    }
}

/// A half-open range of keys `[low, high)` used for range scans and for
/// describing the dataset assigned to a DORA executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound; `None` means unbounded below.
    pub low: Option<Key>,
    /// Exclusive upper bound; `None` means unbounded above.
    pub high: Option<Key>,
}

impl KeyRange {
    /// The range covering every key.
    pub fn all() -> Self {
        Self {
            low: None,
            high: None,
        }
    }

    /// Builds `[low, high)`.
    pub fn new(low: Option<Key>, high: Option<Key>) -> Self {
        Self { low, high }
    }

    /// `true` if `key` falls inside the range.
    pub fn contains(&self, key: &Key) -> bool {
        if let Some(low) = &self.low {
            if key < low {
                return false;
            }
        }
        if let Some(high) = &self.high {
            if key >= high {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_relationships() {
        let wh = Key::int(3);
        let wh_di = Key::int2(3, 7);
        let other = Key::int(4);

        assert!(wh.is_prefix_of(&wh_di));
        assert!(!wh_di.is_prefix_of(&wh));
        assert!(wh.overlaps(&wh_di));
        assert!(wh_di.overlaps(&wh));
        assert!(!wh.overlaps(&other));
        assert!(Key::empty().is_prefix_of(&wh));
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(Key::int2(1, 9) < Key::int2(2, 0));
        assert!(Key::int(1) < Key::int2(1, 0));
        assert!(Key::int2(1, 1) < Key::int2(1, 2));
    }

    #[test]
    fn range_contains() {
        let range = KeyRange::new(Some(Key::int(10)), Some(Key::int(20)));
        assert!(!range.contains(&Key::int(9)));
        assert!(range.contains(&Key::int(10)));
        assert!(range.contains(&Key::int(19)));
        // A composite key (19, x) still sorts below (20).
        assert!(range.contains(&Key::int2(19, 999)));
        assert!(!range.contains(&Key::int(20)));
        assert!(KeyRange::all().contains(&Key::int(-5)));
    }

    #[test]
    fn extend_and_prefix() {
        let key = Key::int(1).extend(2).extend("abc");
        assert_eq!(key.len(), 3);
        assert_eq!(key.prefix(2), Key::int2(1, 2));
        assert_eq!(key.leading_int(), Some(1));
        assert_eq!(Key::empty().leading_int(), None);
    }

    #[test]
    fn short_keys_stay_inline_and_long_keys_spill() {
        assert!(Key::empty().is_inline());
        assert!(Key::int(7).is_inline());
        assert!(Key::int2(7, 8).is_inline());
        assert!(!Key::int3(7, 8, 9).is_inline());
        assert!(Key::int2(7, 8).prefix(1).is_inline());
        assert!(Key::int3(7, 8, 9).prefix(2).is_inline());
        // Pushing past the inline capacity spills without losing components.
        let mut key = Key::int2(1, 2);
        key.push(3);
        assert!(!key.is_inline());
        assert_eq!(key, Key::int3(1, 2, 3));
    }

    #[test]
    fn inline_and_heap_representations_are_interchangeable() {
        use std::collections::hash_map::DefaultHasher;
        let inline = Key::int2(5, 6);
        let heap = Key::from(vec![Value::Int(5), Value::Int(6)]);
        assert!(inline.is_inline());
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_eq!(inline.cmp(&heap), Ordering::Equal);
        let hash = |key: &Key| {
            let mut hasher = DefaultHasher::new();
            key.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(hash(&inline), hash(&heap));
        let mut map = std::collections::HashMap::new();
        map.insert(inline, 1);
        assert_eq!(map.get(&heap), Some(&1));
    }

    #[test]
    fn collect_builds_inline_keys() {
        let key: Key = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert!(key.is_inline());
        assert_eq!(key, Key::int2(1, 2));
    }
}
