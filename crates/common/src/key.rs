//! Composite keys and key ranges.
//!
//! A [`Key`] is an ordered tuple of values used for index lookups, routing
//! decisions and DORA action identifiers. DORA's thread-local lock table
//! operates on *key prefixes* (Section 4.1.3: "the locking scheme employed is
//! similar to that of key-prefix locks"), so [`Key`] exposes prefix tests.

use std::fmt;

use crate::value::Value;

/// A composite key: an ordered tuple of column values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// The empty key. Used as the identifier of *secondary actions*, whose
    /// responsible executor cannot be determined from the action alone
    /// (Section 4.2.2).
    pub fn empty() -> Self {
        Key(Vec::new())
    }

    /// Builds a key from anything convertible to values.
    pub fn from_values<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Key(values.into_iter().map(Into::into).collect())
    }

    /// Single-column integer key, the most common case in the benchmarks.
    pub fn int(v: i64) -> Self {
        Key(vec![Value::Int(v)])
    }

    /// Two-column integer key.
    pub fn int2(a: i64, b: i64) -> Self {
        Key(vec![Value::Int(a), Value::Int(b)])
    }

    /// Three-column integer key.
    pub fn int3(a: i64, b: i64, c: i64) -> Self {
        Key(vec![Value::Int(a), Value::Int(b), Value::Int(c)])
    }

    /// Number of components in the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the key has no components (a secondary-action identifier).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the components.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Returns a new key containing only the first `n` components.
    pub fn prefix(&self, n: usize) -> Key {
        Key(self.0.iter().take(n).cloned().collect())
    }

    /// Appends a component, returning the extended key.
    pub fn extend(&self, value: impl Into<Value>) -> Key {
        let mut values = self.0.clone();
        values.push(value.into());
        Key(values)
    }

    /// `true` if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Key) -> bool {
        self.0.len() <= other.0.len() && self.0.iter().zip(other.0.iter()).all(|(a, b)| a == b)
    }

    /// Key-prefix overlap test: two identifiers cover overlapping record sets
    /// iff one is a prefix of the other (including equality). This is the
    /// conflict test DORA's local lock tables use.
    pub fn overlaps(&self, other: &Key) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// First component interpreted as an integer, if present. Routing rules
    /// frequently partition on the leading routing field.
    pub fn leading_int(&self) -> Option<i64> {
        match self.0.first() {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Key {
    fn from(values: Vec<Value>) -> Self {
        Key(values)
    }
}

/// A half-open range of keys `[low, high)` used for range scans and for
/// describing the dataset assigned to a DORA executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound; `None` means unbounded below.
    pub low: Option<Key>,
    /// Exclusive upper bound; `None` means unbounded above.
    pub high: Option<Key>,
}

impl KeyRange {
    /// The range covering every key.
    pub fn all() -> Self {
        Self {
            low: None,
            high: None,
        }
    }

    /// Builds `[low, high)`.
    pub fn new(low: Option<Key>, high: Option<Key>) -> Self {
        Self { low, high }
    }

    /// `true` if `key` falls inside the range.
    pub fn contains(&self, key: &Key) -> bool {
        if let Some(low) = &self.low {
            if key < low {
                return false;
            }
        }
        if let Some(high) = &self.high {
            if key >= high {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_relationships() {
        let wh = Key::int(3);
        let wh_di = Key::int2(3, 7);
        let other = Key::int(4);

        assert!(wh.is_prefix_of(&wh_di));
        assert!(!wh_di.is_prefix_of(&wh));
        assert!(wh.overlaps(&wh_di));
        assert!(wh_di.overlaps(&wh));
        assert!(!wh.overlaps(&other));
        assert!(Key::empty().is_prefix_of(&wh));
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        assert!(Key::int2(1, 9) < Key::int2(2, 0));
        assert!(Key::int(1) < Key::int2(1, 0));
        assert!(Key::int2(1, 1) < Key::int2(1, 2));
    }

    #[test]
    fn range_contains() {
        let range = KeyRange::new(Some(Key::int(10)), Some(Key::int(20)));
        assert!(!range.contains(&Key::int(9)));
        assert!(range.contains(&Key::int(10)));
        assert!(range.contains(&Key::int(19)));
        // A composite key (19, x) still sorts below (20).
        assert!(range.contains(&Key::int2(19, 999)));
        assert!(!range.contains(&Key::int(20)));
        assert!(KeyRange::all().contains(&Key::int(-5)));
    }

    #[test]
    fn extend_and_prefix() {
        let key = Key::int(1).extend(2).extend("abc");
        assert_eq!(key.len(), 3);
        assert_eq!(key.prefix(2), Key::int2(1, 2));
        assert_eq!(key.leading_int(), Some(1));
        assert_eq!(Key::empty().leading_int(), None);
    }
}
