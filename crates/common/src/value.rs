//! The data model: typed column values and rows.
//!
//! The storage manager stores rows as byte strings inside slotted pages, so
//! [`Value`] carries its own compact serialization (`encode`/`decode`)
//! built on the `bytes` crate. The encoding is not meant to be portable; it
//! only has to round-trip within one process, like Shore-MT's record format.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::cmp::Ordering;
use std::fmt;

use crate::error::{DbError, DbResult};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (used for balances / amounts).
    Float,
    /// Variable-length UTF-8 string.
    Text,
}

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Variable-length UTF-8 string.
    Text(String),
}

/// A row is simply an ordered list of values matching the table schema.
pub type Row = Vec<Value>;

impl Value {
    /// Returns the type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Text(_) => ValueType::Text,
        }
    }

    /// Extracts an integer, failing with [`DbError::TypeMismatch`] otherwise.
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(DbError::TypeMismatch {
                expected: ValueType::Int,
                found: other.value_type(),
            }),
        }
    }

    /// Extracts a float. Integers are widened to floats for convenience,
    /// which keeps workload code that mixes amounts and counters simple.
    pub fn as_float(&self) -> DbResult<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(DbError::TypeMismatch {
                expected: ValueType::Float,
                found: other.value_type(),
            }),
        }
    }

    /// Extracts a string slice, failing with [`DbError::TypeMismatch`]
    /// otherwise.
    pub fn as_text(&self) -> DbResult<&str> {
        match self {
            Value::Text(v) => Ok(v.as_str()),
            other => Err(DbError::TypeMismatch {
                expected: ValueType::Text,
                found: other.value_type(),
            }),
        }
    }

    /// Serializes the value into `buf` using a one-byte type tag followed by
    /// the payload.
    pub fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Int(v) => {
                buf.put_u8(0);
                buf.put_i64_le(*v);
            }
            Value::Float(v) => {
                buf.put_u8(1);
                buf.put_f64_le(*v);
            }
            Value::Text(v) => {
                buf.put_u8(2);
                buf.put_u32_le(v.len() as u32);
                buf.put_slice(v.as_bytes());
            }
        }
    }

    /// Deserializes one value from `buf`, advancing it.
    pub fn decode(buf: &mut Bytes) -> DbResult<Value> {
        if buf.remaining() < 1 {
            return Err(DbError::Corruption(
                "truncated value: missing type tag".into(),
            ));
        }
        let tag = buf.get_u8();
        match tag {
            0 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Corruption("truncated int value".into()));
                }
                Ok(Value::Int(buf.get_i64_le()))
            }
            1 => {
                if buf.remaining() < 8 {
                    return Err(DbError::Corruption("truncated float value".into()));
                }
                Ok(Value::Float(buf.get_f64_le()))
            }
            2 => {
                if buf.remaining() < 4 {
                    return Err(DbError::Corruption("truncated text length".into()));
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(DbError::Corruption("truncated text payload".into()));
                }
                let raw = buf.split_to(len);
                let text = String::from_utf8(raw.to_vec())
                    .map_err(|_| DbError::Corruption("text value is not valid UTF-8".into()))?;
                Ok(Value::Text(text))
            }
            other => Err(DbError::Corruption(format!("unknown value tag {other}"))),
        }
    }

    /// Serializes a whole row (a length-prefixed sequence of values).
    pub fn encode_row(row: &[Value]) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + row.len() * 12);
        buf.put_u16_le(row.len() as u16);
        for value in row {
            value.encode(&mut buf);
        }
        buf.freeze()
    }

    /// Deserializes a whole row previously produced by [`Value::encode_row`].
    pub fn decode_row(bytes: &[u8]) -> DbResult<Row> {
        let mut buf = Bytes::copy_from_slice(bytes);
        if buf.remaining() < 2 {
            return Err(DbError::Corruption("truncated row header".into()));
        }
        let count = buf.get_u16_le() as usize;
        let mut row = Vec::with_capacity(count);
        for _ in 0..count {
            row.push(Value::decode(&mut buf)?);
        }
        Ok(row)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across values.
    ///
    /// Values of different types order by type tag (Int < Float < Text);
    /// floats use IEEE total ordering so the order is indeed total. The
    /// B-Tree and the DORA routing rules rely on this being a total order.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Float(_), _) => Ordering::Less,
            (_, Float(_)) => Ordering::Greater,
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(v) => {
                2u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_encode_decode_roundtrip() {
        let row: Row = vec![
            Value::Int(42),
            Value::Float(3.25),
            Value::Text("hello world".into()),
            Value::Int(-1),
        ];
        let bytes = Value::encode_row(&row);
        let decoded = Value::decode_row(&bytes).unwrap();
        assert_eq!(decoded, row);
    }

    #[test]
    fn empty_row_roundtrip() {
        let row: Row = vec![];
        let decoded = Value::decode_row(&Value::encode_row(&row)).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let row: Row = vec![Value::Text("abcdef".into())];
        let bytes = Value::encode_row(&row);
        let truncated = &bytes[..bytes.len() - 2];
        assert!(matches!(
            Value::decode_row(truncated),
            Err(DbError::Corruption(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let bytes = vec![1u8, 0u8, 9u8];
        assert!(matches!(
            Value::decode_row(&bytes),
            Err(DbError::Corruption(_))
        ));
    }

    #[test]
    fn ordering_is_total_across_types() {
        assert!(Value::Int(5) < Value::Float(1.0));
        assert!(Value::Float(9.0) < Value::Text("a".into()));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
        assert!(Value::Text("x".into()).as_int().is_err());
        assert_eq!(Value::Text("x".into()).as_text().unwrap(), "x");
    }

    #[test]
    fn float_hash_uses_bit_pattern() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float(1.5));
        assert!(set.contains(&Value::Float(1.5)));
        assert!(!set.contains(&Value::Float(2.5)));
    }
}
