//! Strongly-typed identifiers.
//!
//! Using newtypes instead of bare integers keeps the lock manager, the heap
//! file layer and the DORA routing layer from accidentally mixing up, say, a
//! page number and a slot number. All identifiers are small `Copy` types.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a transaction.
///
/// Transaction ids are allocated monotonically by the transaction manager;
/// id `0` is reserved and never handed to a real transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The reserved "no transaction" id.
    pub const INVALID: TxnId = TxnId(0);

    /// Returns `true` if this is a real (allocated) transaction id.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Monotonic allocator for [`TxnId`]s.
///
/// The transaction manager owns one of these; tests may create their own.
#[derive(Debug)]
pub struct TxnIdGenerator {
    next: AtomicU64,
}

impl TxnIdGenerator {
    /// Creates a generator whose first issued id is `1`.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Allocates the next transaction id.
    pub fn allocate(&self) -> TxnId {
        TxnId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns the id that will be allocated next (for diagnostics only).
    pub fn peek(&self) -> TxnId {
        TxnId(self.next.load(Ordering::Relaxed))
    }
}

impl Default for TxnIdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

/// Identifier of a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Identifier of an index (primary or secondary) in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "index#{}", self.0)
    }
}

/// Identifier of a page inside a heap file. Pages are numbered from zero
/// within their table's heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// Identifier of a slot within a slotted page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u16);

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// A record identifier: the physical address of a tuple.
///
/// This mirrors the RID the paper talks about in Sections 4.2.1/4.2.2: DORA's
/// secondary indexes store RIDs (plus the routing fields) in their leaves, and
/// record inserts/deletes lock the RID through the centralized lock manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

impl Rid {
    /// Builds a RID from raw page/slot numbers.
    pub fn new(page: u32, slot: u16) -> Self {
        Self {
            page: PageId(page),
            slot: SlotId(slot),
        }
    }

    /// Packs the RID into a single `u64`, used as a hash key by the lock
    /// manager and as the payload of secondary index entries.
    pub fn pack(self) -> u64 {
        ((self.page.0 as u64) << 16) | self.slot.0 as u64
    }

    /// Inverse of [`Rid::pack`].
    pub fn unpack(packed: u64) -> Self {
        Self {
            page: PageId((packed >> 16) as u32),
            slot: SlotId((packed & 0xFFFF) as u16),
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid({},{})", self.page.0, self.slot.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_generator_is_monotonic() {
        let generator = TxnIdGenerator::new();
        let a = generator.allocate();
        let b = generator.allocate();
        let c = generator.allocate();
        assert!(a < b && b < c);
        assert!(a.is_valid());
    }

    #[test]
    fn invalid_txn_id_is_not_valid() {
        assert!(!TxnId::INVALID.is_valid());
        assert_eq!(TxnId::INVALID, TxnId(0));
    }

    #[test]
    fn rid_pack_roundtrip() {
        let rid = Rid::new(123_456, 789);
        assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    #[test]
    fn rid_pack_distinguishes_page_and_slot() {
        let a = Rid::new(1, 2);
        let b = Rid::new(2, 1);
        assert_ne!(a.pack(), b.pack());
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(TxnId(7).to_string(), "T7");
        assert_eq!(TableId(3).to_string(), "table#3");
        assert_eq!(Rid::new(4, 5).to_string(), "rid(4,5)");
    }
}
