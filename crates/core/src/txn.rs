//! Per-transaction state for DORA executions: rendezvous points, the
//! involved-executor set, the abort flag and the client completion signal.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use dora_common::prelude::*;
use dora_storage::TxnHandle;

use crate::action::{ActionSpec, Scratch};

/// A rendezvous point: a countdown of the actions that still have to report
/// before the next phase (or the commit, for the terminal RVP) may start.
#[derive(Debug)]
pub struct Rvp {
    remaining: AtomicUsize,
}

impl Rvp {
    /// Creates an RVP expecting `count` reports.
    pub fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
        }
    }

    /// Reports one action's completion; returns `true` if this report zeroed
    /// the RVP (and the caller must therefore initiate the next phase).
    pub fn report(&self) -> bool {
        let previous = self.remaining.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(previous > 0, "RVP reported more times than it has actions");
        previous == 1
    }

    /// Remaining reports (diagnostics).
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

/// Signal on which the submitting client blocks until the transaction
/// finishes.
#[derive(Debug, Default)]
pub struct Completion {
    state: Mutex<Option<DbResult<()>>>,
    cond: Condvar,
}

impl Completion {
    /// Publishes the outcome and wakes the waiting client.
    pub fn finish(&self, outcome: DbResult<()>) {
        let mut state = self.state.lock();
        *state = Some(outcome);
        self.cond.notify_all();
    }

    /// Blocks until the outcome is published.
    pub fn wait(&self) -> DbResult<()> {
        let mut state = self.state.lock();
        while state.is_none() {
            self.cond.wait(&mut state);
        }
        state.clone().expect("checked above")
    }

    /// Non-blocking check (used by tests).
    pub fn try_get(&self) -> Option<DbResult<()>> {
        self.state.lock().clone()
    }
}

/// Internal, shared state of one DORA transaction.
pub struct DoraTxnInner {
    /// The storage-level transaction.
    pub handle: TxnHandle,
    /// The scratchpad shared by the transaction's actions.
    pub scratch: Scratch,
    /// Phases not yet dispatched (phase 0 is dispatched immediately, so entry
    /// 0 is always `None` once execution starts).
    pub pending_phases: Mutex<Vec<Option<Vec<ActionSpec>>>>,
    /// One RVP per phase.
    pub rvps: Vec<Rvp>,
    /// Set when any action fails; later actions of the transaction are
    /// skipped and the terminal step rolls back instead of committing.
    aborted: AtomicBool,
    /// First abort reason observed.
    abort_reason: Mutex<Option<DbError>>,
    /// Executors (table, executor index) that executed at least one action
    /// and therefore hold local locks to be released at completion.
    pub involved: Mutex<HashSet<(TableId, usize)>>,
    /// Client completion signal.
    pub completion: Completion,
}

impl std::fmt::Debug for DoraTxnInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoraTxnInner")
            .field("id", &self.id())
            .field("phases", &self.rvps.len())
            .field("aborted", &self.is_aborted())
            .finish()
    }
}

impl DoraTxnInner {
    /// Builds the per-transaction state from an instantiated flow graph.
    pub fn new(handle: TxnHandle, phases: Vec<Vec<ActionSpec>>) -> Arc<Self> {
        let rvps = phases.iter().map(|p| Rvp::new(p.len())).collect();
        let pending_phases = phases.into_iter().map(Some).collect();
        Arc::new(Self {
            handle,
            scratch: Scratch::new(),
            pending_phases: Mutex::new(pending_phases),
            rvps,
            aborted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            involved: Mutex::new(HashSet::new()),
            completion: Completion::default(),
        })
    }

    /// The storage transaction id.
    pub fn id(&self) -> TxnId {
        self.handle.id()
    }

    /// Number of phases in the flow graph.
    pub fn phase_count(&self) -> usize {
        self.rvps.len()
    }

    /// Marks the transaction aborted, retaining the first reason.
    pub fn mark_aborted(&self, reason: DbError) {
        if !self.aborted.swap(true, Ordering::AcqRel) {
            *self.abort_reason.lock() = Some(reason);
        }
    }

    /// `true` once any action has failed.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// The first abort reason, if any.
    pub fn abort_reason(&self) -> Option<DbError> {
        self.abort_reason.lock().clone()
    }

    /// Records that an executor participated in the transaction.
    pub fn note_involved(&self, table: TableId, executor: usize) {
        self.involved.lock().insert((table, executor));
    }
}

/// Public handle for a submitted DORA transaction, used by callers that want
/// to overlap submission with other work before waiting for the outcome.
#[derive(Debug, Clone)]
pub struct DoraTxn {
    pub(crate) inner: Arc<DoraTxnInner>,
}

impl DoraTxn {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.inner.id()
    }

    /// Blocks until the transaction commits or aborts.
    pub fn wait(&self) -> DbResult<()> {
        self.inner.completion.wait()
    }

    /// `true` if the outcome is already known.
    pub fn is_done(&self) -> bool {
        self.inner.completion.try_get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::LocalMode;
    use dora_storage::Database;

    fn spec(id: i64) -> ActionSpec {
        ActionSpec::new("test", TableId(0), Key::int(id), LocalMode::Shared, |_| {
            Ok(())
        })
    }

    #[test]
    fn rvp_reports_zero_exactly_once() {
        let rvp = Rvp::new(3);
        assert!(!rvp.report());
        assert!(!rvp.report());
        assert_eq!(rvp.remaining(), 1);
        assert!(rvp.report());
    }

    #[test]
    fn completion_wakes_waiter() {
        let completion = Arc::new(Completion::default());
        let completion2 = Arc::clone(&completion);
        let waiter = std::thread::spawn(move || completion2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        completion.finish(Ok(()));
        assert!(waiter.join().unwrap().is_ok());
        assert!(completion.try_get().is_some());
    }

    #[test]
    fn abort_keeps_first_reason() {
        let db = Database::for_tests();
        let txn = DoraTxnInner::new(db.begin(), vec![vec![spec(1)], vec![spec(2)]]);
        assert!(!txn.is_aborted());
        txn.mark_aborted(DbError::TxnAborted {
            txn: txn.id(),
            reason: "first".into(),
        });
        txn.mark_aborted(DbError::TxnAborted {
            txn: txn.id(),
            reason: "second".into(),
        });
        assert!(txn.is_aborted());
        match txn.abort_reason() {
            Some(DbError::TxnAborted { reason, .. }) => assert_eq!(reason, "first"),
            other => panic!("unexpected reason {other:?}"),
        }
    }

    #[test]
    fn involved_executors_are_deduplicated() {
        let db = Database::for_tests();
        let txn = DoraTxnInner::new(db.begin(), vec![vec![spec(1)]]);
        txn.note_involved(TableId(1), 0);
        txn.note_involved(TableId(1), 0);
        txn.note_involved(TableId(2), 1);
        assert_eq!(txn.involved.lock().len(), 2);
    }
}
