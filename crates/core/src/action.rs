//! Actions: the unit of work DORA distributes across executors.
//!
//! An action is "a subset of a transaction's code which involves access to a
//! single or a small set of records from the same table" (Section 4.1.2). Its
//! *identifier* is the set of routing-field values of the records it intends
//! to touch; an action whose identifier is empty is a *secondary action*
//! (Section 4.2.2) and is executed by the thread submitting the phase rather
//! than by an executor.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dora_common::prelude::*;
use dora_storage::{Database, TxnHandle};

/// Mode of a DORA thread-local lock. The local lock tables only know shared
/// and exclusive (Section 4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalMode {
    /// Shared: concurrent readers of the same dataset region may interleave
    /// across transactions.
    Shared,
    /// Exclusive: the action intends to modify records in the region.
    Exclusive,
}

impl LocalMode {
    /// Compatibility of two local modes.
    pub fn compatible(self, other: LocalMode) -> bool {
        matches!((self, other), (LocalMode::Shared, LocalMode::Shared))
    }
}

/// Per-transaction scratchpad used to pass data between actions of different
/// phases (the "shared objects across actions of the same transaction used to
/// transfer data between actions with data dependencies").
#[derive(Debug, Default)]
pub struct Scratch {
    values: Mutex<HashMap<String, Value>>,
}

impl Scratch {
    /// Creates an empty scratchpad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `name`, replacing any previous value.
    pub fn put(&self, name: &str, value: impl Into<Value>) {
        self.values.lock().insert(name.to_string(), value.into());
    }

    /// Reads the value stored under `name`.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.values.lock().get(name).cloned()
    }

    /// Reads an integer stored under `name`, failing if absent or non-int.
    pub fn get_int(&self, name: &str) -> DbResult<i64> {
        self.get(name)
            .ok_or_else(|| DbError::InvalidOperation(format!("scratch value {name} missing")))?
            .as_int()
    }

    /// Reads a float stored under `name`, failing if absent or non-numeric.
    pub fn get_float(&self, name: &str) -> DbResult<f64> {
        self.get(name)
            .ok_or_else(|| DbError::InvalidOperation(format!("scratch value {name} missing")))?
            .as_float()
    }
}

/// Everything an action body may touch while it runs on an executor.
pub struct ActionContext<'a> {
    /// The storage manager.
    pub db: &'a Database,
    /// The storage-level transaction the action belongs to.
    pub txn: &'a TxnHandle,
    /// The per-transaction scratchpad (data hand-off between phases).
    pub scratch: &'a Scratch,
}

/// The closure type of an action body.
pub type ActionBody = Box<dyn FnOnce(&ActionContext<'_>) -> DbResult<()> + Send + 'static>;

/// A declarative description of one action inside a transaction flow graph.
///
/// `ActionSpec`s are cheap to build per transaction instance; the engine
/// turns them into runnable actions when the owning phase is dispatched.
pub struct ActionSpec {
    /// Table whose records the action touches.
    pub table: TableId,
    /// Action identifier: routing-field values of the records it will access.
    /// Empty for secondary actions.
    pub identifier: Key,
    /// Local lock mode the action needs on its identifier.
    pub mode: LocalMode,
    /// The code to run.
    pub body: ActionBody,
    /// Human-readable label (used in diagnostics and the execution trace).
    pub label: &'static str,
    /// `true` when the author explicitly built this as a secondary action
    /// (via [`ActionSpec::secondary`] or `Step::secondary`). An action that
    /// is [`is_secondary`](Self::is_secondary) *without* this flag fell back
    /// to the secondary path because its identifier carried no routing
    /// fields — usually a workload bug the engine warns about at dispatch.
    pub declared_secondary: bool,
    /// `true` when the bind-time conflict matrix proved this step's template
    /// conflicts with nothing in the workload: the executor skips the
    /// local-lock-table probe entirely (counter `LockProbesElided`). Set by
    /// `TxnProgram::with_conflicts`, never by hand.
    pub elide_probe: bool,
}

impl std::fmt::Debug for ActionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActionSpec")
            .field("table", &self.table)
            .field("identifier", &self.identifier)
            .field("mode", &self.mode)
            .field("label", &self.label)
            .finish()
    }
}

impl ActionSpec {
    /// Builds an action bound to a specific dataset (identifier contains at
    /// least the leading routing field).
    pub fn new(
        label: &'static str,
        table: TableId,
        identifier: Key,
        mode: LocalMode,
        body: impl FnOnce(&ActionContext<'_>) -> DbResult<()> + Send + 'static,
    ) -> Self {
        Self {
            table,
            identifier,
            mode,
            body: Box::new(body),
            label,
            declared_secondary: false,
            elide_probe: false,
        }
    }

    /// Builds a *secondary action*: one whose identifier contains none of the
    /// routing fields, so no executor can be determined for it. It is
    /// executed by the thread that submits its phase (Section 4.2.2).
    pub fn secondary(
        label: &'static str,
        table: TableId,
        body: impl FnOnce(&ActionContext<'_>) -> DbResult<()> + Send + 'static,
    ) -> Self {
        Self {
            table,
            identifier: Key::empty(),
            mode: LocalMode::Shared,
            body: Box::new(body),
            label,
            declared_secondary: true,
            elide_probe: false,
        }
    }

    /// `true` if this is a secondary action.
    pub fn is_secondary(&self) -> bool {
        self.identifier.is_empty()
    }
}

/// A runnable action: an [`ActionSpec`] bound to its transaction instance.
pub(crate) struct Action {
    pub txn: Arc<crate::txn::DoraTxnInner>,
    pub table: TableId,
    pub identifier: Key,
    pub mode: LocalMode,
    pub phase: usize,
    pub label: &'static str,
    pub body: Option<ActionBody>,
    pub elide_probe: bool,
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Action")
            .field("txn", &self.txn.id())
            .field("identifier", &self.identifier)
            .field("mode", &self.mode)
            .field("phase", &self.phase)
            .field("label", &self.label)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_mode_compatibility() {
        assert!(LocalMode::Shared.compatible(LocalMode::Shared));
        assert!(!LocalMode::Shared.compatible(LocalMode::Exclusive));
        assert!(!LocalMode::Exclusive.compatible(LocalMode::Shared));
        assert!(!LocalMode::Exclusive.compatible(LocalMode::Exclusive));
    }

    #[test]
    fn scratch_roundtrips_values() {
        let scratch = Scratch::new();
        scratch.put("warehouse", 42i64);
        scratch.put("amount", 12.5f64);
        scratch.put("name", "SMITH");
        assert_eq!(scratch.get_int("warehouse").unwrap(), 42);
        assert_eq!(scratch.get_float("amount").unwrap(), 12.5);
        assert_eq!(scratch.get("name").unwrap(), Value::Text("SMITH".into()));
        assert!(scratch.get_int("missing").is_err());
    }

    #[test]
    fn secondary_actions_have_empty_identifiers() {
        let spec = ActionSpec::secondary("probe-by-name", TableId(1), |_| Ok(()));
        assert!(spec.is_secondary());
        let primary = ActionSpec::new(
            "update",
            TableId(1),
            Key::int(3),
            LocalMode::Exclusive,
            |_| Ok(()),
        );
        assert!(!primary.is_secondary());
        assert_eq!(primary.identifier, Key::int(3));
    }
}
