//! Thread-local lock tables.
//!
//! Each executor owns one of these (Section 4.1.3). The table is keyed by
//! action identifiers; conflicts are resolved at the identifier level with
//! key-prefix semantics (two identifiers conflict when one is a prefix of the
//! other), and the only modes are shared and exclusive. Locks are held until
//! the owning transaction commits or aborts, at which point the executor
//! removes the transaction's entries and retries any waiting actions.
//!
//! Because the table is only ever touched by its owning executor thread, it
//! needs no internal synchronization — this is precisely the "much
//! lighter-weight thread-local locking mechanism" the paper substitutes for
//! the centralized lock manager. Operations are nonetheless timed (as
//! [`TimeCategory::DoraLocal`]) so the evaluation can show how small that
//! cost is.
//!
//! Even this lightweight probe can be skipped entirely: when the bind-time
//! conflict analysis ([`crate::conflict`]) proves a step's template conflicts
//! with nothing in the workload, the executor runs the action without ever
//! touching this table (counter `LockProbesElided`). Probes that do land here
//! therefore belong to steps the solver could not dismiss.

use std::collections::HashMap;

use dora_common::prelude::*;
use dora_metrics::{incr, time_section, CounterKind, TimeCategory};

use crate::action::LocalMode;

/// Outcome of a local lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalAcquire {
    /// The lock was granted; the caller may execute the action.
    Granted,
    /// The request conflicts with locks held by these transactions; the
    /// action must wait until they complete.
    Conflict(Vec<TxnId>),
}

/// A thread-local lock table.
#[derive(Debug, Default)]
pub struct LocalLockTable {
    /// Owner lists indexed by exact identifier (the map key *is* the locked
    /// identifier — short keys are stored inline, so populating an entry does
    /// not allocate). Conflict checking scans all entries because key-prefix
    /// overlap cannot be answered by an exact lookup; the table only ever
    /// holds entries for in-flight transactions on one executor, so it stays
    /// small (tens of entries).
    entries: HashMap<Key, Vec<(TxnId, LocalMode)>>,
    /// Total number of grants, for Figure 5's thread-local lock counts.
    acquired: u64,
}

impl LocalLockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire `mode` on `identifier` for `txn`.
    ///
    /// Re-acquisition by the same transaction is idempotent (the same
    /// identifier may be touched by merged actions). The grant is counted as
    /// a DORA local lock for the lock-count experiments.
    pub fn acquire(&mut self, txn: TxnId, identifier: &Key, mode: LocalMode) -> LocalAcquire {
        time_section(TimeCategory::DoraLocal, || {
            let mut conflicts = Vec::new();
            for (locked, owners) in &self.entries {
                if !locked.overlaps(identifier) {
                    continue;
                }
                for (owner, owner_mode) in owners {
                    if *owner == txn {
                        continue;
                    }
                    // Key-prefix semantics: a lock on an identifier covers
                    // every identifier it is a prefix of (and vice versa), so
                    // overlapping identifiers conflict exactly when their
                    // modes are incompatible.
                    if !mode.compatible(*owner_mode) {
                        conflicts.push(*owner);
                    }
                }
            }
            if !conflicts.is_empty() {
                conflicts.sort();
                conflicts.dedup();
                return LocalAcquire::Conflict(conflicts);
            }
            let owners = self.entries.entry(identifier.clone()).or_default();
            if let Some(existing) = owners.iter_mut().find(|(owner, _)| *owner == txn) {
                // Upgrade in place if needed.
                if existing.1 == LocalMode::Shared && mode == LocalMode::Exclusive {
                    existing.1 = LocalMode::Exclusive;
                }
            } else {
                owners.push((txn, mode));
                self.acquired += 1;
                incr(CounterKind::DoraLocalLock);
            }
            LocalAcquire::Granted
        })
    }

    /// Releases every lock `txn` holds (called when the transaction's commit
    /// or abort notification arrives on the completed queue).
    pub fn release_txn(&mut self, txn: TxnId) {
        time_section(TimeCategory::DoraLocal, || {
            self.entries.retain(|_, owners| {
                owners.retain(|(owner, _)| *owner != txn);
                !owners.is_empty()
            });
        })
    }

    /// Number of identifiers currently locked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no locks are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of grants since creation.
    pub fn total_acquired(&self) -> u64 {
        self.acquired
    }

    /// `true` if `txn` holds at least one lock in this table.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.entries
            .values()
            .any(|owners| owners.iter().any(|(owner, _)| *owner == txn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let mut table = LocalLockTable::new();
        assert_eq!(
            table.acquire(TxnId(1), &Key::int(5), LocalMode::Shared),
            LocalAcquire::Granted
        );
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(5), LocalMode::Shared),
            LocalAcquire::Granted
        );
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let mut table = LocalLockTable::new();
        table.acquire(TxnId(1), &Key::int(5), LocalMode::Exclusive);
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(5), LocalMode::Shared),
            LocalAcquire::Conflict(vec![TxnId(1)])
        );
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(5), LocalMode::Exclusive),
            LocalAcquire::Conflict(vec![TxnId(1)])
        );
        // A different identifier is unaffected.
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(6), LocalMode::Exclusive),
            LocalAcquire::Granted
        );
    }

    #[test]
    fn key_prefix_overlap_conflicts() {
        let mut table = LocalLockTable::new();
        // T1 locks the whole warehouse-1 region.
        table.acquire(TxnId(1), &Key::int(1), LocalMode::Exclusive);
        // T2 wants district 3 of warehouse 1: blocked by the prefix lock.
        assert_eq!(
            table.acquire(TxnId(2), &Key::int2(1, 3), LocalMode::Exclusive),
            LocalAcquire::Conflict(vec![TxnId(1)])
        );
        // And the other direction: a fine-grained holder blocks a coarse
        // requester.
        let mut table = LocalLockTable::new();
        table.acquire(TxnId(1), &Key::int2(1, 3), LocalMode::Exclusive);
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(1), LocalMode::Shared),
            LocalAcquire::Conflict(vec![TxnId(1)])
        );
    }

    #[test]
    fn reacquisition_and_upgrade_by_same_txn() {
        let mut table = LocalLockTable::new();
        assert_eq!(
            table.acquire(TxnId(1), &Key::int(7), LocalMode::Shared),
            LocalAcquire::Granted
        );
        assert_eq!(
            table.acquire(TxnId(1), &Key::int(7), LocalMode::Exclusive),
            LocalAcquire::Granted
        );
        // Only one grant is counted for the same (txn, identifier).
        assert_eq!(table.total_acquired(), 1);
        // Another transaction now conflicts with the upgraded lock.
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(7), LocalMode::Shared),
            LocalAcquire::Conflict(vec![TxnId(1)])
        );
    }

    #[test]
    fn release_frees_waiting_region() {
        let mut table = LocalLockTable::new();
        table.acquire(TxnId(1), &Key::int(9), LocalMode::Exclusive);
        table.acquire(TxnId(1), &Key::int(10), LocalMode::Exclusive);
        assert!(table.holds_any(TxnId(1)));
        table.release_txn(TxnId(1));
        assert!(table.is_empty());
        assert!(!table.holds_any(TxnId(1)));
        assert_eq!(
            table.acquire(TxnId(2), &Key::int(9), LocalMode::Exclusive),
            LocalAcquire::Granted
        );
    }

    #[test]
    fn conflict_lists_every_blocking_owner() {
        let mut table = LocalLockTable::new();
        table.acquire(TxnId(1), &Key::int(4), LocalMode::Shared);
        table.acquire(TxnId(2), &Key::int(4), LocalMode::Shared);
        match table.acquire(TxnId(3), &Key::int(4), LocalMode::Exclusive) {
            LocalAcquire::Conflict(owners) => {
                assert_eq!(owners, vec![TxnId(1), TxnId(2)]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }
}
