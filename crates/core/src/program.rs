//! Declarative transaction programs: one definition, two execution plans.
//!
//! The paper's central artifact is the transaction flow graph (Section
//! 4.1.2): a transaction is *one* logical definition that the system
//! decomposes into actions and rendezvous points. [`TxnProgram`] makes that
//! single definition explicit — an ordered list of typed steps
//! ([`Step::read`], [`Step::update`], [`Step::insert`], [`Step::delete`],
//! plus [`Step::secondary`] for unroutable work and [`Step::custom`] as the
//! escape hatch), with [`TxnProgram::rvp`] marking the phase boundaries.
//!
//! Two compilers consume a program:
//!
//! * [`TxnProgram::compile_dora`] lowers the steps to a [`FlowGraph`]: each
//!   phase becomes a set of concurrent [`ActionSpec`]s, probes and in-place
//!   updates run without centralized concurrency control ([`CcMode::None`] —
//!   the executor's local lock table serializes conflicts), and record
//!   inserts/deletes take centralized row locks ([`CcMode::RowOnly`],
//!   Section 4.2.1). A program marked [`TxnProgram::serialized`] compiles to
//!   the one-action-per-phase DORA-S plan of Appendix A.4.
//! * [`TxnProgram::compile_baseline`] lowers the *same* steps to a
//!   sequential closure for the conventional thread-to-transaction engine,
//!   where every access goes through the centralized lock manager
//!   ([`CcMode::Full`]).
//!
//! Step bodies never name a [`CcMode`] themselves; they ask the [`StepCtx`]
//! ([`StepCtx::cc`] for probes/updates, [`StepCtx::write_cc`] for
//! inserts/deletes), which is how one closure serves both architectures.
//!
//! ```
//! use dora_common::prelude::*;
//! use dora_core::{DoraConfig, DoraEngine, OnMissing, TxnProgram};
//! use dora_storage::{ColumnDef, Database, TableSchema};
//!
//! let db = Database::for_tests();
//! let table = db
//!     .create_table(TableSchema::new(
//!         "counters",
//!         vec![ColumnDef::new("id", ValueType::Int), ColumnDef::new("n", ValueType::Int)],
//!         vec![0],
//!     ))
//!     .unwrap();
//! db.load_row(table, vec![Value::Int(1), Value::Int(0)]).unwrap();
//!
//! // One definition: bump counter 1, then (next phase) read it back.
//! let program = || {
//!     TxnProgram::new("bump-and-check")
//!         .update("bump", table, Key::int(1), Key::int(1), OnMissing::Error, |_ctx, row| {
//!             let n = row[1].as_int()?;
//!             row[1] = Value::Int(n + 1);
//!             Ok(())
//!         })
//!         .rvp()
//!         .read("check", table, Key::int(1), Key::int(1), OnMissing::Abort("gone"), |_ctx, row| {
//!             assert!(row[1].as_int()? >= 1);
//!             Ok(())
//!         })
//! };
//!
//! // Compiled for the conventional engine: a sequential closure.
//! let body = program().compile_baseline();
//! let txn = db.begin();
//! body(&db, &txn).unwrap();
//! db.commit(&txn).unwrap();
//!
//! // The same definition compiled for DORA: a two-phase flow graph.
//! let graph = program().compile_dora();
//! assert_eq!(graph.phase_count(), 2);
//! let engine = DoraEngine::new(db, DoraConfig::for_tests());
//! engine.bind_table(table, 2, 1, 100).unwrap();
//! engine.execute(graph).unwrap();
//! engine.shutdown();
//! ```

use std::sync::Arc;

use dora_common::prelude::*;
use dora_storage::{Database, Snapshot, TxnHandle};

use crate::action::{ActionSpec, LocalMode, Scratch};
use crate::flow::FlowGraph;

/// Which execution architecture a compiled step is running under. Not public:
/// step bodies observe it only through the [`StepCtx`] accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Conventional thread-to-transaction execution: full centralized
    /// concurrency control.
    Baseline,
    /// DORA thread-to-data execution: conflicts on routed records are
    /// serialized by the executor's local lock table.
    Dora,
}

/// Everything a program step may touch while it runs, on either engine.
pub struct StepCtx<'a> {
    /// The storage manager.
    pub db: &'a Database,
    /// The storage-level transaction the step belongs to.
    pub txn: &'a TxnHandle,
    /// The per-transaction scratchpad (data hand-off between phases).
    pub scratch: &'a Scratch,
    backend: Backend,
}

impl<'a> StepCtx<'a> {
    fn new(db: &'a Database, txn: &'a TxnHandle, scratch: &'a Scratch, backend: Backend) -> Self {
        Self {
            db,
            txn,
            scratch,
            backend,
        }
    }

    /// Concurrency-control mode for probes and in-place updates of records
    /// the step is routed to: [`CcMode::Full`] under the baseline,
    /// [`CcMode::None`] under DORA (the executor's local lock table already
    /// serializes conflicting actions, Section 4.1.3).
    pub fn cc(&self) -> CcMode {
        match self.backend {
            Backend::Baseline => CcMode::Full,
            Backend::Dora => CcMode::None,
        }
    }

    /// Concurrency-control mode for record inserts and deletes:
    /// [`CcMode::Full`] under the baseline, [`CcMode::RowOnly`] under DORA —
    /// structure-modifying operations still take a centralized row lock
    /// (Section 4.2.1).
    pub fn write_cc(&self) -> CcMode {
        match self.backend {
            Backend::Baseline => CcMode::Full,
            Backend::Dora => CcMode::RowOnly,
        }
    }

    /// A workload abort (invalid input, missing record, ...) attributed to
    /// this transaction. Aborts roll the whole transaction back on either
    /// engine but are not retried.
    pub fn abort(&self, reason: impl Into<String>) -> DbError {
        DbError::TxnAborted {
            txn: self.txn.id(),
            reason: reason.into(),
        }
    }
}

/// What a typed step does when the record it addresses is missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnMissing {
    /// Propagate the storage error (the record is expected to exist; its
    /// absence is a harness bug, not workload input).
    Error,
    /// Abort the transaction with this reason (the workload-level "invalid
    /// input" outcome, e.g. TM1's ~25% abort rate).
    Abort(&'static str),
}

impl OnMissing {
    fn not_found(self, ctx: &StepCtx<'_>, table: TableId, key: &Key) -> DbError {
        match self {
            OnMissing::Abort(reason) => ctx.abort(reason),
            OnMissing::Error => DbError::NotFound {
                table,
                detail: format!("program step key {key}"),
            },
        }
    }
}

/// What a typed insert step does when the new row's key already exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnDuplicate {
    /// Propagate the storage error.
    Error,
    /// Abort the transaction with this reason.
    Abort(&'static str),
}

/// The closure type of a step body. Unlike a raw action body it is `Fn`, not
/// `FnOnce`: the baseline engine re-runs the whole program when it retries a
/// deadlock victim.
pub type StepBody = Box<dyn Fn(&StepCtx<'_>) -> DbResult<()> + Send + Sync>;

/// One step of a transaction program: a unit of work against a small set of
/// records of one table — exactly what DORA calls an *action* (Section
/// 4.1.2), but engine-agnostic.
pub struct Step {
    label: &'static str,
    table: TableId,
    /// Routing identifier (the routing-field values of the records the step
    /// touches). Empty for secondary steps.
    route: Key,
    mode: LocalMode,
    body: StepBody,
    /// `true` only for steps built with [`Step::secondary`] — the author
    /// declared up front that the step cannot be routed. A step whose route
    /// turns out empty *without* this flag falls back to the secondary path
    /// silently, which the engine flags once per bind (routing-coverage
    /// warning).
    declared_secondary: bool,
    /// `true` when the bind-time conflict matrix proved this step's template
    /// conflicts with nothing in the workload, so the executor may skip the
    /// local-lock-table probe. Set only by
    /// [`TxnProgram::with_conflicts`], never by the constructors.
    elide_probe: bool,
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Step")
            .field("label", &self.label)
            .field("table", &self.table)
            .field("route", &self.route)
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl Step {
    /// A free-form routed step: `body` runs with the step's local-lock mode
    /// on the records grouped under `route`. The escape hatch for work the
    /// typed constructors cannot express (loops over dependent keys, RID
    /// accesses resolved through the scratchpad, secondary-index probes of
    /// routable keys).
    pub fn custom(
        label: &'static str,
        table: TableId,
        route: Key,
        mode: LocalMode,
        body: impl Fn(&StepCtx<'_>) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            label,
            table,
            route,
            mode,
            body: Box::new(body),
            declared_secondary: false,
            elide_probe: false,
        }
    }

    /// A *secondary* step (Section 4.2.2): one whose inputs contain none of
    /// `table`'s routing fields, so no executor can be determined for it.
    /// Under DORA it runs on the thread submitting its phase; under the
    /// baseline it is an ordinary sequential step.
    pub fn secondary(
        label: &'static str,
        table: TableId,
        body: impl Fn(&StepCtx<'_>) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            declared_secondary: true,
            ..Self::custom(label, table, Key::empty(), LocalMode::Shared, body)
        }
    }

    /// Reads the record at `key` (primary key) and hands it to `on_row`.
    pub fn read(
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
        on_row: impl Fn(&StepCtx<'_>, &Row) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self::custom(
            label,
            table,
            route,
            LocalMode::Shared,
            move |ctx| match ctx
                .db
                .probe_primary(ctx.txn, table, &key, false, ctx.cc())?
            {
                Some((_, row)) => on_row(ctx, &row),
                None => Err(on_missing.not_found(ctx, table, &key)),
            },
        )
    }

    /// Updates the record at `key` (primary key) in place through `apply`.
    pub fn update(
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
        apply: impl Fn(&StepCtx<'_>, &mut Row) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        Self::custom(
            label,
            table,
            route,
            LocalMode::Exclusive,
            move |ctx| match ctx
                .db
                .update_primary(ctx.txn, table, &key, ctx.cc(), |row| apply(ctx, row))
            {
                Ok(()) => Ok(()),
                Err(DbError::NotFound { .. }) => Err(on_missing.not_found(ctx, table, &key)),
                Err(other) => Err(other),
            },
        )
    }

    /// Inserts the row built by `make_row` (which may read the scratchpad
    /// and the transaction id).
    pub fn insert(
        label: &'static str,
        table: TableId,
        route: Key,
        on_duplicate: OnDuplicate,
        make_row: impl Fn(&StepCtx<'_>) -> DbResult<Row> + Send + Sync + 'static,
    ) -> Self {
        Self::custom(label, table, route, LocalMode::Exclusive, move |ctx| {
            let row = make_row(ctx)?;
            match ctx.db.insert(ctx.txn, table, row, ctx.write_cc()) {
                Ok(_) => Ok(()),
                Err(err @ DbError::DuplicateKey { .. }) => match on_duplicate {
                    OnDuplicate::Abort(reason) => Err(ctx.abort(reason)),
                    OnDuplicate::Error => Err(err),
                },
                Err(other) => Err(other),
            }
        })
    }

    /// Deletes the record at `key` (primary key).
    pub fn delete(
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
    ) -> Self {
        Self::custom(
            label,
            table,
            route,
            LocalMode::Exclusive,
            move |ctx| match ctx.db.delete_primary(ctx.txn, table, &key, ctx.write_cc()) {
                Ok(()) => Ok(()),
                Err(DbError::NotFound { .. }) => Err(on_missing.not_found(ctx, table, &key)),
                Err(other) => Err(other),
            },
        )
    }

    /// `true` if this step has no routing identifier (runs as a secondary
    /// action under DORA).
    pub fn is_secondary(&self) -> bool {
        self.route.is_empty()
    }

    /// The step's label (diagnostics, trace output).
    pub fn label(&self) -> &'static str {
        self.label
    }
}

/// A declarative transaction program: the single source of truth for one
/// transaction, compiled to either execution architecture. See the module
/// docs for the full story and a runnable example.
#[derive(Debug)]
pub struct TxnProgram {
    name: &'static str,
    phases: Vec<Vec<Step>>,
    serial: bool,
}

impl TxnProgram {
    /// Creates an empty program. `name` is the transaction-type label used
    /// by reports and statistics (e.g. `"tpcc-payment"`).
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            phases: vec![Vec::new()],
            serial: false,
        }
    }

    /// The transaction-type label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends a step to the current phase.
    pub fn step(mut self, step: Step) -> Self {
        self.phases.last_mut().expect("always one phase").push(step);
        self
    }

    /// Marks a rendezvous point: steps added afterwards belong to the next
    /// phase and only start once every step of this phase has finished (an
    /// explicit data- or control-dependency boundary).
    pub fn rvp(mut self) -> Self {
        self.phases.push(Vec::new());
        self
    }

    /// Selects the fully serialized execution plan (DORA-S, Appendix A.4):
    /// [`compile_dora`](Self::compile_dora) will put every step in its own
    /// phase, in program order. The baseline compilation is unaffected — it
    /// is sequential either way.
    pub fn serialized(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// `true` if the serialized (DORA-S) plan was selected.
    pub fn is_serialized(&self) -> bool {
        self.serial
    }

    /// Number of steps across all phases.
    pub fn step_count(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// Number of non-empty phases (what
    /// [`compile_dora`](Self::compile_dora) will produce for a non-serial
    /// program).
    pub fn phase_count(&self) -> usize {
        self.phases.iter().filter(|p| !p.is_empty()).count()
    }

    /// Number of secondary (unrouted) steps.
    pub fn secondary_count(&self) -> usize {
        self.phases
            .iter()
            .flatten()
            .filter(|s| s.is_secondary())
            .count()
    }

    /// `true` if every step declares [`LocalMode::Shared`] — the program
    /// never writes, so it is eligible for lock-free snapshot execution.
    pub fn is_read_only(&self) -> bool {
        self.phases
            .iter()
            .flatten()
            .all(|s| s.mode == LocalMode::Shared)
    }

    // ----- typed-step sugar (delegates to the [`Step`] constructors) --------

    /// Appends a [`Step::read`] to the current phase.
    pub fn read(
        self,
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
        on_row: impl Fn(&StepCtx<'_>, &Row) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        self.step(Step::read(label, table, route, key, on_missing, on_row))
    }

    /// Appends a [`Step::update`] to the current phase.
    pub fn update(
        self,
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
        apply: impl Fn(&StepCtx<'_>, &mut Row) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        self.step(Step::update(label, table, route, key, on_missing, apply))
    }

    /// Appends a [`Step::insert`] to the current phase.
    pub fn insert(
        self,
        label: &'static str,
        table: TableId,
        route: Key,
        on_duplicate: OnDuplicate,
        make_row: impl Fn(&StepCtx<'_>) -> DbResult<Row> + Send + Sync + 'static,
    ) -> Self {
        self.step(Step::insert(label, table, route, on_duplicate, make_row))
    }

    /// Appends a [`Step::delete`] to the current phase.
    pub fn delete(
        self,
        label: &'static str,
        table: TableId,
        route: Key,
        key: Key,
        on_missing: OnMissing,
    ) -> Self {
        self.step(Step::delete(label, table, route, key, on_missing))
    }

    /// Appends a [`Step::secondary`] to the current phase.
    pub fn secondary(
        self,
        label: &'static str,
        table: TableId,
        body: impl Fn(&StepCtx<'_>) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        self.step(Step::secondary(label, table, body))
    }

    /// Appends a [`Step::custom`] to the current phase.
    pub fn custom(
        self,
        label: &'static str,
        table: TableId,
        route: Key,
        mode: LocalMode,
        body: impl Fn(&StepCtx<'_>) -> DbResult<()> + Send + Sync + 'static,
    ) -> Self {
        self.step(Step::custom(label, table, route, mode, body))
    }

    /// Applies a bind-time [`ConflictMatrix`](crate::conflict::ConflictMatrix)
    /// to this program before compilation: steps the matrix proved
    /// conflict-free are marked probe-free (their executors skip the
    /// local-lock-table acquire, counter `LockProbesElided`), and a program
    /// the matrix flags as high-abort is switched to the DORA-S serialized
    /// plan (Figure 11) unless the author already hand-set
    /// [`serialized`](Self::serialized).
    ///
    /// Programs the matrix has no declaration for (matched by
    /// [`name`](Self::name)) are returned unchanged — ad-hoc programs stay
    /// fully probed.
    pub fn with_conflicts(mut self, matrix: &crate::conflict::ConflictMatrix) -> Self {
        if !matrix.knows_program(self.name) {
            return self;
        }
        for step in self.phases.iter_mut().flatten() {
            if !step.route.is_empty() && matrix.is_probe_free(self.name, step.label) {
                step.elide_probe = true;
            }
        }
        if !self.serial && matrix.should_serialize(self.name) {
            self.serial = true;
        }
        self
    }

    /// Number of steps currently marked probe-free (diagnostics/tests).
    pub fn elided_count(&self) -> usize {
        self.phases
            .iter()
            .flatten()
            .filter(|s| s.elide_probe)
            .count()
    }

    // ----- compilers ---------------------------------------------------------

    /// Lowers the program to a DORA transaction flow graph: one
    /// [`ActionSpec`] per step, phases split at the [`rvp`](Self::rvp)
    /// boundaries (or one step per phase for a
    /// [`serialized`](Self::serialized) program), secondary steps as
    /// secondary actions.
    pub fn compile_dora(self) -> FlowGraph {
        let serial = self.serial;
        let mut graph = FlowGraph::new();
        for phase in self.phases {
            if phase.is_empty() {
                continue;
            }
            let actions = phase.into_iter().map(Self::lower_step).collect();
            graph = graph.phase_with(actions);
        }
        if serial {
            graph.serialized()
        } else {
            graph
        }
    }

    fn lower_step(step: Step) -> ActionSpec {
        let body = step.body;
        let run = move |actx: &crate::action::ActionContext<'_>| {
            let ctx = StepCtx::new(actx.db, actx.txn, actx.scratch, Backend::Dora);
            body(&ctx)
        };
        if step.route.is_empty() {
            let mut spec = ActionSpec::secondary(step.label, step.table, run);
            spec.declared_secondary = step.declared_secondary;
            spec
        } else {
            let mut spec = ActionSpec::new(step.label, step.table, step.route, step.mode, run);
            spec.elide_probe = step.elide_probe;
            spec
        }
    }

    /// Lowers the program to a sequential transaction body for the
    /// conventional engine: the same steps, in program order, every access
    /// under full centralized concurrency control. The closure may be called
    /// repeatedly (the baseline retries deadlock victims); each call gets a
    /// fresh scratchpad.
    pub fn compile_baseline(self) -> impl Fn(&Database, &TxnHandle) -> DbResult<()> + Send + Sync {
        let steps: Vec<Step> = self.phases.into_iter().flatten().collect();
        move |db, txn| {
            let scratch = Scratch::new();
            let ctx = StepCtx::new(db, txn, &scratch, Backend::Baseline);
            for step in &steps {
                (step.body)(&ctx)?;
            }
            Ok(())
        }
    }

    /// Compiles the program once into a [`PreparedProgram`] handle that can
    /// be executed any number of times, on either engine, without paying the
    /// lowering cost again. The prepared form is the seam servers and
    /// drivers should hold on to; [`compile_dora`](Self::compile_dora) /
    /// [`compile_baseline`](Self::compile_baseline) remain as the
    /// compile-per-call convenience path.
    pub fn prepare(self) -> PreparedProgram {
        PreparedProgram {
            name: self.name,
            phases: Arc::new(self.phases),
            serial: self.serial,
        }
    }
}

/// A [`TxnProgram`] compiled once, executable many times.
///
/// The step list is shared behind an [`Arc`], so cloning a prepared program
/// (one clone per session, per execution) is a reference-count bump — no
/// step bodies are rebuilt. Each [`flow_graph`](Self::flow_graph) call
/// re-materializes only the per-instance [`ActionSpec`] shells around the
/// shared bodies, and [`run_baseline`](Self::run_baseline) runs the steps
/// directly with a fresh scratchpad per call.
#[derive(Clone)]
pub struct PreparedProgram {
    name: &'static str,
    phases: Arc<Vec<Vec<Step>>>,
    serial: bool,
}

impl std::fmt::Debug for PreparedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedProgram")
            .field("name", &self.name)
            .field("steps", &self.step_count())
            .field("serial", &self.serial)
            .finish()
    }
}

impl PreparedProgram {
    /// The transaction-type label.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of steps across all phases.
    pub fn step_count(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// Number of non-empty phases.
    pub fn phase_count(&self) -> usize {
        self.phases.iter().filter(|p| !p.is_empty()).count()
    }

    /// `true` if the serialized (DORA-S) plan was selected.
    pub fn is_serialized(&self) -> bool {
        self.serial
    }

    /// Materializes a DORA transaction flow graph for one execution. The
    /// action bodies borrow the shared step list; only the spec shells
    /// (label, table, route, mode) are rebuilt per instance.
    pub fn flow_graph(&self) -> FlowGraph {
        let mut graph = FlowGraph::new();
        for (phase_idx, phase) in self.phases.iter().enumerate() {
            if phase.is_empty() {
                continue;
            }
            let actions = phase
                .iter()
                .enumerate()
                .map(|(step_idx, step)| {
                    let phases = Arc::clone(&self.phases);
                    let run = move |actx: &crate::action::ActionContext<'_>| {
                        let ctx = StepCtx::new(actx.db, actx.txn, actx.scratch, Backend::Dora);
                        (phases[phase_idx][step_idx].body)(&ctx)
                    };
                    if step.route.is_empty() {
                        let mut spec = ActionSpec::secondary(step.label, step.table, run);
                        spec.declared_secondary = step.declared_secondary;
                        spec
                    } else {
                        let mut spec = ActionSpec::new(
                            step.label,
                            step.table,
                            step.route.clone(),
                            step.mode,
                            run,
                        );
                        spec.elide_probe = step.elide_probe;
                        spec
                    }
                })
                .collect();
            graph = graph.phase_with(actions);
        }
        if self.serial {
            graph.serialized()
        } else {
            graph
        }
    }

    /// Runs the program sequentially on the conventional engine, with a
    /// fresh scratchpad (safe to call repeatedly — the baseline retries
    /// deadlock victims).
    pub fn run_baseline(&self, db: &Database, txn: &TxnHandle) -> DbResult<()> {
        let scratch = Scratch::new();
        let ctx = StepCtx::new(db, txn, &scratch, Backend::Baseline);
        for step in self.phases.iter().flatten() {
            (step.body)(&ctx)?;
        }
        Ok(())
    }

    /// `true` if every step declares [`LocalMode::Shared`] — the program
    /// never writes, so it is eligible for lock-free snapshot execution.
    pub fn is_read_only(&self) -> bool {
        self.phases
            .iter()
            .flatten()
            .all(|s| s.mode == LocalMode::Shared)
    }

    /// Runs the program against a pinned [`Snapshot`]: every read is served
    /// at the snapshot's horizon from the version chains, with no DORA
    /// routing, no local-lock-table probes, and no centralized lock manager
    /// involvement — so it can run on *any* thread, concurrently with OLTP,
    /// without disturbing either engine's partitioning.
    ///
    /// The program must be [`is_read_only`](Self::is_read_only); programs
    /// with write steps are rejected up front (a write slipping through
    /// would also be rejected by the storage layer).
    pub fn run_snapshot(&self, db: &Database, snapshot: &Arc<Snapshot>) -> DbResult<()> {
        if !self.is_read_only() {
            return Err(DbError::InvalidOperation(format!(
                "program `{}` has write steps; snapshot execution is read-only",
                self.name
            )));
        }
        let txn = db.begin_snapshot(Arc::clone(snapshot));
        let scratch = Scratch::new();
        let result = {
            let ctx = StepCtx::new(db, &txn, &scratch, Backend::Baseline);
            self.phases
                .iter()
                .flatten()
                .try_for_each(|step| (step.body)(&ctx))
        };
        match result {
            Ok(()) => db.commit(&txn),
            Err(err) => {
                let _ = db.abort(&txn);
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DoraConfig;
    use crate::engine::DoraEngine;
    use dora_storage::{ColumnDef, TableSchema};
    use std::sync::Arc;

    fn counter_db() -> (Arc<Database>, TableId) {
        let db = Database::for_tests();
        let table = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("n", ValueType::Int),
                ],
                vec![0],
            ))
            .unwrap();
        for id in 1..=8i64 {
            db.load_row(table, vec![Value::Int(id), Value::Int(0)])
                .unwrap();
        }
        (db, table)
    }

    fn counter_value(db: &Database, table: TableId, id: i64) -> i64 {
        let txn = db.begin();
        let (_, row) = db
            .probe_primary(&txn, table, &Key::int(id), false, CcMode::Full)
            .unwrap()
            .unwrap();
        let n = row[1].as_int().unwrap();
        db.commit(&txn).unwrap();
        n
    }

    fn bump_program(table: TableId, id: i64) -> TxnProgram {
        TxnProgram::new("bump").update(
            "bump",
            table,
            Key::int(id),
            Key::int(id),
            OnMissing::Error,
            |_ctx, row| {
                let n = row[1].as_int()?;
                row[1] = Value::Int(n + 1);
                Ok(())
            },
        )
    }

    #[test]
    fn phases_tile_over_steps() {
        let (_db, table) = counter_db();
        let program = bump_program(table, 1)
            .step(Step::read(
                "peek",
                table,
                Key::int(2),
                Key::int(2),
                OnMissing::Error,
                |_, _| Ok(()),
            ))
            .rvp()
            .secondary("probe", table, |_| Ok(()));
        assert_eq!(program.step_count(), 3);
        assert_eq!(program.phase_count(), 2);
        assert_eq!(program.secondary_count(), 1);
        let graph = program.compile_dora();
        assert_eq!(graph.phase_count(), 2);
        assert_eq!(graph.actions_in(0), 2);
        assert_eq!(graph.actions_in(1), 1);
    }

    #[test]
    fn trailing_and_empty_phases_are_dropped() {
        let (_db, table) = counter_db();
        let graph = bump_program(table, 1).rvp().rvp().compile_dora();
        assert_eq!(graph.phase_count(), 1);
    }

    #[test]
    fn serialized_program_compiles_to_one_action_per_phase() {
        let (_db, table) = counter_db();
        let program = bump_program(table, 1)
            .step(bump_step(table, 2))
            .rvp()
            .step(bump_step(table, 3))
            .serialized(true);
        assert!(program.is_serialized());
        let graph = program.compile_dora();
        assert_eq!(graph.phase_count(), 3);
        assert!((0..3).all(|p| graph.actions_in(p) == 1));
    }

    fn bump_step(table: TableId, id: i64) -> Step {
        Step::update(
            "bump",
            table,
            Key::int(id),
            Key::int(id),
            OnMissing::Error,
            |_ctx, row| {
                let n = row[1].as_int()?;
                row[1] = Value::Int(n + 1);
                Ok(())
            },
        )
    }

    #[test]
    fn baseline_and_dora_compilations_apply_the_same_effects() {
        let (db_base, table) = counter_db();
        let (db_dora, _) = counter_db();
        let engine = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 8).unwrap();

        for id in 1..=4i64 {
            let body = bump_program(table, id).compile_baseline();
            let txn = db_base.begin();
            body(&db_base, &txn).unwrap();
            db_base.commit(&txn).unwrap();
            engine
                .execute(bump_program(table, id).compile_dora())
                .unwrap();
        }
        for id in 1..=8i64 {
            assert_eq!(
                counter_value(&db_base, table, id),
                counter_value(&db_dora, table, id),
                "counter {id} diverged"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn baseline_retry_gets_a_fresh_scratchpad() {
        let (db, table) = counter_db();
        let body = TxnProgram::new("scratch")
            .custom("stash", table, Key::int(1), LocalMode::Shared, |ctx| {
                // A retry must not see the previous attempt's value.
                assert!(ctx.scratch.get("seen").is_none());
                ctx.scratch.put("seen", 1i64);
                Ok(())
            })
            .compile_baseline();
        for _ in 0..3 {
            let txn = db.begin();
            body(&db, &txn).unwrap();
            db.abort(&txn).unwrap();
        }
    }

    #[test]
    fn typed_steps_map_missing_and_duplicate_outcomes() {
        let (db, table) = counter_db();
        let run = |program: TxnProgram| {
            let body = program.compile_baseline();
            let txn = db.begin();
            let result = body(&db, &txn);
            db.abort(&txn).unwrap();
            result
        };
        // Missing record: Abort maps to TxnAborted, Error propagates NotFound.
        let aborted = run(TxnProgram::new("t").delete(
            "del",
            table,
            Key::int(99),
            Key::int(99),
            OnMissing::Abort("nothing to delete"),
        ));
        assert!(matches!(aborted, Err(DbError::TxnAborted { .. })));
        let missing = run(TxnProgram::new("t").update(
            "upd",
            table,
            Key::int(99),
            Key::int(99),
            OnMissing::Error,
            |_, _| Ok(()),
        ));
        assert!(matches!(missing, Err(DbError::NotFound { .. })));
        // Duplicate insert: Abort maps to TxnAborted.
        let duplicate = run(TxnProgram::new("t").insert(
            "ins",
            table,
            Key::int(1),
            OnDuplicate::Abort("exists"),
            |_| Ok(vec![Value::Int(1), Value::Int(7)]),
        ));
        assert!(matches!(duplicate, Err(DbError::TxnAborted { .. })));
    }

    #[test]
    fn prepared_program_executes_many_times_on_both_engines() {
        let (db_base, table) = counter_db();
        let (db_dora, _) = counter_db();
        let engine = DoraEngine::new(Arc::clone(&db_dora), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 8).unwrap();

        // Compile once; execute the same handle repeatedly on both engines.
        let prepared = bump_program(table, 3).prepare();
        assert_eq!(prepared.name(), "bump");
        assert_eq!(prepared.step_count(), 1);
        assert_eq!(prepared.phase_count(), 1);
        for _ in 0..5 {
            let txn = db_base.begin();
            prepared.run_baseline(&db_base, &txn).unwrap();
            db_base.commit(&txn).unwrap();
            engine.execute(prepared.flow_graph()).unwrap();
        }
        assert_eq!(counter_value(&db_base, table, 3), 5);
        assert_eq!(counter_value(&db_dora, table, 3), 5);
        engine.shutdown();
    }

    #[test]
    fn prepared_flow_graph_preserves_shape_and_serialization() {
        let (_db, table) = counter_db();
        let prepared = bump_program(table, 1)
            .step(bump_step(table, 2))
            .rvp()
            .secondary("probe", table, |_| Ok(()))
            .serialized(true)
            .prepare();
        assert!(prepared.is_serialized());
        // Like compile_dora, a serialized prepared program lowers to one
        // action per phase, and the handle can do it again and again.
        for _ in 0..2 {
            let graph = prepared.flow_graph();
            assert_eq!(graph.phase_count(), 3);
            assert!((0..3).all(|p| graph.actions_in(p) == 1));
        }
        let clone = prepared.clone();
        assert_eq!(clone.step_count(), prepared.step_count());
    }

    #[test]
    fn with_conflicts_marks_probe_free_steps_and_auto_serializes() {
        use crate::conflict::{ConflictMatrix, KeyAtom, ProgramTemplate, StepTemplate};
        let (_db, table) = counter_db();
        // "bump" writes column 1 and races itself → keeps its probe, and its
        // 0.5 abort rate pushes the program over the DORA-S threshold.
        // "peek" declares no column reads → dismissed against every writer.
        let templates = vec![ProgramTemplate::new("mixed")
            .step(
                StepTemplate::write("bump", table, vec![KeyAtom::Param("id")])
                    .writes([1])
                    .abort_rate(0.5),
            )
            .step(StepTemplate::read(
                "peek",
                table,
                vec![KeyAtom::Param("id")],
            ))];
        let matrix = ConflictMatrix::analyze(&templates, 0.1);

        let program = TxnProgram::new("mixed")
            .step(bump_step(table, 1))
            .read(
                "peek",
                table,
                Key::int(2),
                Key::int(2),
                OnMissing::Error,
                |_, _| Ok(()),
            )
            .with_conflicts(&matrix);
        assert_eq!(program.elided_count(), 1);
        assert!(program.is_serialized(), "0.5 ≥ 0.1 with a conflicting step");
        let described = program.compile_dora().describe();
        let flat: Vec<_> = described.iter().flatten().collect();
        assert!(flat
            .iter()
            .any(|s| s.contains("peek") && s.contains("[probe-free]")));
        assert!(!flat
            .iter()
            .any(|s| s.contains("bump") && s.contains("[probe-free]")));

        // A program the matrix has no declaration for is returned unchanged.
        let adhoc = bump_program(table, 1).with_conflicts(&matrix);
        assert_eq!(adhoc.elided_count(), 0);
        assert!(!adhoc.is_serialized());

        // `prepare()` keeps the marks: the re-lowered flow graph still
        // carries them.
        let prepared = TxnProgram::new("mixed")
            .step(bump_step(table, 1))
            .read(
                "peek",
                table,
                Key::int(2),
                Key::int(2),
                OnMissing::Error,
                |_, _| Ok(()),
            )
            .with_conflicts(&matrix)
            .prepare();
        let flat: Vec<String> = prepared
            .flow_graph()
            .describe()
            .into_iter()
            .flatten()
            .collect();
        assert!(flat.iter().any(|s| s.contains("[probe-free]")));
    }

    #[test]
    fn step_ctx_cc_modes_differ_per_backend() {
        let db = Database::for_tests();
        let txn = db.begin();
        let scratch = Scratch::new();
        let base = StepCtx::new(&db, &txn, &scratch, Backend::Baseline);
        assert_eq!(base.cc(), CcMode::Full);
        assert_eq!(base.write_cc(), CcMode::Full);
        let dora = StepCtx::new(&db, &txn, &scratch, Backend::Dora);
        assert_eq!(dora.cc(), CcMode::None);
        assert_eq!(dora.write_cc(), CcMode::RowOnly);
        db.abort(&txn).unwrap();
    }
}
