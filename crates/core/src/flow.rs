//! Transaction flow graphs.
//!
//! A transaction flow graph (Section 4.1.2) organizes a transaction's actions
//! into *phases* separated by rendezvous points (RVPs). Actions within a
//! phase may execute concurrently on different executors; an RVP is reached
//! only when every action of the phase has reported, and the executor that
//! zeroes the RVP initiates the next phase (or commits, at the terminal RVP).
//!
//! The TPC-C Payment graph of Figure 4, for example, has two phases:
//! `[R+U(Warehouse), R+U(District), R+U(Customer)] → RVP1 → [I(History)] →
//! RVP2 (terminal)`.

use crate::action::ActionSpec;

/// A declarative transaction flow graph: an ordered list of phases, each a
/// list of [`ActionSpec`]s. Workload code builds one per transaction
/// instance and hands it to [`crate::DoraEngine::execute`].
#[derive(Debug, Default)]
pub struct FlowGraph {
    phases: Vec<Vec<ActionSpec>>,
}

impl FlowGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new phase; subsequent [`push`](Self::push)es land in it.
    /// Phases left empty are dropped at instantiation, so an extra
    /// `begin_phase` is harmless rather than an error.
    pub fn begin_phase(&mut self) -> &mut Self {
        self.phases.push(Vec::new());
        self
    }

    /// Appends an action to the current (last-opened) phase, opening phase 0
    /// first if the graph is still empty. Never panics and never indexes by a
    /// caller-supplied phase number — together with
    /// [`begin_phase`](Self::begin_phase) and
    /// [`phase_with`](Self::phase_with) this is the whole construction
    /// surface, and it is what [`crate::TxnProgram::compile_dora`] lowers
    /// programs through.
    pub fn push(&mut self, action: ActionSpec) -> &mut Self {
        if self.phases.is_empty() {
            self.phases.push(Vec::new());
        }
        self.phases
            .last_mut()
            .expect("just ensured a phase exists")
            .push(action);
        self
    }

    /// Chaining convenience: appends a phase containing exactly the given
    /// actions.
    pub fn phase_with(mut self, actions: Vec<ActionSpec>) -> Self {
        self.phases.push(actions);
        self
    }

    /// Inserts an empty rendezvous point after every action, fully
    /// serializing the graph: phase boundaries are exactly what the resource
    /// manager adds when it decides a transaction with a high abort rate
    /// should run serially (Appendix A.4, the DORA-S plan of Figure 11).
    pub fn serialized(self) -> Self {
        let mut serial = FlowGraph::new();
        for phase in self.phases {
            for action in phase {
                serial.phases.push(vec![action]);
            }
        }
        serial
    }

    /// Number of phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// Number of actions in `phase`.
    pub fn actions_in(&self, phase: usize) -> usize {
        self.phases.get(phase).map(Vec::len).unwrap_or(0)
    }

    /// Total number of actions across all phases.
    pub fn action_count(&self) -> usize {
        self.phases.iter().map(Vec::len).sum()
    }

    /// `true` if the graph has no phases or only empty phases.
    pub fn is_empty(&self) -> bool {
        self.action_count() == 0
    }

    /// Human-readable structure of the graph: one vector per phase, one
    /// `"label(identifier)"` entry per action. Used by the harness to print
    /// Figure 4-style graph descriptions and by diagnostics.
    pub fn describe(&self) -> Vec<Vec<String>> {
        self.phases
            .iter()
            .map(|phase| {
                phase
                    .iter()
                    .map(|action| {
                        if action.is_secondary() {
                            format!("{}[secondary]", action.label)
                        } else if action.elide_probe {
                            format!("{}{}[probe-free]", action.label, action.identifier)
                        } else {
                            format!("{}{}", action.label, action.identifier)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Consumes the graph, returning its phases. Used by the engine when it
    /// instantiates the transaction.
    pub(crate) fn into_phases(self) -> Vec<Vec<ActionSpec>> {
        // Empty phases would deadlock the RVP counting; drop them defensively.
        self.phases.into_iter().filter(|p| !p.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::LocalMode;
    use dora_common::prelude::*;

    fn action(label: &'static str, id: i64) -> ActionSpec {
        ActionSpec::new(
            label,
            TableId(0),
            Key::int(id),
            LocalMode::Exclusive,
            |_| Ok(()),
        )
    }

    #[test]
    fn payment_shaped_graph_has_two_phases() {
        // Mirrors Figure 4: three actions in phase one, the History insert in
        // phase two.
        let mut graph = FlowGraph::new();
        graph
            .push(action("warehouse", 1))
            .push(action("district", 1))
            .push(action("customer", 1));
        graph.begin_phase().push(action("history", 1));

        assert_eq!(graph.phase_count(), 2);
        assert_eq!(graph.actions_in(0), 3);
        assert_eq!(graph.actions_in(1), 1);
        assert_eq!(graph.action_count(), 4);
        assert!(!graph.is_empty());
    }

    #[test]
    fn serialized_graph_has_one_action_per_phase() {
        let graph = FlowGraph::new()
            .phase_with(vec![action("a", 1), action("b", 2)])
            .phase_with(vec![action("c", 3)]);
        let serial = graph.serialized();
        assert_eq!(serial.phase_count(), 3);
        assert!((0..3).all(|p| serial.actions_in(p) == 1));
    }

    #[test]
    fn empty_phases_are_dropped_on_instantiation() {
        let mut graph = FlowGraph::new();
        graph.begin_phase();
        graph.begin_phase().push(action("only", 1));
        graph.begin_phase();
        let phases = graph.into_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].len(), 1);
    }

    #[test]
    fn push_on_an_empty_graph_opens_the_first_phase() {
        let mut graph = FlowGraph::new();
        graph.push(action("first", 1));
        assert_eq!(graph.phase_count(), 1);
        assert_eq!(graph.actions_in(0), 1);
    }
}
