//! The DORA resource manager.
//!
//! The paper's resource manager (Sections 4.1.1, A.2.1, A.4) has two jobs:
//!
//! 1. **Load balancing**: it monitors the load of each executor and, when the
//!    assignment becomes disproportional, modifies the table's routing rule.
//!    Changing a rule uses the drain protocol: the affected executors stop
//!    serving actions of new transactions until their in-flight transactions
//!    leave the system, then the rule is swapped and deferred actions are
//!    re-dispatched under the new rule.
//! 2. **Abort-rate monitoring**: for transactions with non-negligible abort
//!    rates, running their actions in parallel wastes work; the resource
//!    manager tracks abort rates per transaction type and recommends the
//!    serialized flow graph once the rate crosses a threshold (the DORA-S
//!    plan of Figure 11).

use std::collections::HashMap;

use parking_lot::Mutex;

use dora_common::prelude::*;
use dora_metrics::{incr, CounterKind};

use crate::adaptive::balanced_rule;
use crate::config::DoraConfig;
use crate::engine::DoraEngine;
use crate::routing::RoutingRule;

/// Tracks commit/abort outcomes per transaction type and recommends when to
/// switch to a serialized flow graph.
#[derive(Debug, Default)]
pub struct AbortRateMonitor {
    stats: Mutex<HashMap<&'static str, (u64, u64)>>,
}

impl AbortRateMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of one transaction of the given type.
    pub fn record(&self, txn_type: &'static str, aborted: bool) {
        let mut stats = self.stats.lock();
        let entry = stats.entry(txn_type).or_insert((0, 0));
        entry.0 += 1;
        if aborted {
            entry.1 += 1;
        }
    }

    /// Observed abort rate (0..=1) for the transaction type.
    pub fn abort_rate(&self, txn_type: &'static str) -> f64 {
        let stats = self.stats.lock();
        match stats.get(txn_type) {
            Some((total, aborted)) if *total > 0 => *aborted as f64 / *total as f64,
            _ => 0.0,
        }
    }

    /// Number of observations for the transaction type.
    pub fn samples(&self, txn_type: &'static str) -> u64 {
        self.stats
            .lock()
            .get(txn_type)
            .map(|(total, _)| *total)
            .unwrap_or(0)
    }

    /// `true` once the abort rate is high enough (and enough samples exist)
    /// that the serialized plan is the better choice (Appendix A.4).
    pub fn should_serialize(&self, txn_type: &'static str, config: &DoraConfig) -> bool {
        self.samples(txn_type) >= config.abort_monitor_min_samples
            && self.abort_rate(txn_type) >= config.serialize_abort_threshold
    }
}

/// Runtime manager for routing rules and execution plans.
pub struct ResourceManager {
    config: DoraConfig,
    monitor: AbortRateMonitor,
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager").finish()
    }
}

impl ResourceManager {
    /// Creates a resource manager with the given configuration.
    pub fn new(config: DoraConfig) -> Self {
        Self {
            config,
            monitor: AbortRateMonitor::new(),
        }
    }

    /// The abort-rate monitor.
    pub fn monitor(&self) -> &AbortRateMonitor {
        &self.monitor
    }

    /// The configuration.
    pub fn config(&self) -> &DoraConfig {
        &self.config
    }

    /// Replaces the routing rule of `table` using the drain protocol of
    /// Appendix A.2.1: every executor of the table drains its in-flight
    /// transactions, the rule is swapped, and deferred actions are
    /// re-dispatched under the new rule. Blocks until the swap is complete.
    pub fn rebalance(
        &self,
        engine: &DoraEngine,
        table: TableId,
        new_rule: RoutingRule,
    ) -> DbResult<()> {
        if new_rule.executor_count() != engine.executor_count(table) {
            return Err(DbError::InvalidOperation(format!(
                "new rule defines {} datasets but {table} has {} executors",
                new_rule.executor_count(),
                engine.executor_count(table)
            )));
        }
        let barriers = engine.start_drain(table)?;
        for barrier in &barriers {
            barrier.wait();
        }
        engine.finish_resize(table, new_rule)?;
        incr(CounterKind::RoutingResizes);
        Ok(())
    }

    /// Checks the per-executor load of `table` and, if the busiest executor
    /// exceeds the average by the configured imbalance ratio, computes and
    /// installs a rebalanced rule. Returns `true` when a rebalance happened.
    ///
    /// The rule is synthesized by [`balanced_rule`] — the same equal-load
    /// quantile splitter the adaptive controller uses, so the one-shot and
    /// continuous paths cannot drift apart — honoring the configured minimum
    /// range width.
    pub fn rebalance_if_skewed(
        &self,
        engine: &DoraEngine,
        table: TableId,
        key_low: i64,
        key_high: i64,
    ) -> DbResult<bool> {
        let loads = engine.executor_loads(table)?;
        if loads.len() < 2 {
            return Ok(false);
        }
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return Ok(false);
        }
        let average = total as f64 / loads.len() as f64;
        let busiest = *loads.iter().max().expect("non-empty") as f64;
        if busiest / average < self.config.rebalance_imbalance_ratio {
            return Ok(false);
        }
        let Some(current) = engine.routing().rule(table) else {
            return Ok(false);
        };
        let Some(rule) = balanced_rule(
            &current,
            &loads,
            (key_low, key_high),
            self.config.adaptive.min_range_width,
        ) else {
            return Ok(false);
        };
        self.rebalance(engine, table, rule)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionSpec, LocalMode};
    use crate::flow::FlowGraph;
    use dora_storage::{ColumnDef, Database, TableSchema};
    use std::sync::Arc;

    #[test]
    fn abort_rate_monitor_recommends_serialization() {
        let config = DoraConfig {
            abort_monitor_min_samples: 10,
            serialize_abort_threshold: 0.2,
            ..DoraConfig::default()
        };
        let monitor = AbortRateMonitor::new();
        for i in 0..20 {
            monitor.record("tm1-upd-sub-data", i % 3 == 0);
        }
        assert_eq!(monitor.samples("tm1-upd-sub-data"), 20);
        assert!(monitor.abort_rate("tm1-upd-sub-data") > 0.2);
        assert!(monitor.should_serialize("tm1-upd-sub-data", &config));
        assert!(!monitor.should_serialize("unknown", &config));
    }

    #[test]
    fn abort_rate_requires_minimum_samples() {
        let config = DoraConfig {
            abort_monitor_min_samples: 100,
            ..DoraConfig::default()
        };
        let monitor = AbortRateMonitor::new();
        for _ in 0..10 {
            monitor.record("rare", true);
        }
        assert_eq!(monitor.abort_rate("rare"), 1.0);
        assert!(!monitor.should_serialize("rare", &config));
    }

    fn counters_engine() -> (Arc<Database>, TableId, DoraEngine) {
        let db = Database::for_tests();
        let table = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("n", ValueType::Int),
                ],
                vec![0],
            ))
            .unwrap();
        for id in 1..=100i64 {
            db.load_row(table, vec![Value::Int(id), Value::Int(0)])
                .unwrap();
        }
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();
        (db, table, engine)
    }

    fn bump(table: TableId, id: i64) -> FlowGraph {
        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "bump",
            table,
            Key::int(id),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(id), CcMode::None, |row| {
                        let n = row[1].as_int()?;
                        row[1] = Value::Int(n + 1);
                        Ok(())
                    })
            },
        ));
        graph
    }

    #[test]
    fn rebalance_swaps_rule_and_work_continues() {
        let (db, table, engine) = counters_engine();
        let manager = ResourceManager::new(DoraConfig::for_tests());
        // Run some transactions, rebalance so executor 1 owns almost
        // everything, then run more transactions: all must still apply
        // exactly once.
        for id in 1..=20i64 {
            engine.execute(bump(table, id)).unwrap();
        }
        manager
            .rebalance(
                &engine,
                table,
                RoutingRule::Range {
                    boundaries: vec![5],
                },
            )
            .unwrap();
        assert_eq!(
            engine.routing().rule(table).unwrap(),
            RoutingRule::Range {
                boundaries: vec![5]
            }
        );
        for id in 1..=20i64 {
            engine.execute(bump(table, id)).unwrap();
        }
        let check = db.begin();
        for id in 1..=20i64 {
            let (_, row) = db
                .probe_primary(&check, table, &Key::int(id), false, CcMode::Full)
                .unwrap()
                .unwrap();
            assert_eq!(
                row[1],
                Value::Int(2),
                "counter {id} must be bumped exactly twice"
            );
        }
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn rebalance_rejects_mismatched_executor_count() {
        let (_db, table, engine) = counters_engine();
        let manager = ResourceManager::new(DoraConfig::for_tests());
        let result = manager.rebalance(&engine, table, RoutingRule::even_ranges(1, 100, 3));
        assert!(result.is_err());
        engine.shutdown();
    }

    #[test]
    fn skew_detection_rebalances_boundaries() {
        let (_db, table, engine) = counters_engine();
        let manager = ResourceManager::new(DoraConfig::for_tests());
        // Hammer executor 0 (keys 1..=50) so the load becomes skewed.
        for _ in 0..30 {
            engine.execute(bump(table, 10)).unwrap();
        }
        let rebalanced = manager.rebalance_if_skewed(&engine, table, 1, 100).unwrap();
        assert!(rebalanced, "skewed load must trigger a rebalance");
        // After the rebalance executor 0's share of the key domain shrinks.
        match engine.routing().rule(table).unwrap() {
            RoutingRule::Range { boundaries } => {
                assert_eq!(boundaries.len(), 1);
                assert!(
                    boundaries[0] < 51,
                    "boundary must move left, got {boundaries:?}"
                );
            }
            other => panic!("unexpected rule {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn balanced_load_does_not_rebalance() {
        let (_db, table, engine) = counters_engine();
        let manager = ResourceManager::new(DoraConfig::for_tests());
        for id in [10, 60, 20, 70, 30, 80] {
            engine.execute(bump(table, id)).unwrap();
        }
        assert!(!manager.rebalance_if_skewed(&engine, table, 1, 100).unwrap());
        engine.shutdown();
    }
}
