//! The DORA engine: binding executors to data, dispatching transaction flow
//! graphs, and the terminal-RVP commit protocol.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};

use dora_common::prelude::*;
use dora_metrics::{incr, incr_by, time_section, CounterKind, TimeCategory};
use dora_storage::Database;

use crate::action::{Action, ActionContext, ActionSpec};
use crate::config::DoraConfig;
use crate::executor::{ExecutorShared, ExecutorWorker, InboxGuard, Message, ResizeBarrier};
use crate::flow::FlowGraph;
use crate::routing::{RoutingRule, RoutingTable};
use crate::txn::{DoraTxn, DoraTxnInner};

/// Engine-internal shared state (referenced by every executor thread).
pub(crate) struct EngineInner {
    db: Arc<Database>,
    config: DoraConfig,
    routing: RoutingTable,
    executors: RwLock<Vec<Vec<Arc<ExecutorShared>>>>,
    /// Routing-key domain `[low, high]` per table, recorded at bind time so
    /// the adaptive repartitioner knows the span it may redistribute.
    domains: RwLock<Vec<Option<(i64, i64)>>>,
    /// Total executor threads spawned, across all tables — the index used to
    /// round-robin executors over the partitioned log streams.
    executors_spawned: AtomicUsize,
    /// `(table, label)` pairs already flagged for silently falling back to
    /// the secondary path (routed step with an empty identifier). Reset for
    /// a table each time it is bound, so every bind gets one warning per
    /// offending step.
    warned_secondary: Mutex<HashSet<(TableId, &'static str)>>,
    shutting_down: AtomicBool,
}

impl EngineInner {
    /// The storage manager.
    pub(crate) fn db(&self) -> &Database {
        &self.db
    }

    /// The engine configuration.
    pub(crate) fn config(&self) -> &DoraConfig {
        &self.config
    }

    fn executors_for(&self, table: TableId) -> DbResult<Vec<Arc<ExecutorShared>>> {
        let executors = self.executors.read();
        executors
            .get(table.0 as usize)
            .filter(|list| !list.is_empty())
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("executors for {table}")))
    }

    fn executor(&self, table: TableId, index: usize) -> DbResult<Arc<ExecutorShared>> {
        let executors = self.executors_for(table)?;
        executors
            .get(index)
            .cloned()
            .ok_or_else(|| DbError::NoSuchObject(format!("executor {index} of {table}")))
    }

    /// Dispatches one phase of a transaction: routes each action to its
    /// executor and enqueues them *atomically* — the incoming queues of every
    /// involved executor are latched (in a global executor order) before any
    /// action is pushed, which is DORA's deadlock-avoidance rule for
    /// transactions sharing a flow graph (Section 4.2.3). Secondary actions
    /// (empty identifier) are executed directly by the calling thread
    /// (Section 4.2.2).
    pub(crate) fn dispatch_phase(self: &Arc<Self>, txn: &Arc<DoraTxnInner>, phase: usize) {
        let specs = {
            let mut pending = txn.pending_phases.lock();
            match pending.get_mut(phase).and_then(Option::take) {
                Some(specs) => specs,
                None => return,
            }
        };
        let mut secondary = Vec::new();
        let mut routed: Vec<(Arc<ExecutorShared>, Action)> = Vec::new();
        for spec in specs {
            if spec.is_secondary() {
                if !spec.declared_secondary {
                    // Undeclared fallback: a routed step whose identifier
                    // carried no routing fields. Counted on every dispatch so
                    // benchmarks can see the rate; warned once per step.
                    incr(CounterKind::SecondaryFallbacks);
                    self.warn_undeclared_secondary(spec.table, spec.label);
                }
                secondary.push(spec);
                continue;
            }
            match self.route_spec(txn, phase, spec) {
                Ok(pair) => routed.push(pair),
                Err(error) => {
                    // Routing failures abort the transaction; the action is
                    // reported as finished so the RVP still converges.
                    txn.mark_aborted(error);
                    self.report_and_advance(txn, phase);
                }
            }
        }

        if !routed.is_empty() {
            time_section(TimeCategory::EngineOverhead, || {
                if self.config.message_batching {
                    self.push_phase_batched(routed);
                } else {
                    // Per-message baseline: one lock/unlock and one wake per
                    // action, pushes not latched together (see
                    // `DoraConfig::message_batching`).
                    for (executor, action) in routed {
                        executor.enqueue(Message::Action(action));
                        incr(CounterKind::DoraMessages);
                        incr(CounterKind::DispatchBatches);
                    }
                }
            });
        }

        // Secondary actions run on this thread — the thread that submitted
        // the phase — using the routing fields stored in the secondary index
        // leaves to reach the right records (Section 4.2.2).
        for spec in secondary {
            self.execute_secondary(txn, phase, spec);
        }
    }

    /// Flags a routed step that silently fell back to the secondary path
    /// because its identifier carried none of the table's routing fields —
    /// almost always a workload authoring bug (the step meant to route but
    /// its key columns don't cover the routing fields). Warned once per
    /// `(table, step label)` per bind so a hot loop cannot flood stderr; the
    /// bind-time conflict-analysis coverage report lists the same steps up
    /// front for workloads that declare templates, and the
    /// `SecondaryFallbacks` counter records every occurrence.
    fn warn_undeclared_secondary(&self, table: TableId, label: &'static str) {
        if self.warned_secondary.lock().insert((table, label)) {
            eprintln!(
                "warning: step `{label}` on {table} has no routing fields and fell back to \
                 the secondary path; declare it with Step::secondary (or fix its route) if \
                 that is intended — see the bind-time routing coverage report"
            );
        }
    }

    /// Pushes one phase's routed actions grouped per destination executor:
    /// every destination inbox is latched in the global executor order before
    /// any action is pushed (DORA's deadlock-avoidance rule for transactions
    /// sharing a flow graph, Section 4.2.3), each destination's group lands
    /// under that single lock acquisition, and each destination is woken
    /// exactly once after its latch is released. Message counters are bumped
    /// once per batch, not once per message.
    fn push_phase_batched(&self, mut routed: Vec<(Arc<ExecutorShared>, Action)>) {
        // Stable sort: groups actions by destination while preserving each
        // destination's arrival order (per-source FIFO).
        routed.sort_by_key(|(executor, _)| (executor.table.0, executor.index));
        let mut targets: Vec<Arc<ExecutorShared>> = Vec::with_capacity(routed.len());
        for (executor, _) in &routed {
            if targets
                .last()
                .is_none_or(|last| !Arc::ptr_eq(last, executor))
            {
                targets.push(Arc::clone(executor));
            }
        }
        let mut guards: Vec<InboxGuard<'_>> = targets
            .iter()
            .map(|executor| executor.lock_inbox())
            .collect();
        let messages = routed.len() as u64;
        let mut slot = 0usize;
        for (executor, action) in routed {
            if !Arc::ptr_eq(&targets[slot], &executor) {
                slot += 1;
            }
            guards[slot].push(Message::Action(action));
        }
        incr_by(CounterKind::DoraMessages, messages);
        incr_by(CounterKind::DispatchBatches, targets.len() as u64);
        drop(guards);
        // Wake each destination once, after the latches are released.
        for target in &targets {
            target.notify();
        }
    }

    fn route_spec(
        &self,
        txn: &Arc<DoraTxnInner>,
        phase: usize,
        spec: ActionSpec,
    ) -> DbResult<(Arc<ExecutorShared>, Action)> {
        let index = self
            .routing
            .route(spec.table, &spec.identifier)?
            .ok_or_else(|| DbError::InvalidOperation("unroutable non-secondary action".into()))?;
        let executor = self.executor(spec.table, index)?;
        let action = Action {
            txn: Arc::clone(txn),
            table: spec.table,
            identifier: spec.identifier,
            mode: spec.mode,
            phase,
            label: spec.label,
            body: Some(spec.body),
            elide_probe: spec.elide_probe,
        };
        Ok((executor, action))
    }

    /// Re-routes an action after a routing-rule change (used by the resize
    /// protocol when a draining executor hands back deferred actions).
    pub(crate) fn redispatch(self: &Arc<Self>, action: Action) {
        let table = action.table;
        let identifier = action.identifier.clone();
        match self.routing.route(table, &identifier) {
            Ok(Some(index)) => {
                if let Ok(executor) = self.executor(table, index) {
                    executor.enqueue(Message::Action(action));
                    incr(CounterKind::DoraMessages);
                    incr(CounterKind::DispatchBatches);
                    return;
                }
                let txn = Arc::clone(&action.txn);
                let phase = action.phase;
                txn.mark_aborted(DbError::NoSuchObject(format!("executor for {table}")));
                self.report_and_advance(&txn, phase);
            }
            Ok(None) | Err(_) => {
                let txn = Arc::clone(&action.txn);
                let phase = action.phase;
                txn.mark_aborted(DbError::InvalidOperation(
                    "unroutable action after resize".into(),
                ));
                self.report_and_advance(&txn, phase);
            }
        }
    }

    fn execute_secondary(
        self: &Arc<Self>,
        txn: &Arc<DoraTxnInner>,
        phase: usize,
        spec: ActionSpec,
    ) {
        incr(CounterKind::ActionsExecuted);
        if !txn.is_aborted() {
            let context = ActionContext {
                db: &self.db,
                txn: &txn.handle,
                scratch: &txn.scratch,
            };
            if let Err(error) = (spec.body)(&context) {
                txn.mark_aborted(error);
            }
        } else {
            incr(CounterKind::WastedActions);
        }
        self.report_and_advance(txn, phase);
    }

    /// Reports one action completion to the phase RVP, advancing the
    /// transaction when the RVP reaches zero.
    pub(crate) fn report_and_advance(self: &Arc<Self>, txn: &Arc<DoraTxnInner>, phase: usize) {
        if txn.rvps[phase].report() {
            if phase + 1 < txn.phase_count() && !txn.is_aborted() {
                self.dispatch_phase(txn, phase + 1);
            } else {
                self.finalize(txn);
            }
        }
    }

    /// Terminal-RVP processing (steps 9–12 of Figure 9), rebuilt around
    /// asynchronous group commit: the reporting executor *precommits*
    /// (append commit record, apply deferred flags, optionally release
    /// locks early) and hands the durable wait to the log-flusher daemon
    /// with a completion callback — it never sleeps on log I/O and
    /// immediately returns to its inbox. The client is woken from the
    /// flusher once the commit's group hardens.
    ///
    /// With early lock release the `Completed` fan-out (which frees the
    /// transaction's executor-local locks) also happens here, at precommit,
    /// shrinking local-lock hold times to the pre-durability window; with
    /// ELR off it happens in the durability callback, preserving
    /// commit-duration locking for A/B runs.
    pub(crate) fn finalize(self: &Arc<Self>, txn: &Arc<DoraTxnInner>) {
        if txn.is_aborted() {
            // Abort never leaks locks even if an undo step fails (the error
            // reports the undo failure, cleanup has already happened); the
            // client sees the original abort reason either way.
            let _ = self.db.abort(&txn.handle);
            let result = Err(txn.abort_reason().unwrap_or(DbError::TxnAborted {
                txn: txn.id(),
                reason: "aborted".into(),
            }));
            self.commit_fanout(txn);
            txn.completion.finish(result);
            return;
        }
        match self.db.precommit(&txn.handle) {
            Err(error) => {
                let _ = self.db.abort(&txn.handle);
                self.commit_fanout(txn);
                txn.completion.finish(Err(error));
            }
            Ok(handle) => {
                let early_released = handle.early_released();
                if early_released {
                    self.commit_fanout(txn);
                }
                let engine = Arc::clone(self);
                let txn2 = Arc::clone(txn);
                self.db.commit_async(&txn.handle, handle, move |durable| {
                    if !early_released {
                        engine.commit_fanout(&txn2);
                    }
                    // A commit whose log stream died past its retry budget
                    // was applied in memory (ghost commit) but never
                    // hardened; the client must hear the distinct,
                    // non-retryable outcome.
                    txn2.completion.finish(if durable {
                        Ok(())
                    } else {
                        Err(DbError::DurabilityLost)
                    });
                });
            }
        }
    }

    /// Commit fan-out: each involved executor receives exactly one
    /// `Completed` message, so every push is a batch of one — one lock
    /// acquisition and one wake per destination, with the counters bumped
    /// once for the whole fan-out.
    fn commit_fanout(&self, txn: &Arc<DoraTxnInner>) {
        let involved: Vec<(TableId, usize)> = txn.involved.lock().iter().copied().collect();
        incr_by(CounterKind::DoraMessages, involved.len() as u64);
        incr_by(CounterKind::DispatchBatches, involved.len() as u64);
        for (table, index) in involved {
            if let Ok(executor) = self.executor(table, index) {
                executor.enqueue(Message::Completed(txn.id()));
            }
        }
        self.db.lock_manager().remove_external_wait(txn.id());
    }
}

/// The DORA execution engine.
///
/// ```
/// use dora_core::{ActionSpec, DoraConfig, DoraEngine, FlowGraph, LocalMode};
/// use dora_storage::{ColumnDef, Database, TableSchema};
/// use dora_common::prelude::*;
///
/// let db = Database::for_tests();
/// let table = db
///     .create_table(TableSchema::new(
///         "counters",
///         vec![ColumnDef::new("id", ValueType::Int), ColumnDef::new("n", ValueType::Int)],
///         vec![0],
///     ))
///     .unwrap();
/// db.load_row(table, vec![Value::Int(1), Value::Int(0)]).unwrap();
///
/// let engine = DoraEngine::new(db, DoraConfig::for_tests());
/// engine.bind_table(table, 2, 1, 100).unwrap();
///
/// let mut graph = FlowGraph::new();
/// graph.push(ActionSpec::new("bump", table, Key::int(1), LocalMode::Exclusive,
///     move |ctx| {
///         ctx.db.update_primary(ctx.txn, table, &Key::int(1), CcMode::None, |row| {
///             let n = row[1].as_int()?;
///             row[1] = Value::Int(n + 1);
///             Ok(())
///         })
///     }));
/// engine.execute(graph).unwrap();
/// engine.shutdown();
/// ```
pub struct DoraEngine {
    inner: Arc<EngineInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for DoraEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoraEngine")
            .field("tables", &self.inner.routing.bound_tables())
            .finish()
    }
}

impl DoraEngine {
    /// Creates an engine over `db`. Tables must be bound with
    /// [`Self::bind_table`] before transactions touching them are submitted.
    pub fn new(db: Arc<Database>, config: DoraConfig) -> Self {
        Self {
            inner: Arc::new(EngineInner {
                db,
                config,
                routing: RoutingTable::new(),
                executors: RwLock::new(Vec::new()),
                domains: RwLock::new(Vec::new()),
                executors_spawned: AtomicUsize::new(0),
                warned_secondary: Mutex::new(HashSet::new()),
                shutting_down: AtomicBool::new(false),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DoraConfig {
        &self.inner.config
    }

    /// The underlying storage manager.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// The routing table (read access for diagnostics; the resource manager
    /// updates it through [`crate::ResourceManager`]).
    pub fn routing(&self) -> &RoutingTable {
        &self.inner.routing
    }

    /// Binds `executors` executor threads to `table`, partitioning the
    /// leading routing-field domain `[key_low, key_high]` evenly across them
    /// (Section 4.1.1).
    pub fn bind_table(
        &self,
        table: TableId,
        executors: usize,
        key_low: i64,
        key_high: i64,
    ) -> DbResult<()> {
        let executors = executors.max(1);
        self.bind_table_with_rule(
            table,
            executors,
            RoutingRule::even_ranges(key_low, key_high, executors),
        )?;
        let mut domains = self.inner.domains.write();
        if domains.len() <= table.0 as usize {
            domains.resize(table.0 as usize + 1, None);
        }
        domains[table.0 as usize] = Some((key_low, key_high));
        Ok(())
    }

    /// Binds a table with an explicit routing rule. The rule's executor count
    /// must equal `executors`.
    pub fn bind_table_with_rule(
        &self,
        table: TableId,
        executors: usize,
        rule: RoutingRule,
    ) -> DbResult<()> {
        if rule.executor_count() != executors {
            return Err(DbError::InvalidOperation(format!(
                "rule defines {} datasets but {} executors requested",
                rule.executor_count(),
                executors
            )));
        }
        // Make sure the table exists.
        self.inner.db.catalog().table(table)?;
        // A fresh bind warns anew about steps that cannot be routed.
        self.inner
            .warned_secondary
            .lock()
            .retain(|(warned_table, _)| *warned_table != table);
        let mut table_executors = Vec::with_capacity(executors);
        let mut new_workers = Vec::with_capacity(executors);
        for index in 0..executors {
            let shared = Arc::new(ExecutorShared::new(table, index));
            let worker = ExecutorWorker::new(Arc::clone(&shared), Arc::clone(&self.inner));
            // Round-robin executors (across all tables) over the partitioned
            // log streams, leaving stream 0 to unbound threads — the
            // baseline engine and client dispatchers.
            let spawned = self.inner.executors_spawned.fetch_add(1, Ordering::Relaxed);
            let stream = self.inner.db.log_manager().executor_stream(spawned);
            let handle = std::thread::Builder::new()
                .name(format!("dora-exec-{}-{}", table.0, index))
                .spawn(move || {
                    dora_storage::bind_executor_log_stream(stream);
                    worker.run()
                })
                .map_err(|e| DbError::InvalidOperation(format!("spawn failed: {e}")))?;
            table_executors.push(shared);
            new_workers.push(handle);
        }
        {
            let mut registry = self.inner.executors.write();
            if registry.len() <= table.0 as usize {
                registry.resize_with(table.0 as usize + 1, Vec::new);
            }
            if !registry[table.0 as usize].is_empty() {
                return Err(DbError::InvalidOperation(format!(
                    "{table} is already bound"
                )));
            }
            registry[table.0 as usize] = table_executors;
        }
        self.inner.routing.set_rule(table, rule);
        self.workers.lock().extend(new_workers);
        Ok(())
    }

    /// Binds every table in the catalog with `executors` executors each,
    /// using an even range rule over `[key_low, key_high]`. Convenience for
    /// workloads whose tables all route on the same domain (e.g. the
    /// warehouse id).
    pub fn bind_all_tables(&self, executors: usize, key_low: i64, key_high: i64) -> DbResult<()> {
        for table in self.inner.db.catalog().tables() {
            self.bind_table(table.id, executors, key_low, key_high)?;
        }
        Ok(())
    }

    /// Submits a transaction flow graph and returns a handle without waiting
    /// for completion.
    pub fn submit(&self, graph: FlowGraph) -> DbResult<DoraTxn> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(DbError::ShuttingDown);
        }
        let phases = graph.into_phases();
        if phases.is_empty() {
            return Err(DbError::InvalidOperation(
                "empty transaction flow graph".into(),
            ));
        }
        let handle = self.inner.db.begin();
        let txn = DoraTxnInner::new(handle, phases);
        // Deliberately not counted as a DoraMessage: the client->engine
        // hand-off is a function call, not an inbox push, and the dispatch
        // metrics divide DoraMessages by the inbox-push/drain counters.
        self.inner.dispatch_phase(&txn, 0);
        Ok(DoraTxn { inner: txn })
    }

    /// Submits a flow graph and blocks until the transaction commits or
    /// aborts — the call every client (dispatcher) thread makes.
    pub fn execute(&self, graph: FlowGraph) -> DbResult<()> {
        self.submit(graph)?.wait()
    }

    /// Actions served per executor of `table` (the load statistic the
    /// resource manager uses).
    pub fn executor_loads(&self, table: TableId) -> DbResult<Vec<u64>> {
        Ok(self
            .inner
            .executors_for(table)?
            .iter()
            .map(|e| e.served())
            .collect())
    }

    /// Incoming-queue depth per executor of `table` (the backlog statistic
    /// the adaptive repartitioner samples alongside the serviced counts).
    pub fn executor_queue_depths(&self, table: TableId) -> DbResult<Vec<usize>> {
        Ok(self
            .inner
            .executors_for(table)?
            .iter()
            .map(|e| e.queue_depth())
            .collect())
    }

    /// The routing-key domain `[low, high]` recorded when `table` was bound
    /// through [`Self::bind_table`] (`None` for tables bound with an explicit
    /// rule, whose domain the engine does not know).
    pub fn table_domain(&self, table: TableId) -> Option<(i64, i64)> {
        self.inner
            .domains
            .read()
            .get(table.0 as usize)
            .copied()
            .flatten()
    }

    /// Tables eligible for adaptive repartitioning: bound with a [`Range`]
    /// rule over a known key domain and served by at least two executors.
    ///
    /// [`Range`]: RoutingRule::Range
    pub fn adaptive_tables(&self) -> Vec<(TableId, (i64, i64))> {
        let domains = self.inner.domains.read();
        domains
            .iter()
            .enumerate()
            .filter_map(|(index, domain)| {
                let domain = (*domain)?;
                let table = TableId(index as u32);
                match self.inner.routing.rule(table) {
                    Some(RoutingRule::Range { .. }) if self.executor_count(table) >= 2 => {
                        Some((table, domain))
                    }
                    _ => None,
                }
            })
            .collect()
    }

    /// `true` once [`Self::shutdown`] has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::Acquire)
    }

    /// Number of executors bound to `table`.
    pub fn executor_count(&self, table: TableId) -> usize {
        self.inner
            .executors_for(table)
            .map(|e| e.len())
            .unwrap_or(0)
    }

    /// Begins the resize protocol: asks every executor of `table` to drain
    /// (stop serving actions of new transactions until its in-flight
    /// transactions complete). Returns the barriers to wait on. Used by the
    /// resource manager; see [`crate::ResourceManager::rebalance`].
    pub(crate) fn start_drain(&self, table: TableId) -> DbResult<Vec<Arc<ResizeBarrier>>> {
        let executors = self.inner.executors_for(table)?;
        let mut barriers = Vec::with_capacity(executors.len());
        for executor in &executors {
            let barrier = Arc::new(ResizeBarrier::new());
            executor.enqueue(Message::StartResize(Arc::clone(&barrier)));
            barriers.push(barrier);
        }
        Ok(barriers)
    }

    /// Installs a new routing rule for `table` and tells its executors to
    /// resume (re-dispatching any deferred actions through the new rule).
    pub(crate) fn finish_resize(&self, table: TableId, rule: RoutingRule) -> DbResult<()> {
        self.inner.routing.set_rule(table, rule);
        for executor in self.inner.executors_for(table)? {
            executor.enqueue(Message::FinishResize);
        }
        Ok(())
    }

    /// Shuts the engine down, joining every executor thread. Transactions
    /// submitted after this call are rejected.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        for table in self.inner.executors.read().iter() {
            for executor in table {
                executor.enqueue(Message::Shutdown);
            }
        }
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for DoraEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::LocalMode;
    use dora_storage::{ColumnDef, TableSchema};

    fn counters_db() -> (Arc<Database>, TableId) {
        let db = Database::for_tests();
        let table = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("n", ValueType::Int),
                ],
                vec![0],
            ))
            .unwrap();
        for id in 1..=100i64 {
            db.load_row(table, vec![Value::Int(id), Value::Int(0)])
                .unwrap();
        }
        (db, table)
    }

    fn bump_graph(table: TableId, id: i64) -> FlowGraph {
        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "bump",
            table,
            Key::int(id),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(id), CcMode::None, |row| {
                        let n = row[1].as_int()?;
                        row[1] = Value::Int(n + 1);
                        Ok(())
                    })
            },
        ));
        graph
    }

    #[test]
    fn single_action_transaction_commits() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();
        engine.execute(bump_graph(table, 7)).unwrap();
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(7), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(1));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn multi_phase_transaction_passes_data_between_phases() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();

        // Phase 1 reads counter 10 into the scratchpad; phase 2 adds it to
        // counter 90 (which lives on the other executor).
        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "read",
            table,
            Key::int(10),
            LocalMode::Shared,
            move |ctx| {
                let (_, row) = ctx
                    .db
                    .probe_primary(ctx.txn, table, &Key::int(10), false, CcMode::None)?
                    .ok_or(DbError::NotFound {
                        table,
                        detail: "10".into(),
                    })?;
                ctx.scratch.put("seen", row[1].clone());
                Ok(())
            },
        ));
        graph.begin_phase().push(ActionSpec::new(
            "add",
            table,
            Key::int(90),
            LocalMode::Exclusive,
            move |ctx| {
                let seen = ctx.scratch.get_int("seen")?;
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(90), CcMode::None, |row| {
                        let n = row[1].as_int()?;
                        row[1] = Value::Int(n + seen + 5);
                        Ok(())
                    })
            },
        ));
        engine.execute(graph).unwrap();

        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(90), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(5), "counter 10 was 0, so 0 + 5");
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn failed_action_aborts_whole_transaction() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();

        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "bump",
            table,
            Key::int(3),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(3), CcMode::None, |row| {
                        row[1] = Value::Int(99);
                        Ok(())
                    })
            },
        ));
        graph.push(ActionSpec::new(
            "fail",
            table,
            Key::int(80),
            LocalMode::Exclusive,
            move |_ctx| {
                Err(DbError::TxnAborted {
                    txn: TxnId::INVALID,
                    reason: "invalid input".into(),
                })
            },
        ));
        let result = engine.execute(graph);
        assert!(result.is_err());

        // The update of counter 3 must have been rolled back.
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(3), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(0));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn panicking_action_aborts_its_txn_but_the_executor_survives() {
        silence_injected_panics();
        let (db, table) = counters_db();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();

        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::new(
            "bump",
            table,
            Key::int(3),
            LocalMode::Exclusive,
            move |ctx| {
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(3), CcMode::None, |row| {
                        row[1] = Value::Int(99);
                        Ok(())
                    })
            },
        ));
        graph.push(ActionSpec::new(
            "boom",
            table,
            Key::int(80),
            LocalMode::Exclusive,
            move |_ctx| std::panic::panic_any(InjectedPanic),
        ));
        let result = engine.execute(graph);
        assert!(
            result.is_err(),
            "a panicked transaction aborts, never hangs"
        );

        // Supervision quarantined only that transaction: both executors keep
        // serving (including the one that caught the panic), local locks on
        // keys 3 and 80 were released, and the partial update rolled back.
        engine.execute(bump_graph(table, 80)).unwrap();
        engine.execute(bump_graph(table, 3)).unwrap();
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(3), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(1), "rolled back, then one clean bump");
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn conflicting_transactions_serialize_on_local_locks() {
        let (db, table) = counters_db();
        let db2 = Arc::clone(&db);
        let engine = Arc::new(DoraEngine::new(db, DoraConfig::for_tests()));
        engine.bind_table(table, 2, 1, 100).unwrap();

        let threads = 4i64;
        let per_thread = 50i64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        engine.execute(bump_graph(table, 42)).unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let check = db2.begin();
        let (_, row) = db2
            .probe_primary(&check, table, &Key::int(42), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(
            row[1],
            Value::Int(threads * per_thread),
            "every increment must be applied exactly once"
        );
        db2.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn unbound_table_is_rejected() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(db, DoraConfig::for_tests());
        // No bind_table call.
        let result = engine.execute(bump_graph(table, 1));
        assert!(result.is_err());
        engine.shutdown();
    }

    #[test]
    fn empty_graph_is_rejected() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(db, DoraConfig::for_tests());
        engine.bind_table(table, 1, 1, 100).unwrap();
        assert!(engine.execute(FlowGraph::new()).is_err());
        engine.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_transactions() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(db, DoraConfig::for_tests());
        engine.bind_table(table, 1, 1, 100).unwrap();
        engine.shutdown();
        assert!(matches!(
            engine.execute(bump_graph(table, 1)),
            Err(DbError::ShuttingDown)
        ));
    }

    #[test]
    fn secondary_actions_run_on_the_submitting_thread() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();

        let mut graph = FlowGraph::new();
        graph.push(ActionSpec::secondary("scan", table, move |ctx| {
            // A "secondary" access that cannot be routed: count rows via a
            // scan and stash the result.
            let mut count = 0i64;
            ctx.db
                .scan_table(ctx.txn, table, CcMode::None, |_, _| count += 1)?;
            ctx.scratch.put("count", count);
            Ok(())
        }));
        graph.begin_phase().push(ActionSpec::new(
            "store",
            table,
            Key::int(1),
            LocalMode::Exclusive,
            move |ctx| {
                let count = ctx.scratch.get_int("count")?;
                ctx.db
                    .update_primary(ctx.txn, table, &Key::int(1), CcMode::None, |row| {
                        row[1] = Value::Int(count);
                        Ok(())
                    })
            },
        ));
        engine.execute(graph).unwrap();
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(100));
        db.commit(&check).unwrap();
        engine.shutdown();
    }

    #[test]
    fn executor_loads_reflect_routing() {
        let (db, table) = counters_db();
        let engine = DoraEngine::new(db, DoraConfig::for_tests());
        engine.bind_table(table, 2, 1, 100).unwrap();
        // Keys 1..=50 go to executor 0, 51..=100 to executor 1.
        for id in [1, 2, 3, 4, 5] {
            engine.execute(bump_graph(table, id)).unwrap();
        }
        let loads = engine.executor_loads(table).unwrap();
        assert_eq!(loads.len(), 2);
        assert!(loads[0] >= 5);
        assert_eq!(engine.executor_count(table), 2);
        engine.shutdown();
    }
}
