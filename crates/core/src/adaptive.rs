//! Adaptive skew-aware repartitioning.
//!
//! Appendix A.2 of the paper concedes that a static routing table crumbles
//! under access skew: thread-to-data coupling only removes contention while
//! every executor owns a comparable share of the load. This module closes
//! the loop the resize machinery was built for:
//!
//! * [`balanced_rule`] synthesizes a new [`RoutingRule`] from the observed
//!   per-executor load — hot ranges are split (several new boundaries land
//!   inside them), cold ranges are merged — by modelling the load as
//!   piecewise-uniform over the current datasets and cutting the key domain
//!   at equal-load quantiles.
//! * [`SkewDetector`] owns the sliding [`LoadMonitor`] window for one table
//!   and decides *when* the imbalance justifies paying for a drain.
//! * [`AdaptiveController`] is the runtime: a background thread that samples
//!   every eligible table, asks the detector, and drives the
//!   `StartResize`/`FinishResize` protocol through
//!   [`ResourceManager::rebalance`] while transactions stay in flight.
//!
//! Because each resize observes load under the *previous* rule, balancing a
//! heavy-tailed distribution (e.g. zipfian) converges over a handful of
//! resizes: each pass narrows the hot datasets, which sharpens the density
//! estimate for the next pass.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use dora_common::config::AdaptiveConfig;
use dora_common::prelude::*;
use dora_metrics::{LoadMonitor, LoadSample};

use crate::engine::DoraEngine;
use crate::resource::ResourceManager;
use crate::routing::RoutingRule;

/// Synthesizes a routing rule that would have split the observed load evenly
/// across the same number of executors, assuming the load is uniform within
/// each current dataset.
///
/// Returns `None` when no better rule exists: the current rule is not a
/// range rule, the executor count does not match `loads`, the window saw no
/// load, the domain is too narrow to honor `min_range_width`, or the
/// balanced boundaries equal the current ones.
pub fn balanced_rule(
    current: &RoutingRule,
    loads: &[u64],
    domain: (i64, i64),
    min_range_width: i64,
) -> Option<RoutingRule> {
    let RoutingRule::Range { boundaries } = current else {
        return None;
    };
    let executors = loads.len();
    if executors < 2 || boundaries.len() + 1 != executors {
        return None;
    }
    let (low, high) = domain;
    let span = high.checked_sub(low)?.checked_add(1)?;
    let min_width = min_range_width.max(1);
    // Every executor must be able to own at least `min_width` keys.
    if span < min_width.checked_mul(executors as i64)? {
        return None;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return None;
    }

    // The load profile as piecewise-uniform segments over the domain: one
    // segment per executor, clipped to `[low, high]`.
    struct Segment {
        start: i64,
        width: i64,
        load: f64,
    }
    let mut segments = Vec::with_capacity(executors);
    for (index, &load) in loads.iter().enumerate() {
        let (range_low, range_high) = current.range_of(index).expect("range rule, index in range");
        let start = range_low.max(low);
        let end = range_high.min(high);
        if start > end {
            // Empty dataset (duplicate/clamped boundaries); no keys, and any
            // counted load cannot be attributed to a key range.
            continue;
        }
        segments.push(Segment {
            start,
            width: end - start + 1,
            load: load as f64,
        });
    }
    let profiled: f64 = segments.iter().map(|s| s.load).sum();
    if profiled <= 0.0 {
        return None;
    }

    // Cut the domain at equal-load quantiles: boundary `k` sits where the
    // cumulative load reaches `k/executors` of the total.
    let target = profiled / executors as f64;
    let mut new_boundaries = Vec::with_capacity(executors - 1);
    let mut cumulative = 0.0;
    let mut next_quota = target;
    for segment in &segments {
        let density = segment.load / segment.width as f64;
        while new_boundaries.len() < executors - 1 && cumulative + segment.load >= next_quota {
            let boundary = if density > 0.0 {
                let offset = ((next_quota - cumulative) / density).ceil() as i64;
                segment.start + offset.clamp(1, segment.width)
            } else {
                segment.start + segment.width
            };
            new_boundaries.push(boundary);
            next_quota += target;
        }
        cumulative += segment.load;
    }
    // Cold tail: any quantile not reached (floating-point slack) closes at
    // the top of the domain; the clamp below spreads these out.
    while new_boundaries.len() < executors - 1 {
        new_boundaries.push(high);
    }

    // Enforce the invariants a routing rule must keep: boundaries strictly
    // increasing, inside `(low, high]`, and every dataset at least
    // `min_width` keys wide (feasible because `span >= executors*min_width`).
    let mut previous = low;
    for (index, boundary) in new_boundaries.iter_mut().enumerate() {
        // Boundaries still to be placed after this one (this executor's
        // successors), each of which needs `min_width` keys of headroom.
        let remaining = (executors - 1 - index) as i64;
        let lowest = previous + min_width;
        let highest = high + 1 - min_width * remaining;
        *boundary = (*boundary).clamp(lowest, highest.max(lowest));
        previous = *boundary;
    }

    if new_boundaries == *boundaries {
        return None;
    }
    Some(RoutingRule::Range {
        boundaries: new_boundaries,
    })
}

/// Skew detection for one table: a sliding load window plus the trigger
/// policy (imbalance threshold and resize cooldown).
pub struct SkewDetector {
    config: AdaptiveConfig,
    monitor: LoadMonitor,
    last_resize: Option<Instant>,
}

impl SkewDetector {
    /// Creates a detector with the given knobs.
    pub fn new(config: AdaptiveConfig) -> Self {
        let monitor = LoadMonitor::new(config.window);
        Self {
            config,
            monitor,
            last_resize: None,
        }
    }

    /// Records one load observation (cumulative served counts and current
    /// queue depths, one entry per executor).
    pub fn observe(&self, served: Vec<u64>, queue_depth: Vec<usize>) {
        self.monitor.record(LoadSample {
            served,
            queue_depth,
        });
    }

    /// The imbalance ratio over the current window, if measurable.
    pub fn imbalance(&self) -> Option<f64> {
        self.monitor.imbalance()
    }

    /// Decides whether the observed window justifies a resize and, if so,
    /// synthesizes the rebalanced rule. Requires a full window (so the
    /// decision never rests on a single noisy delta), an imbalance past the
    /// configured threshold, and an expired cooldown.
    pub fn propose(&self, current: &RoutingRule, domain: (i64, i64)) -> Option<RoutingRule> {
        if !self.monitor.is_full() {
            return None;
        }
        if let Some(last) = self.last_resize {
            if last.elapsed() < self.config.cooldown {
                return None;
            }
        }
        if self.monitor.imbalance()? < self.config.imbalance_threshold {
            return None;
        }
        let loads = self.monitor.windowed_load()?;
        balanced_rule(current, &loads, domain, self.config.min_range_width)
    }

    /// Records that a resize was performed: starts the cooldown clock and
    /// clears the window so imbalance is next judged only on samples taken
    /// under the new rule.
    pub fn note_resized(&mut self) {
        self.last_resize = Some(Instant::now());
        self.monitor.clear();
    }
}

struct ControllerShared {
    stopped: Mutex<bool>,
    wake: Condvar,
    resizes: AtomicU64,
}

/// The adaptive repartitioning runtime: a background thread that samples
/// per-executor load for every eligible table of a [`DoraEngine`] and drives
/// the dataset-resize protocol when its [`SkewDetector`] fires.
///
/// The controller must be stopped (or dropped) *before* the engine is shut
/// down: a resize drains executors, which requires them to still be serving.
/// [`Self::stop`] is idempotent and joins the thread.
pub struct AdaptiveController {
    shared: Arc<ControllerShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("resizes", &self.resizes())
            .finish()
    }
}

impl AdaptiveController {
    /// Spawns the controller over `engine` with the given knobs. Tables are
    /// discovered on every pass ([`DoraEngine::adaptive_tables`]), so tables
    /// bound after the controller starts are picked up automatically.
    pub fn spawn(engine: Arc<DoraEngine>, config: AdaptiveConfig) -> Self {
        let shared = Arc::new(ControllerShared {
            stopped: Mutex::new(false),
            wake: Condvar::new(),
            resizes: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("dora-adaptive".into())
            .spawn(move || Self::run(engine, config, thread_shared))
            .expect("spawn adaptive controller");
        Self {
            shared,
            thread: Mutex::new(Some(handle)),
        }
    }

    fn run(engine: Arc<DoraEngine>, config: AdaptiveConfig, shared: Arc<ControllerShared>) {
        let manager = ResourceManager::new(engine.config().clone());
        let mut detectors: HashMap<TableId, SkewDetector> = HashMap::new();
        loop {
            {
                // Sleep on the condvar so `stop()` wakes the controller
                // immediately instead of waiting out the sample interval.
                let mut stopped = shared.stopped.lock();
                if !*stopped {
                    shared.wake.wait_for(&mut stopped, config.sample_interval);
                }
                if *stopped {
                    return;
                }
            }
            if engine.is_shutting_down() {
                return;
            }
            for (table, domain) in engine.adaptive_tables() {
                let (Ok(served), Ok(depths)) = (
                    engine.executor_loads(table),
                    engine.executor_queue_depths(table),
                ) else {
                    continue;
                };
                let detector = detectors
                    .entry(table)
                    .or_insert_with(|| SkewDetector::new(config.clone()));
                detector.observe(served, depths);
                let Some(rule) = engine
                    .routing()
                    .rule(table)
                    .and_then(|current| detector.propose(&current, domain))
                else {
                    continue;
                };
                if engine.is_shutting_down() {
                    return;
                }
                if manager.rebalance(&engine, table, rule).is_ok() {
                    shared.resizes.fetch_add(1, Ordering::Relaxed);
                    detector.note_resized();
                }
            }
        }
    }

    /// Number of resizes this controller has driven to completion.
    pub fn resizes(&self) -> u64 {
        self.shared.resizes.load(Ordering::Relaxed)
    }

    /// Stops the controller and joins its thread. Idempotent; any resize in
    /// progress completes first.
    pub fn stop(&self) {
        {
            let mut stopped = self.shared.stopped.lock();
            *stopped = true;
            self.shared.wake.notify_all();
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AdaptiveController {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn even(low: i64, high: i64, executors: usize) -> RoutingRule {
        RoutingRule::even_ranges(low, high, executors)
    }

    fn boundaries(rule: &RoutingRule) -> &[i64] {
        match rule {
            RoutingRule::Range { boundaries } => boundaries,
            RoutingRule::Hash { .. } => panic!("expected range rule"),
        }
    }

    /// Asserts that `rule` tiles `[low, high]` contiguously with no gaps or
    /// overlaps and that every dataset is at least `min_width` keys wide
    /// inside the domain.
    fn assert_tiles(rule: &RoutingRule, low: i64, high: i64, min_width: i64) {
        let executors = rule.executor_count();
        let mut expected_low = i64::MIN;
        for index in 0..executors {
            let (range_low, range_high) = rule.range_of(index).expect("in range");
            assert_eq!(range_low, expected_low, "gap/overlap before {index}");
            assert!(range_low <= range_high, "inverted range at {index}");
            let clipped_low = range_low.max(low);
            let clipped_high = range_high.min(high);
            assert!(
                clipped_high - clipped_low + 1 >= min_width,
                "dataset {index} narrower than {min_width}: [{clipped_low}, {clipped_high}]"
            );
            if index + 1 == executors {
                assert_eq!(range_high, i64::MAX);
            } else {
                expected_low = range_high + 1;
            }
        }
    }

    #[test]
    fn hot_first_range_is_split() {
        // Executor 0 served 90% of the load: it must end up with a much
        // smaller dataset, and the cold ranges must absorb the rest.
        let current = even(1, 100, 4);
        let rebalanced = balanced_rule(&current, &[900, 40, 30, 30], (1, 100), 1).unwrap();
        assert_tiles(&rebalanced, 1, 100, 1);
        let new = boundaries(&rebalanced);
        let old = boundaries(&current);
        assert!(
            new[0] < old[0],
            "hot executor 0 must shrink: {new:?} vs {old:?}"
        );
        // Equal-load quantiles under a 90/4/3/3 profile put three boundaries
        // inside executor 0's old range [1, 25].
        assert!(new[2] <= old[0], "cold ranges must merge: {new:?}");
    }

    #[test]
    fn balanced_load_proposes_nothing() {
        let current = even(1, 100, 4);
        assert_eq!(
            balanced_rule(&current, &[25, 25, 25, 25], (1, 100), 1),
            None
        );
    }

    #[test]
    fn min_range_width_is_honored() {
        let current = even(1, 100, 4);
        let rebalanced = balanced_rule(&current, &[997, 1, 1, 1], (1, 100), 10).unwrap();
        assert_tiles(&rebalanced, 1, 100, 10);
    }

    #[test]
    fn narrow_domain_rejects_min_width() {
        let current = even(1, 10, 4);
        assert!(balanced_rule(&current, &[97, 1, 1, 1], (1, 10), 5).is_none());
    }

    #[test]
    fn zero_load_and_hash_rules_propose_nothing() {
        let current = even(1, 100, 4);
        assert_eq!(balanced_rule(&current, &[0, 0, 0, 0], (1, 100), 1), None);
        let hash = RoutingRule::Hash { executors: 4 };
        assert_eq!(balanced_rule(&hash, &[9, 1, 1, 1], (1, 100), 1), None);
    }

    #[test]
    fn detector_fires_only_on_full_skewed_window_and_respects_cooldown() {
        let config = AdaptiveConfig {
            enabled: true,
            sample_interval: Duration::from_millis(1),
            window: 2,
            imbalance_threshold: 1.5,
            min_range_width: 1,
            cooldown: Duration::from_secs(3600),
        };
        let mut detector = SkewDetector::new(config);
        let rule = even(1, 100, 2);
        detector.observe(vec![0, 0], vec![0, 0]);
        assert!(
            detector.propose(&rule, (1, 100)).is_none(),
            "half-filled window must not fire"
        );
        detector.observe(vec![90, 10], vec![0, 0]);
        let proposal = detector.propose(&rule, (1, 100));
        assert!(proposal.is_some(), "skewed full window must fire");
        assert_tiles(&proposal.unwrap(), 1, 100, 1);

        detector.note_resized();
        detector.observe(vec![180, 20], vec![0, 0]);
        detector.observe(vec![270, 30], vec![0, 0]);
        assert!(
            detector.propose(&rule, (1, 100)).is_none(),
            "cooldown must suppress back-to-back resizes"
        );
    }

    #[test]
    fn detector_counts_backlog_as_load() {
        let config = AdaptiveConfig {
            window: 2,
            imbalance_threshold: 1.5,
            ..AdaptiveConfig::eager()
        };
        let detector = SkewDetector::new(config);
        // Served counts are even, but executor 0 has a deep backlog.
        detector.observe(vec![0, 0], vec![0, 0]);
        detector.observe(vec![10, 10], vec![100, 0]);
        assert!(detector.imbalance().unwrap() > 1.5);
    }
}
