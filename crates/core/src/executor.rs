//! Executors: the worker threads DORA couples with data.
//!
//! Each executor owns three structures (Section 4.1.3): a queue of incoming
//! actions, a queue of completed transactions and a thread-local lock table.
//! Incoming work is served strictly in FIFO order; actions that conflict on
//! the local lock table are parked and retried when a completed-transaction
//! notification releases the blocking locks.
//!
//! The executor also implements its side of the dataset-resize protocol
//! (Appendix A.2.1): on a `StartResize` message it stops serving actions of
//! *new* transactions until every transaction it already participates in has
//! left the system, signals the resource manager, and on `FinishResize`
//! re-dispatches the deferred actions through the (by then updated) routing
//! table.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use dora_common::prelude::*;
use dora_metrics::{incr, time_section, CounterKind, TimeCategory};

use crate::action::{Action, ActionContext};
use crate::engine::EngineInner;
use crate::locallock::{LocalAcquire, LocalLockTable};
use crate::txn::DoraTxnInner;

/// Barrier used by the resource manager to wait for an executor to drain
/// during a routing-rule change.
#[derive(Debug, Default)]
pub struct ResizeBarrier {
    drained: Mutex<bool>,
    cond: Condvar,
}

impl ResizeBarrier {
    /// Creates a fresh barrier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the executor as drained and wakes the resource manager.
    pub fn signal(&self) {
        let mut drained = self.drained.lock();
        *drained = true;
        self.cond.notify_all();
    }

    /// Blocks until the executor has drained.
    pub fn wait(&self) {
        let mut drained = self.drained.lock();
        while !*drained {
            self.cond.wait(&mut drained);
        }
    }
}

/// Messages an executor can receive on its incoming queue.
pub(crate) enum Message {
    /// An action to execute.
    Action(Action),
    /// A transaction the executor participated in has committed or aborted:
    /// release its local locks and retry blocked actions (steps 10–12 of
    /// Figure 9).
    Completed(TxnId),
    /// Begin the dataset-resize drain protocol.
    StartResize(Arc<ResizeBarrier>),
    /// The routing rule has been updated; re-dispatch deferred actions and
    /// resume normal service.
    FinishResize,
    /// Terminate the executor thread.
    Shutdown,
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Message::Action(action) => write!(f, "Action({action:?})"),
            Message::Completed(txn) => write!(f, "Completed({txn})"),
            Message::StartResize(_) => write!(f, "StartResize"),
            Message::FinishResize => write!(f, "FinishResize"),
            Message::Shutdown => write!(f, "Shutdown"),
        }
    }
}

/// A latched executor inbox: messages pushed through it become visible to
/// the executor when the guard drops. The dispatcher holds guards on every
/// destination of a phase before pushing any action, which is DORA's atomic
/// phase submission (Section 4.2.3). The guard refreshes the lock-free depth
/// mirror on release so [`ExecutorShared::queue_depth`] never touches the
/// inbox mutex.
pub(crate) struct InboxGuard<'a> {
    depth: &'a AtomicUsize,
    queue: MutexGuard<'a, VecDeque<Message>>,
}

impl InboxGuard<'_> {
    /// Appends a message to the latched inbox.
    pub(crate) fn push(&mut self, message: Message) {
        self.queue.push_back(message);
    }
}

impl Drop for InboxGuard<'_> {
    fn drop(&mut self) {
        self.depth.store(self.queue.len(), Ordering::Relaxed);
    }
}

/// The shared (cross-thread) half of an executor: its identity and queue.
pub(crate) struct ExecutorShared {
    /// Table this executor serves.
    pub table: TableId,
    /// Index of this executor within the table's executor list.
    pub index: usize,
    queue: Mutex<VecDeque<Message>>,
    available: Condvar,
    /// Lock-free mirror of the inbox length, refreshed by whoever last held
    /// the queue mutex. Lets monitoring threads (the adaptive controller's
    /// sampler) read backlogs without contending with the hot path.
    depth: AtomicUsize,
    /// Number of actions served, read by the resource manager for load
    /// balancing.
    served: AtomicU64,
}

impl ExecutorShared {
    pub(crate) fn new(table: TableId, index: usize) -> Self {
        Self {
            table,
            index,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
            served: AtomicU64::new(0),
        }
    }

    /// Enqueues a single message and wakes the executor.
    pub(crate) fn enqueue(&self, message: Message) {
        self.lock_inbox().push(message);
        self.available.notify_one();
    }

    /// Latches the inbox for a batched push. Call [`Self::notify`] after the
    /// guard drops to wake the executor.
    pub(crate) fn lock_inbox(&self) -> InboxGuard<'_> {
        InboxGuard {
            depth: &self.depth,
            queue: self.queue.lock(),
        }
    }

    /// Wakes the executor after an external push through
    /// [`Self::lock_inbox`].
    pub(crate) fn notify(&self) {
        self.available.notify_one();
    }

    /// Pops a single message, blocking while the inbox is empty — the
    /// per-message consumer path (one lock acquisition per message), kept as
    /// the measurement baseline for `message_batching: false`.
    pub(crate) fn dequeue(&self) -> Message {
        let mut queue = self.queue.lock();
        loop {
            if let Some(message) = queue.pop_front() {
                self.depth.store(queue.len(), Ordering::Relaxed);
                return message;
            }
            self.available.wait(&mut queue);
        }
    }

    /// Drains the whole inbox into `batch` under a single lock acquisition,
    /// blocking while the inbox is empty. `batch` must be empty on entry; the
    /// buffers are *swapped*, so the batch's spare capacity becomes the new
    /// inbox allocation and the two buffers ping-pong between producer and
    /// consumer without ever reallocating in steady state.
    pub(crate) fn dequeue_batch(&self, batch: &mut VecDeque<Message>) {
        debug_assert!(batch.is_empty(), "drain target must start empty");
        let mut queue = self.queue.lock();
        while queue.is_empty() {
            self.available.wait(&mut queue);
        }
        std::mem::swap(&mut *queue, batch);
        self.depth.store(0, Ordering::Relaxed);
    }

    /// Number of actions this executor has served so far.
    pub(crate) fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Current queue depth (diagnostics / load sampling). Reads the atomic
    /// mirror — never the inbox mutex — so samplers cannot contend with the
    /// message hot path.
    pub(crate) fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

/// An action parked on the local lock table, together with the wait edges
/// it registered in the global deadlock detector — so that resolving this
/// wait removes exactly these edges and no others (the same transaction may
/// be parked at other executors at the same time).
struct Parked {
    action: Action,
    waits_on: Vec<TxnId>,
}

/// The thread-private half of an executor.
pub(crate) struct ExecutorWorker {
    shared: Arc<ExecutorShared>,
    engine: Arc<EngineInner>,
    locks: LocalLockTable,
    /// Actions blocked on the local lock table, in arrival order.
    waiters: VecDeque<Parked>,
    /// Actions deferred while a dataset resize is draining.
    deferred: Vec<Action>,
    /// Barrier to signal once drained (while a resize is in progress).
    draining: Option<Arc<ResizeBarrier>>,
    /// Set after the drain barrier has been signalled but before
    /// `FinishResize` arrives.
    awaiting_rule: bool,
}

impl ExecutorWorker {
    pub(crate) fn new(shared: Arc<ExecutorShared>, engine: Arc<EngineInner>) -> Self {
        Self {
            shared,
            engine,
            locks: LocalLockTable::new(),
            waiters: VecDeque::new(),
            deferred: Vec::new(),
            draining: None,
            awaiting_rule: false,
        }
    }

    /// The executor main loop: drain a batch of messages under one inbox
    /// lock, then process it entirely thread-locally. Control messages
    /// (`StartResize`/`FinishResize`/`Shutdown`) keep their FIFO position
    /// relative to actions because the batch is processed in arrival order.
    /// With `message_batching` off, every message is its own batch (one lock
    /// acquisition per message — the measurement baseline).
    pub(crate) fn run(mut self) {
        let batched = self.engine.config().message_batching;
        let mut batch = VecDeque::new();
        loop {
            if batched {
                self.shared.dequeue_batch(&mut batch);
            } else {
                batch.push_back(self.shared.dequeue());
            }
            incr(CounterKind::InboxDrains);
            while let Some(message) = batch.pop_front() {
                match message {
                    Message::Shutdown => return,
                    Message::Action(action) => self.handle_incoming(action),
                    Message::Completed(txn) => self.handle_completed(txn),
                    Message::StartResize(barrier) => {
                        self.draining = Some(barrier);
                        self.awaiting_rule = false;
                        self.maybe_signal_drained();
                    }
                    Message::FinishResize => self.finish_resize(),
                }
            }
        }
    }

    fn handle_incoming(&mut self, action: Action) {
        // During a drain, actions of transactions this executor is not yet
        // involved with are deferred; transactions that already hold local
        // locks here must keep making progress or the drain would never
        // complete.
        if self.draining.is_some() && !self.locks.holds_any(action.txn.id()) {
            self.deferred.push(action);
            return;
        }
        self.handle_action(action);
    }

    fn handle_action(&mut self, action: Action) {
        self.shared.served.fetch_add(1, Ordering::Relaxed);
        incr(CounterKind::ActionsExecuted);
        if action.txn.is_aborted() {
            // The transaction was aborted by another action (e.g. invalid
            // input in TM1); executing this action would be wasted work, but
            // it must still report to its RVP.
            incr(CounterKind::WastedActions);
            self.finish_action(&action.txn, action.phase);
            return;
        }
        if action.elide_probe {
            // The bind-time conflict matrix proved this step's template
            // conflicts with nothing in the workload: no lock to take, no
            // waiter to become, nothing to release at completion — skip the
            // local lock table entirely and run. `note_involved` is also
            // skipped on purpose: involvement only drives the Completed
            // fan-out that releases local locks, and this action holds none.
            incr(CounterKind::LockProbesElided);
            self.execute(action);
            return;
        }
        match self
            .locks
            .acquire(action.txn.id(), &action.identifier, action.mode)
        {
            LocalAcquire::Granted => {
                action
                    .txn
                    .note_involved(self.shared.table, self.shared.index);
                self.execute(action);
            }
            LocalAcquire::Conflict(owners) => self.park(action, owners),
        }
    }

    /// Feeds the wait into the storage manager's deadlock detector
    /// (Section 4.2.3) and parks the action. If an edge closes a cycle the
    /// transaction is aborted instead: the edges registered so far are
    /// withdrawn and the action reports to its RVP without parking.
    fn park(&mut self, action: Action, owners: Vec<TxnId>) {
        let mut registered = Vec::with_capacity(owners.len());
        for owner in owners {
            match self
                .engine
                .db()
                .lock_manager()
                .add_external_wait(action.txn.id(), owner)
            {
                Ok(()) => registered.push(owner),
                Err(deadlock) => {
                    self.engine
                        .db()
                        .lock_manager()
                        .remove_external_waits(action.txn.id(), &registered);
                    action.txn.mark_aborted(deadlock);
                    incr(CounterKind::WastedActions);
                    self.finish_action(&action.txn, action.phase);
                    return;
                }
            }
        }
        self.waiters.push_back(Parked {
            action,
            waits_on: registered,
        });
    }

    /// Executes an action body under supervision: a panic — injected by the
    /// chaos plan or a genuine bug — aborts and quarantines the owning
    /// transaction (undo via its log chain, local locks released, its RVP
    /// still reported) instead of killing the executor thread. The executor
    /// returns to its inbox either way.
    fn execute(&mut self, mut action: Action) {
        let body = action.body.take().expect("action body executed once");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let faults = self.engine.db().faults();
            if faults.enabled() && faults.should_inject(FaultSite::ExecutorPanic) {
                incr(CounterKind::FaultsInjected);
                std::panic::panic_any(InjectedPanic);
            }
            let context = ActionContext {
                db: self.engine.db(),
                txn: &action.txn.handle,
                scratch: &action.txn.scratch,
            };
            body(&context)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(error)) => action.txn.mark_aborted(error),
            Err(_payload) => {
                incr(CounterKind::ExecutorPanicsRecovered);
                action.txn.mark_aborted(DbError::TxnAborted {
                    txn: action.txn.id(),
                    reason: "action panicked; quarantined by executor supervision".into(),
                });
            }
        }
        self.finish_action(&action.txn, action.phase);
    }

    /// Reports an action to its phase RVP and, if this report zeroed the RVP,
    /// initiates the next phase or the commit (Section 4.1.2).
    fn finish_action(&mut self, txn: &Arc<DoraTxnInner>, phase: usize) {
        self.engine.report_and_advance(txn, phase);
    }

    fn handle_completed(&mut self, txn: TxnId) {
        time_section(TimeCategory::EngineOverhead, || {
            self.locks.release_txn(txn);
            self.engine.db().lock_manager().remove_external_wait(txn);
        });
        self.retry_waiters();
        self.maybe_signal_drained();
    }

    /// Retries parked actions in FIFO order after a completion freed locks.
    /// Each retry first withdraws the wait edges the parked action had
    /// registered, then either runs the action or re-parks it against its
    /// *current* blockers — lock ownership may have changed while it waited,
    /// and stale edges (or missing fresh ones) would blind the deadlock
    /// detector.
    fn retry_waiters(&mut self) {
        let parked = std::mem::take(&mut self.waiters);
        for Parked { action, waits_on } in parked {
            self.engine
                .db()
                .lock_manager()
                .remove_external_waits(action.txn.id(), &waits_on);
            if action.txn.is_aborted() {
                incr(CounterKind::WastedActions);
                self.finish_action(&action.txn, action.phase);
                continue;
            }
            match self
                .locks
                .acquire(action.txn.id(), &action.identifier, action.mode)
            {
                LocalAcquire::Granted => {
                    action
                        .txn
                        .note_involved(self.shared.table, self.shared.index);
                    self.execute(action);
                }
                LocalAcquire::Conflict(owners) => self.park(action, owners),
            }
        }
    }

    fn maybe_signal_drained(&mut self) {
        if self.awaiting_rule {
            return;
        }
        if let Some(barrier) = &self.draining {
            if self.locks.is_empty() && self.waiters.is_empty() {
                barrier.signal();
                self.awaiting_rule = true;
            }
        }
    }

    /// The routing rule has been updated: push the deferred actions back
    /// through the engine (they may now belong to a different executor) and
    /// resume normal service.
    fn finish_resize(&mut self) {
        self.draining = None;
        self.awaiting_rule = false;
        let deferred = std::mem::take(&mut self.deferred);
        for action in deferred {
            self.engine.redispatch(action);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_barrier_blocks_until_signal() {
        let barrier = Arc::new(ResizeBarrier::new());
        let barrier2 = Arc::clone(&barrier);
        let waiter = std::thread::spawn(move || barrier2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!waiter.is_finished());
        barrier.signal();
        waiter.join().unwrap();
    }

    #[test]
    fn executor_shared_queue_is_fifo() {
        let shared = ExecutorShared::new(TableId(1), 0);
        shared.enqueue(Message::Completed(TxnId(1)));
        shared.enqueue(Message::Completed(TxnId(2)));
        assert_eq!(shared.queue_depth(), 2);
        match shared.dequeue() {
            Message::Completed(txn) => assert_eq!(txn, TxnId(1)),
            other => panic!("unexpected {other:?}"),
        }
        match shared.dequeue() {
            Message::Completed(txn) => assert_eq!(txn, TxnId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lock_inbox_then_notify_delivers_message() {
        let shared = Arc::new(ExecutorShared::new(TableId(1), 0));
        {
            let mut inbox = shared.lock_inbox();
            inbox.push(Message::Completed(TxnId(9)));
        }
        assert_eq!(shared.queue_depth(), 1, "guard drop must refresh depth");
        shared.notify();
        match shared.dequeue() {
            Message::Completed(txn) => assert_eq!(txn, TxnId(9)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(shared.queue_depth(), 0);
    }

    #[test]
    fn dequeue_batch_drains_everything_in_fifo_order() {
        let shared = ExecutorShared::new(TableId(1), 0);
        for id in 1..=5 {
            shared.enqueue(Message::Completed(TxnId(id)));
        }
        assert_eq!(shared.queue_depth(), 5);
        let mut batch = VecDeque::new();
        shared.dequeue_batch(&mut batch);
        assert_eq!(shared.queue_depth(), 0);
        let drained: Vec<TxnId> = batch
            .iter()
            .map(|message| match message {
                Message::Completed(txn) => *txn,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(drained, (1..=5).map(TxnId).collect::<Vec<_>>());
    }

    #[test]
    fn dequeue_batch_blocks_until_work_arrives() {
        let shared = Arc::new(ExecutorShared::new(TableId(1), 0));
        let shared2 = Arc::clone(&shared);
        let consumer = std::thread::spawn(move || {
            let mut batch = VecDeque::new();
            shared2.dequeue_batch(&mut batch);
            batch.len()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(!consumer.is_finished(), "must block on an empty inbox");
        shared.enqueue(Message::Completed(TxnId(1)));
        assert_eq!(consumer.join().unwrap(), 1);
    }
}
