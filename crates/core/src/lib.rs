//! DORA: Data-Oriented Transaction Execution.
//!
//! This crate implements the paper's contribution — the *thread-to-data*
//! execution architecture of Section 4 — on top of the `dora-storage`
//! substrate:
//!
//! * [`routing`] — routing rules bind executors to disjoint *datasets* of
//!   each table (Section 4.1.1); the [`resource`] manager adjusts them at
//!   run time (Appendix A.2.1).
//! * [`flow`] / [`action`] — transactions are decomposed into *actions*
//!   organized in a *transaction flow graph* whose phases are separated by
//!   *rendezvous points* (Section 4.1.2).
//! * [`program`] — declarative transaction programs ([`TxnProgram`]): one
//!   definition per transaction, compiled to a DORA flow graph
//!   (`compile_dora`) or to a sequential baseline closure
//!   (`compile_baseline`), so workloads never write a transaction twice.
//! * [`locallock`] — each executor's thread-local lock table with
//!   shared/exclusive modes and key-prefix conflict semantics
//!   (Section 4.1.3).
//! * [`conflict`] — static, DIBS-style conflict analysis over program
//!   templates, run once per workload at bind time: steps whose template
//!   conflicts with nothing skip the local-lock-table probe entirely, and
//!   high-abort programs are auto-derived as DORA-S serialized plans.
//! * [`executor`] — executor threads with incoming and completed queues,
//!   serving actions in FIFO order.
//! * [`engine`] — the [`DoraEngine`]: dispatching, atomic phase submission
//!   (the deadlock-avoidance rule of Section 4.2.3), the terminal-RVP commit
//!   protocol (steps 9–12 of Figure 9) and secondary-action handling
//!   (Section 4.2.2).
//! * [`adaptive`] — adaptive skew-aware repartitioning: a skew detector over
//!   sampled executor load and a background controller that synthesizes
//!   rebalanced routing rules and drives the dataset-resize drain protocol
//!   while transactions stay in flight (Appendix A.2.1 made reactive).
//!
//! The engine keeps the ACID properties of the underlying storage manager:
//! probes and updates run without centralized concurrency control only
//! because their executor serializes conflicting actions through its local
//! lock table, while record inserts and deletes still take row locks through
//! the centralized lock manager (Section 4.2.1).

pub mod action;
pub mod adaptive;
pub mod config;
pub mod conflict;
pub mod engine;
pub mod executor;
pub mod flow;
pub mod locallock;
pub mod program;
pub mod resource;
pub mod routing;
pub mod txn;

pub use action::{ActionContext, ActionSpec, LocalMode};
pub use adaptive::{balanced_rule, AdaptiveController, SkewDetector};
pub use config::DoraConfig;
pub use conflict::{
    routes_may_overlap, templates_conflict, ConflictMatrix, CoverageGap, KeyAtom, ProgramTemplate,
    StepTemplate,
};
pub use engine::DoraEngine;
pub use flow::FlowGraph;
pub use locallock::LocalLockTable;
pub use program::{OnDuplicate, OnMissing, PreparedProgram, Step, StepCtx, TxnProgram};
pub use resource::{AbortRateMonitor, ResourceManager};
pub use routing::{RoutingRule, RoutingTable};
pub use txn::DoraTxn;
