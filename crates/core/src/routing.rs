//! Routing rules: binding executors to disjoint datasets.
//!
//! A routing rule (Section 4.1.1) maps every possible record of a table to
//! exactly one *dataset*, and each dataset is assigned to one executor. The
//! paper notes that the primary or candidate key columns work well as routing
//! fields; the benchmarks in this reproduction route on the leading
//! primary-key column (e.g. the Warehouse id), so the rule partitions the
//! integer domain of that column into contiguous ranges. A hash fallback
//! covers non-integer or absent leading fields.
//!
//! The rule set is kept behind a read-write lock so the resource manager can
//! change it at run time (Appendix A.2.1) while dispatchers keep routing.

use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use dora_common::prelude::*;

/// How one table's records map to its executors.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingRule {
    /// Contiguous ranges over the leading routing-field value: executor `i`
    /// owns values in `[boundaries[i-1], boundaries[i])`, with executor 0
    /// owning everything below `boundaries[0]` and the last executor owning
    /// everything at or above the last boundary.
    Range {
        /// Ascending split points; `len() == executors - 1`.
        boundaries: Vec<i64>,
    },
    /// Hash of the whole identifier modulo the executor count. Used when the
    /// routing field is not an integer or when no natural ranges exist.
    Hash {
        /// Number of executors.
        executors: usize,
    },
}

impl RoutingRule {
    /// Builds a range rule splitting `[low, high]` (inclusive) evenly across
    /// `executors` executors.
    pub fn even_ranges(low: i64, high: i64, executors: usize) -> Self {
        assert!(executors >= 1, "need at least one executor");
        assert!(high >= low, "invalid key domain");
        let span = (high - low + 1).max(1);
        let mut boundaries = Vec::with_capacity(executors.saturating_sub(1));
        for i in 1..executors {
            let boundary = low + (span * i as i64) / executors as i64;
            boundaries.push(boundary);
        }
        RoutingRule::Range { boundaries }
    }

    /// Number of executors (datasets) the rule currently defines.
    pub fn executor_count(&self) -> usize {
        match self {
            RoutingRule::Range { boundaries } => boundaries.len() + 1,
            RoutingRule::Hash { executors } => *executors,
        }
    }

    /// Maps an action identifier to its executor index.
    ///
    /// Identifiers that contain at least the leading routing field map
    /// deterministically; the empty identifier (a *secondary action*,
    /// Section 4.2.2) cannot be routed and returns `None`.
    pub fn route(&self, identifier: &Key) -> Option<usize> {
        if identifier.is_empty() {
            return None;
        }
        match self {
            RoutingRule::Range { boundaries } => {
                let value = identifier.leading_int()?;
                Some(boundaries.partition_point(|b| *b <= value))
            }
            RoutingRule::Hash { executors } => {
                let mut hasher = DefaultHasher::new();
                identifier.values().first().hash(&mut hasher);
                Some((hasher.finish() as usize) % (*executors).max(1))
            }
        }
    }

    /// The inclusive value range `[low, high]` owned by executor `index`
    /// under a range rule (`None` for hash rules or out-of-range indexes).
    /// `i64::MIN`/`i64::MAX` stand in for the open ends.
    pub fn range_of(&self, index: usize) -> Option<(i64, i64)> {
        match self {
            RoutingRule::Range { boundaries } => {
                if index > boundaries.len() {
                    return None;
                }
                let low = if index == 0 {
                    i64::MIN
                } else {
                    boundaries[index - 1]
                };
                let high = if index == boundaries.len() {
                    i64::MAX
                } else {
                    boundaries[index] - 1
                };
                Some((low, high))
            }
            RoutingRule::Hash { .. } => None,
        }
    }
}

/// The set of routing rules for every bound table.
#[derive(Debug, Default)]
pub struct RoutingTable {
    rules: RwLock<Vec<Option<RoutingRule>>>,
}

impl RoutingTable {
    /// Creates an empty routing table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the rule for `table`.
    pub fn set_rule(&self, table: TableId, rule: RoutingRule) {
        let mut rules = self.rules.write();
        let index = table.0 as usize;
        if rules.len() <= index {
            rules.resize(index + 1, None);
        }
        rules[index] = Some(rule);
    }

    /// The current rule for `table`, if the table is bound.
    pub fn rule(&self, table: TableId) -> Option<RoutingRule> {
        self.rules.read().get(table.0 as usize).cloned().flatten()
    }

    /// Routes an identifier for `table` to an executor index.
    pub fn route(&self, table: TableId, identifier: &Key) -> DbResult<Option<usize>> {
        let rules = self.rules.read();
        let rule = rules
            .get(table.0 as usize)
            .and_then(|r| r.as_ref())
            .ok_or_else(|| DbError::NoSuchObject(format!("routing rule for {table}")))?;
        Ok(rule.route(identifier))
    }

    /// Number of tables with a rule installed.
    pub fn bound_tables(&self) -> usize {
        self.rules.read().iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_partition_the_domain() {
        let rule = RoutingRule::even_ranges(1, 100, 4);
        assert_eq!(rule.executor_count(), 4);
        // Every value maps to exactly one executor and the mapping is
        // monotone in the key.
        let mut previous = 0usize;
        let mut counts = vec![0usize; 4];
        for value in 1..=100i64 {
            let executor = rule.route(&Key::int(value)).unwrap();
            assert!(executor >= previous);
            previous = executor;
            counts[executor] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == 25),
            "even split expected, got {counts:?}"
        );
    }

    #[test]
    fn single_executor_owns_everything() {
        let rule = RoutingRule::even_ranges(1, 10, 1);
        assert_eq!(rule.executor_count(), 1);
        assert_eq!(rule.route(&Key::int(-5)), Some(0));
        assert_eq!(rule.route(&Key::int(1_000_000)), Some(0));
    }

    #[test]
    fn domain_smaller_than_executor_count_still_partitions() {
        // 3 key values spread over 8 executors: duplicate boundaries are
        // fine — every value must route to exactly one valid executor and
        // the mapping must stay monotone. Some executors simply own empty
        // datasets.
        let rule = RoutingRule::even_ranges(1, 3, 8);
        assert_eq!(rule.executor_count(), 8);
        let mut previous = 0usize;
        for value in 1..=3i64 {
            let executor = rule.route(&Key::int(value)).unwrap();
            assert!(executor < 8, "value {value} routed to executor {executor}");
            assert!(executor >= previous, "routing must stay monotone");
            previous = executor;
        }
        // Out-of-domain values clamp into the first/last dataset instead of
        // failing: the routing rule is total over i64.
        assert!(rule.route(&Key::int(i64::MIN)).unwrap() < 8);
        assert!(rule.route(&Key::int(i64::MAX)).unwrap() < 8);
    }

    #[test]
    fn single_value_domain_routes_consistently() {
        let rule = RoutingRule::even_ranges(5, 5, 4);
        assert_eq!(rule.executor_count(), 4);
        let owner = rule.route(&Key::int(5)).unwrap();
        assert!(owner < 4);
        // Repeated routing is deterministic.
        assert_eq!(rule.route(&Key::int(5)).unwrap(), owner);
    }

    #[test]
    fn uneven_splits_distribute_the_remainder() {
        // 10 values over 3 executors cannot split evenly; dataset sizes must
        // differ by at most one and cover the domain exactly once.
        let rule = RoutingRule::even_ranges(1, 10, 3);
        let mut counts = vec![0usize; 3];
        for value in 1..=10i64 {
            counts[rule.route(&Key::int(value)).unwrap()] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(
            counts.iter().all(|&c| (3..=4).contains(&c)),
            "sizes must differ by at most one, got {counts:?}"
        );
    }

    #[test]
    fn range_of_tiles_the_domain_without_gaps_or_overlap() {
        for executors in 1..=6usize {
            let rule = RoutingRule::even_ranges(0, 17, executors);
            let mut expected_low = i64::MIN;
            for index in 0..executors {
                let (low, high) = rule.range_of(index).unwrap();
                assert_eq!(low, expected_low, "gap/overlap before executor {index}");
                assert!(low <= high, "executor {index} has an inverted range");
                if index + 1 == executors {
                    assert_eq!(high, i64::MAX, "last executor must own the open top end");
                } else {
                    expected_low = high + 1;
                }
                // Routing agrees with the reported ownership at the edges.
                if high < i64::MAX {
                    assert_eq!(rule.route(&Key::int(high)), Some(index));
                }
                if low > i64::MIN {
                    assert_eq!(rule.route(&Key::int(low)), Some(index));
                }
            }
        }
    }

    #[test]
    fn composite_identifiers_route_on_leading_field() {
        let rule = RoutingRule::even_ranges(1, 10, 2);
        let executor_a = rule.route(&Key::int2(2, 999)).unwrap();
        let executor_b = rule.route(&Key::int(2)).unwrap();
        assert_eq!(
            executor_a, executor_b,
            "prefix and full identifier must agree"
        );
    }

    #[test]
    fn empty_identifier_is_unroutable() {
        let rule = RoutingRule::even_ranges(1, 10, 2);
        assert_eq!(rule.route(&Key::empty()), None);
        let hash = RoutingRule::Hash { executors: 3 };
        assert_eq!(hash.route(&Key::empty()), None);
    }

    #[test]
    fn hash_rule_routes_text_keys() {
        let rule = RoutingRule::Hash { executors: 4 };
        let a = rule.route(&Key::from_values(["alpha"])).unwrap();
        let b = rule.route(&Key::from_values(["alpha"])).unwrap();
        assert_eq!(a, b, "routing must be deterministic");
        assert!(a < 4);
    }

    #[test]
    fn range_of_reports_owned_intervals() {
        let rule = RoutingRule::even_ranges(1, 100, 4);
        let (low0, high0) = rule.range_of(0).unwrap();
        let (low3, high3) = rule.range_of(3).unwrap();
        assert_eq!(low0, i64::MIN);
        assert_eq!(high3, i64::MAX);
        assert!(high0 < low3);
        assert!(rule.range_of(4).is_none());
        assert!(RoutingRule::Hash { executors: 2 }.range_of(0).is_none());
    }

    #[test]
    fn routing_table_set_and_route() {
        let table = RoutingTable::new();
        table.set_rule(TableId(2), RoutingRule::even_ranges(1, 10, 2));
        assert_eq!(table.bound_tables(), 1);
        assert_eq!(table.route(TableId(2), &Key::int(9)).unwrap(), Some(1));
        assert!(
            table.route(TableId(0), &Key::int(1)).is_err(),
            "unbound table must error"
        );
        // Replacing the rule changes routing (what the resource manager does).
        table.set_rule(TableId(2), RoutingRule::even_ranges(1, 10, 1));
        assert_eq!(table.route(TableId(2), &Key::int(9)).unwrap(), Some(0));
    }

    #[test]
    fn boundaries_move_records_between_executors() {
        // Shrinking executor 0 from [1,50] to [1,25] moves 26..=50 to
        // executor 1 — the resize the resource manager performs.
        let before = RoutingRule::Range {
            boundaries: vec![51],
        };
        let after = RoutingRule::Range {
            boundaries: vec![26],
        };
        assert_eq!(before.route(&Key::int(30)), Some(0));
        assert_eq!(after.route(&Key::int(30)), Some(1));
        assert_eq!(after.route(&Key::int(10)), Some(0));
    }
}
