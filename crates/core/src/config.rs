//! Configuration knobs for the DORA engine.

use dora_common::config::AdaptiveConfig;

/// Tuning parameters for a [`crate::DoraEngine`].
#[derive(Debug, Clone)]
pub struct DoraConfig {
    /// Default number of executors created per bound table when the caller
    /// does not specify one. The paper's resource manager varies this with
    /// table size, request rate and available hardware; the benchmark harness
    /// sizes it explicitly per workload.
    pub default_executors_per_table: usize,
    /// Abort-rate threshold (0..=1) above which the resource manager
    /// recommends switching a transaction type from its parallel flow graph
    /// to a serialized one (Appendix A.4 / Figure 11).
    pub serialize_abort_threshold: f64,
    /// Minimum number of observed transactions before the abort-rate monitor
    /// makes a recommendation.
    pub abort_monitor_min_samples: u64,
    /// Load-imbalance ratio (busiest executor / average) above which the
    /// resource manager rebalances a table's routing rule (Appendix A.2.1).
    pub rebalance_imbalance_ratio: f64,
    /// Knobs for the adaptive skew-aware repartitioning controller
    /// ([`crate::AdaptiveController`]). Disabled by default; when
    /// `adaptive.enabled` is set, binding a workload through the
    /// `ExecutionEngine` seam spawns the controller automatically.
    pub adaptive: AdaptiveConfig,
    /// Batch the executor message path (default `true`): phase dispatch
    /// groups a phase's actions per destination executor and pushes each
    /// group under one inbox lock with one wake-up, and executors drain
    /// their whole backlog per lock acquisition instead of popping one
    /// message at a time.
    ///
    /// `false` restores the per-message path — one lock/unlock and one
    /// condvar wake per message on both sides, and no atomic (all-queues
    /// latched) phase submission, so concurrent multi-action transactions
    /// may dispatch in inconsistent executor orders and occasionally abort
    /// as deadlock victims (the hazard Section 4.2.3's latched submission
    /// exists to prevent). It is a measurement baseline for the `dispatch`
    /// benchmark, not a production setting.
    pub message_batching: bool,
    /// Apply the bind-time static conflict analysis (default `true`): steps
    /// whose [`crate::conflict::ConflictMatrix`] template conflicts with
    /// nothing skip the local-lock-table probe entirely (counter
    /// `LockProbesElided`), and programs whose predicted abort rate exceeds
    /// [`serialize_abort_threshold`](Self::serialize_abort_threshold) are
    /// auto-derived as DORA-S serialized plans (Figure 11) instead of
    /// relying on a hand-set `serialized(true)`.
    ///
    /// `false` disables both: every routed action probes its executor's
    /// local lock table and plans run exactly as authored — the A/B baseline
    /// of the `conflicts` benchmark, and the right setting for experiments
    /// that measure hand-set plans (e.g. Figure 11 itself).
    pub conflict_elision: bool,
}

impl Default for DoraConfig {
    fn default() -> Self {
        Self {
            default_executors_per_table: 4,
            serialize_abort_threshold: 0.1,
            abort_monitor_min_samples: 100,
            rebalance_imbalance_ratio: 1.5,
            adaptive: AdaptiveConfig::default(),
            message_batching: true,
            conflict_elision: true,
        }
    }
}

impl DoraConfig {
    /// Configuration suitable for unit tests: few executors, eager
    /// rebalancing decisions.
    pub fn for_tests() -> Self {
        Self {
            default_executors_per_table: 2,
            abort_monitor_min_samples: 10,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = DoraConfig::default();
        assert!(config.default_executors_per_table >= 1);
        assert!(config.serialize_abort_threshold > 0.0 && config.serialize_abort_threshold < 1.0);
        assert!(config.rebalance_imbalance_ratio > 1.0);
    }
}
