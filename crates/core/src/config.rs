//! Configuration knobs for the DORA engine.

use dora_common::config::AdaptiveConfig;

/// Tuning parameters for a [`crate::DoraEngine`].
#[derive(Debug, Clone)]
pub struct DoraConfig {
    /// Default number of executors created per bound table when the caller
    /// does not specify one. The paper's resource manager varies this with
    /// table size, request rate and available hardware; the benchmark harness
    /// sizes it explicitly per workload.
    pub default_executors_per_table: usize,
    /// Abort-rate threshold (0..=1) above which the resource manager
    /// recommends switching a transaction type from its parallel flow graph
    /// to a serialized one (Appendix A.4 / Figure 11).
    pub serialize_abort_threshold: f64,
    /// Minimum number of observed transactions before the abort-rate monitor
    /// makes a recommendation.
    pub abort_monitor_min_samples: u64,
    /// Load-imbalance ratio (busiest executor / average) above which the
    /// resource manager rebalances a table's routing rule (Appendix A.2.1).
    pub rebalance_imbalance_ratio: f64,
    /// Knobs for the adaptive skew-aware repartitioning controller
    /// ([`crate::AdaptiveController`]). Disabled by default; when
    /// `adaptive.enabled` is set, binding a workload through the
    /// `ExecutionEngine` seam spawns the controller automatically.
    pub adaptive: AdaptiveConfig,
}

impl Default for DoraConfig {
    fn default() -> Self {
        Self {
            default_executors_per_table: 4,
            serialize_abort_threshold: 0.1,
            abort_monitor_min_samples: 100,
            rebalance_imbalance_ratio: 1.5,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

impl DoraConfig {
    /// Configuration suitable for unit tests: few executors, eager
    /// rebalancing decisions.
    pub fn for_tests() -> Self {
        Self {
            default_executors_per_table: 2,
            abort_monitor_min_samples: 10,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = DoraConfig::default();
        assert!(config.default_executors_per_table >= 1);
        assert!(config.serialize_abort_threshold > 0.0 && config.serialize_abort_threshold < 1.0);
        assert!(config.rebalance_imbalance_ratio > 1.0);
    }
}
