//! Static, workload-level conflict analysis over transaction-program
//! templates.
//!
//! DORA routes every action to the executor that owns its routing key and
//! probes that executor's [`LocalLockTable`](crate::locallock::LocalLockTable)
//! before running it. For many step templates the probe is provably
//! pointless: no other template in the workload can ever hold a conflicting
//! lock on an overlapping key. This module decides that *offline*, in the
//! spirit of DIBS (`predicate.rs`/`solver.rs`): templates are compared
//! pairwise once per workload at `bind` time — never per transaction — and
//! the resulting [`ConflictMatrix`] is threaded through
//! [`TxnProgram::with_conflicts`](crate::program::TxnProgram::with_conflicts)
//! so compilation marks probe-free steps and executors skip the acquire call
//! entirely (counter `LockProbesElided`).
//!
//! A template describes a step's *declared* data effects: the table, the
//! route key expression (constant / parameter / per-transaction-unique
//! positions), the column sets it reads and writes, whether it changes row
//! existence (insert/delete), and its expected abort rate. Two templates
//! **conflict** unless the solver can dismiss the pair by one of three
//! sound arguments:
//!
//! 1. **Disjoint routes** — the route key expressions can never produce
//!    overlapping keys (some compared position is constant-vs-different-
//!    constant, or draws from a per-transaction-unique domain). Route
//!    overlap uses the same *prefix* semantics as
//!    [`Key::overlaps`](dora_common::Key::overlaps), which is exactly the
//!    test the local lock table applies at runtime.
//! 2. **Both read-only** — neither side writes a column or changes row
//!    existence.
//! 3. **Column dismissal** — at most one side writes, neither side changes
//!    row existence, and the writer's written columns are disjoint from the
//!    reader's read columns. This is sound because row mutations are atomic
//!    under the storage layer's page latches and a rollback restores the
//!    full pre-image — the reader can never observe a value it declared an
//!    interest in mid-flight. Writer-vs-writer pairs are **never**
//!    dismissed this way even with disjoint write sets: an abort of one
//!    writer restores the *whole row* pre-image and would clobber the other
//!    writer's committed disjoint-column update.
//!
//! Insert/delete templates (existence effects) conflict with every
//! overlapping accessor of the table unless both sides declare full
//! primary-key templates that are provably disjoint (e.g. a key position
//! carrying the transaction id).
//!
//! Secondary (unrouted) templates take part only in the *coverage report*:
//! they acquire no local locks today, so they neither elide nor block
//! elision — their interaction with routed writers is governed by the
//! storage layer's concurrency-control mode, exactly as before this
//! analysis existed.
//!
//! **Soundness boundary:** the matrix reasons over the *declared* workload.
//! Elision is only applied to programs the workload declared (matched by
//! program name), and it assumes every concurrently running program is an
//! instance of some declared template. Ad-hoc programs submitted to the
//! same engine get no elision themselves (conservative for them), but if
//! they write tables that declared templates were elided on, the analysis'
//! closed-world assumption is violated — the same assumption DIBS makes.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt::Write as _;

use dora_common::prelude::*;

/// One position of a template key expression.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyAtom {
    /// A compile-time constant: every instance carries exactly this value.
    Const(Value),
    /// A per-transaction parameter, unknown at analysis time; two instances
    /// may or may not collide. The name is for reports only.
    Param(&'static str),
    /// A parameter drawn from a per-transaction-unique domain (e.g. the
    /// transaction id baked into a key column): two distinct transaction
    /// instances can never produce the same value at this position, and the
    /// domain is disjoint from every constant/parameter domain.
    Unique,
}

impl KeyAtom {
    /// `true` if two *distinct transaction instances* could produce equal
    /// values at this position.
    fn may_equal(&self, other: &KeyAtom) -> bool {
        match (self, other) {
            (KeyAtom::Unique, _) | (_, KeyAtom::Unique) => false,
            (KeyAtom::Const(a), KeyAtom::Const(b)) => a == b,
            _ => true,
        }
    }
}

/// Key-prefix overlap over templates, mirroring [`Key::overlaps`]: only the
/// common prefix is compared (a shorter key covers every extension of
/// itself), and the pair is disjoint iff some compared position provably
/// differs across instances.
pub fn routes_may_overlap(a: &[KeyAtom], b: &[KeyAtom]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x.may_equal(y))
}

/// What a template does — display/report flavor only; the conflict decision
/// reads the declared effects, not the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateKind {
    /// Routed read (shared intent).
    Read,
    /// Routed update (exclusive intent, no existence change).
    Write,
    /// Routed insert (existence effect).
    Insert,
    /// Routed delete (existence effect).
    Delete,
    /// Unrouted step executed on the submitting thread.
    Secondary,
}

/// The declared access pattern of one step of a transaction program.
///
/// Built by the workload alongside the program itself; the `label` must
/// match the corresponding [`Step`](crate::program::Step) label so the
/// matrix can be applied back onto compiled programs.
#[derive(Debug, Clone)]
pub struct StepTemplate {
    program: &'static str,
    label: &'static str,
    table: TableId,
    kind: TemplateKind,
    route: Vec<KeyAtom>,
    reads: BTreeSet<usize>,
    writes: BTreeSet<usize>,
    existence: bool,
    full_key: Option<Vec<KeyAtom>>,
    abort_rate: f64,
}

impl StepTemplate {
    fn new(label: &'static str, table: TableId, kind: TemplateKind, route: Vec<KeyAtom>) -> Self {
        let existence = matches!(kind, TemplateKind::Insert | TemplateKind::Delete);
        StepTemplate {
            program: "",
            label,
            table,
            kind,
            route,
            reads: BTreeSet::new(),
            writes: BTreeSet::new(),
            existence,
            full_key: None,
            abort_rate: 0.0,
        }
    }

    /// A routed read step.
    pub fn read(label: &'static str, table: TableId, route: Vec<KeyAtom>) -> Self {
        Self::new(label, table, TemplateKind::Read, route)
    }

    /// A routed update step (declare the written columns with
    /// [`writes`](Self::writes)).
    pub fn write(label: &'static str, table: TableId, route: Vec<KeyAtom>) -> Self {
        Self::new(label, table, TemplateKind::Write, route)
    }

    /// A routed insert: a row-existence effect.
    pub fn insert(label: &'static str, table: TableId, route: Vec<KeyAtom>) -> Self {
        Self::new(label, table, TemplateKind::Insert, route)
    }

    /// A routed delete: a row-existence effect.
    pub fn delete(label: &'static str, table: TableId, route: Vec<KeyAtom>) -> Self {
        Self::new(label, table, TemplateKind::Delete, route)
    }

    /// An unrouted step: no local locks, coverage report only.
    pub fn secondary(label: &'static str, table: TableId) -> Self {
        Self::new(label, table, TemplateKind::Secondary, Vec::new())
    }

    /// Declares the column positions whose *values* the step consumes.
    /// Checking mere row existence does not count — it is covered by the
    /// existence-effect rule.
    pub fn reads(mut self, cols: impl IntoIterator<Item = usize>) -> Self {
        self.reads.extend(cols);
        self
    }

    /// Declares the column positions the step writes.
    pub fn writes(mut self, cols: impl IntoIterator<Item = usize>) -> Self {
        self.writes.extend(cols);
        self
    }

    /// Declares the full primary-key expression (used to dismiss
    /// existence-effect pairs whose concrete keys can never collide).
    pub fn full_key(mut self, atoms: Vec<KeyAtom>) -> Self {
        self.full_key = Some(atoms);
        self
    }

    /// Declares the expected abort probability of this step (drives the
    /// Figure-11 auto-serialization decision).
    pub fn abort_rate(mut self, rate: f64) -> Self {
        self.abort_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The step label this template describes.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The owning program (set by [`ProgramTemplate::step`]).
    pub fn program(&self) -> &'static str {
        self.program
    }

    /// The accessed table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// `true` for unrouted templates.
    pub fn is_secondary(&self) -> bool {
        self.kind == TemplateKind::Secondary
    }

    fn is_writer(&self) -> bool {
        !self.writes.is_empty() || self.existence
    }
}

/// Decides whether two templates (possibly the same one, standing for two
/// concurrent instances) can ever hold conflicting local locks on
/// overlapping keys. See the module docs for the three dismissal rules.
pub fn templates_conflict(a: &StepTemplate, b: &StepTemplate) -> bool {
    if a.is_secondary() || b.is_secondary() {
        return false; // secondary steps take no local locks at all
    }
    if a.table != b.table {
        return false;
    }
    if !routes_may_overlap(&a.route, &b.route) {
        return false;
    }
    if !a.is_writer() && !b.is_writer() {
        return false;
    }
    if a.existence || b.existence {
        // Insert/delete: only a provably-disjoint full-key pair is safe.
        if let (Some(ka), Some(kb)) = (&a.full_key, &b.full_key) {
            if !routes_may_overlap(ka, kb) {
                return false;
            }
        }
        return true;
    }
    if !a.writes.is_empty() && !b.writes.is_empty() {
        return true; // writer-vs-writer: full-row undo forbids dismissal
    }
    let (writer, reader) = if a.writes.is_empty() { (b, a) } else { (a, b) };
    writer.writes.intersection(&reader.reads).next().is_some()
}

/// The declared access patterns of one program's steps.
#[derive(Debug, Clone, Default)]
pub struct ProgramTemplate {
    name: &'static str,
    steps: Vec<StepTemplate>,
}

impl ProgramTemplate {
    /// Starts a template for the program named `name` (must match
    /// `TxnProgram::name()` for the matrix to apply).
    pub fn new(name: &'static str) -> Self {
        ProgramTemplate {
            name,
            steps: Vec::new(),
        }
    }

    /// Appends a step template, stamping it with this program's name.
    /// Duplicate labels within one program must share one declaration that
    /// covers every instance (e.g. TPC-C's per-item reads).
    pub fn step(mut self, mut step: StepTemplate) -> Self {
        step.program = self.name;
        self.steps.push(step);
        self
    }

    /// The program name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The declared steps.
    pub fn steps(&self) -> &[StepTemplate] {
        &self.steps
    }
}

/// A step the workload's routing fields cannot cover: it runs unrouted on
/// the submitting thread (a *secondary fallback*). Listed by the bind-time
/// coverage report; counted at runtime via `SecondaryFallbacks` when the
/// step was not even declared secondary.
#[derive(Debug, Clone)]
pub struct CoverageGap {
    /// Owning program.
    pub program: &'static str,
    /// Step label.
    pub label: &'static str,
    /// The table the step touches without a route.
    pub table: TableId,
    /// `true` if the workload declared the step secondary on purpose.
    pub declared: bool,
}

/// The bind-time result of analyzing a workload's program templates:
/// which steps are probe-free, which programs should run as DORA-S
/// serialized plans, and which steps the routing fields cannot cover.
/// A `(program, step label)` pair naming one step template.
type StepId = (&'static str, &'static str);

#[derive(Debug, Clone)]
pub struct ConflictMatrix {
    programs: HashSet<&'static str>,
    elide: HashSet<StepId>,
    serialize: HashSet<&'static str>,
    conflicts: Vec<(StepId, StepId)>,
    coverage: Vec<CoverageGap>,
    abort_estimates: BTreeMap<&'static str, f64>,
    routed_templates: usize,
    total_templates: usize,
}

impl ConflictMatrix {
    /// Runs the pairwise analysis (including self-pairs — a template racing
    /// a second instance of itself) and derives the elision set, the
    /// auto-serialization set (predicted program abort rate ≥
    /// `serialize_abort_threshold`, at least two steps, and at least one
    /// conflicting step — Figure 11's DORA-S criterion), and the coverage
    /// report.
    pub fn analyze(programs: &[ProgramTemplate], serialize_abort_threshold: f64) -> Self {
        let steps: Vec<&StepTemplate> = programs.iter().flat_map(|p| p.steps.iter()).collect();
        let id = |s: &StepTemplate| (s.program, s.label);

        let mut conflicted: HashSet<(&'static str, &'static str)> = HashSet::new();
        let mut conflicts = Vec::new();
        for (i, a) in steps.iter().enumerate() {
            for b in steps.iter().skip(i) {
                if templates_conflict(a, b) {
                    conflicted.insert(id(a));
                    conflicted.insert(id(b));
                    conflicts.push((id(a), id(b)));
                }
            }
        }

        let mut elide = HashSet::new();
        let mut coverage = Vec::new();
        let mut routed_templates = 0usize;
        for step in &steps {
            if step.route.is_empty() {
                coverage.push(CoverageGap {
                    program: step.program,
                    label: step.label,
                    table: step.table,
                    declared: step.is_secondary(),
                });
                continue;
            }
            routed_templates += 1;
            if !conflicted.contains(&id(step)) {
                elide.insert(id(step));
            }
        }

        let mut serialize = HashSet::new();
        let mut abort_estimates = BTreeMap::new();
        for program in programs {
            let survive: f64 = program.steps.iter().map(|s| 1.0 - s.abort_rate).product();
            let abort_est = 1.0 - survive;
            abort_estimates.insert(program.name, abort_est);
            let has_conflict = program.steps.iter().any(|s| conflicted.contains(&id(s)));
            if abort_est >= serialize_abort_threshold && program.steps.len() >= 2 && has_conflict {
                serialize.insert(program.name);
            }
        }

        ConflictMatrix {
            programs: programs.iter().map(|p| p.name).collect(),
            elide,
            serialize,
            conflicts,
            coverage,
            abort_estimates,
            routed_templates,
            total_templates: steps.len(),
        }
    }

    /// `true` if the matrix has a declaration for this program name.
    /// Programs it does not know get no elision and no auto-serialization.
    pub fn knows_program(&self, name: &'static str) -> bool {
        self.programs.contains(name)
    }

    /// `true` if the step conflicts with nothing in the workload and its
    /// executor may skip the local-lock-table probe.
    pub fn is_probe_free(&self, program: &'static str, label: &'static str) -> bool {
        self.elide.contains(&(program, label))
    }

    /// `true` if the program should be auto-derived as a DORA-S serialized
    /// plan (Figure 11) instead of relying on a hand-set `serialized(true)`.
    pub fn should_serialize(&self, program: &'static str) -> bool {
        self.serialize.contains(&program)
    }

    /// Steps the routing fields cannot cover.
    pub fn coverage_gaps(&self) -> &[CoverageGap] {
        &self.coverage
    }

    /// Number of probe-free templates.
    pub fn probe_free_count(&self) -> usize {
        self.elide.len()
    }

    /// Number of routed templates analyzed.
    pub fn routed_count(&self) -> usize {
        self.routed_templates
    }

    /// Number of programs the matrix auto-derives as serialized plans.
    pub fn serialized_count(&self) -> usize {
        self.serialize.len()
    }

    /// Number of conflicting template pairs (including self-pairs).
    pub fn conflict_pair_count(&self) -> usize {
        self.conflicts.len()
    }

    /// Human-readable bind-time report: per-step verdicts, conflict pairs,
    /// auto-serialization decisions, and the routing-coverage section.
    /// `table_name` resolves table ids for display.
    pub fn report(&self, table_name: &dyn Fn(TableId) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "conflict analysis: {} templates ({} routed), {} probe-free, {} conflicting pairs",
            self.total_templates,
            self.routed_templates,
            self.elide.len(),
            self.conflicts.len()
        );
        let mut elided: Vec<_> = self.elide.iter().collect();
        elided.sort();
        for (program, label) in elided {
            let _ = writeln!(out, "  probe-free: {program} / {label}");
        }
        let mut serialized: Vec<_> = self.serialize.iter().collect();
        serialized.sort();
        for program in serialized {
            let est = self.abort_estimates.get(program).copied().unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  auto-serialized (DORA-S): {program} (predicted abort rate {est:.2})"
            );
        }
        if self.coverage.is_empty() {
            let _ = writeln!(out, "  routing coverage: complete");
        } else {
            let _ = writeln!(
                out,
                "  routing coverage: {} step(s) run unrouted on the submitting thread:",
                self.coverage.len()
            );
            for gap in &self.coverage {
                let tag = if gap.declared {
                    "declared secondary"
                } else {
                    "SECONDARY FALLBACK"
                };
                let _ = writeln!(
                    out,
                    "    {} / {} on {} [{}]",
                    gap.program,
                    gap.label,
                    table_name(gap.table),
                    tag
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u32) -> TableId {
        TableId(n)
    }

    #[test]
    fn disjoint_routes_dismiss_any_pair() {
        let a = StepTemplate::write("w", table(1), vec![KeyAtom::Const(Value::Int(1))]).writes([2]);
        let b = StepTemplate::write("v", table(1), vec![KeyAtom::Const(Value::Int(2))]).writes([2]);
        assert!(!templates_conflict(&a, &b));
        // Same constant: overlap, writer-vs-writer, conflict.
        let c = StepTemplate::write("u", table(1), vec![KeyAtom::Const(Value::Int(1))]).writes([3]);
        assert!(templates_conflict(&a, &c));
    }

    #[test]
    fn param_positions_overlap_but_unique_positions_never_do() {
        let a = StepTemplate::write("w", table(1), vec![KeyAtom::Param("x")]).writes([1]);
        assert!(templates_conflict(&a, &a), "self-pair on a param route");
        let u = StepTemplate::write("w", table(1), vec![KeyAtom::Unique]).writes([1]);
        assert!(!templates_conflict(&u, &u), "unique routes never collide");
    }

    #[test]
    fn prefix_semantics_match_key_overlaps() {
        // A one-atom route covers every two-atom extension of it, exactly
        // like Key::overlaps' prefix rule.
        let short = StepTemplate::write("w", table(1), vec![KeyAtom::Param("a")]).writes([1]);
        let long = StepTemplate::read(
            "r",
            table(1),
            vec![KeyAtom::Param("a"), KeyAtom::Param("b")],
        )
        .reads([1]);
        assert!(templates_conflict(&short, &long));
        // Empty route (would-be secondary built as routed) overlaps all.
        assert!(routes_may_overlap(&[], &[KeyAtom::Const(Value::Int(9))]));
    }

    #[test]
    fn read_only_pairs_and_cross_table_pairs_never_conflict() {
        let a = StepTemplate::read("r1", table(1), vec![KeyAtom::Param("x")]).reads([1]);
        let b = StepTemplate::read("r2", table(1), vec![KeyAtom::Param("x")]).reads([1]);
        assert!(!templates_conflict(&a, &b));
        let w = StepTemplate::write("w", table(2), vec![KeyAtom::Param("x")]).writes([1]);
        assert!(!templates_conflict(&a, &w), "different tables");
    }

    #[test]
    fn column_dismissal_requires_disjoint_reads_and_writes() {
        let writer = StepTemplate::write("w", table(1), vec![KeyAtom::Param("x")]).writes([2]);
        let disjoint_reader =
            StepTemplate::read("r", table(1), vec![KeyAtom::Param("x")]).reads([3]);
        let touching_reader =
            StepTemplate::read("r2", table(1), vec![KeyAtom::Param("x")]).reads([2, 3]);
        let blind_reader = StepTemplate::read("r3", table(1), vec![KeyAtom::Param("x")]);
        assert!(!templates_conflict(&writer, &disjoint_reader));
        assert!(templates_conflict(&writer, &touching_reader));
        assert!(!templates_conflict(&writer, &blind_reader), "reads nothing");
    }

    #[test]
    fn writer_vs_writer_is_never_column_dismissed() {
        // Disjoint write sets still conflict: an abort restores the full
        // row pre-image and would clobber the other writer's columns.
        let a = StepTemplate::write("w1", table(1), vec![KeyAtom::Param("x")]).writes([2]);
        let b = StepTemplate::write("w2", table(1), vec![KeyAtom::Param("x")]).writes([3]);
        assert!(templates_conflict(&a, &b));
    }

    #[test]
    fn existence_effects_conflict_unless_full_keys_are_disjoint() {
        let insert = StepTemplate::insert("i", table(1), vec![KeyAtom::Param("x")]);
        let reader = StepTemplate::read("r", table(1), vec![KeyAtom::Param("x")]).reads([1]);
        assert!(templates_conflict(&insert, &reader), "phantom risk");
        assert!(templates_conflict(&insert, &insert));
        // Per-transaction-unique key position: two instances can never
        // collide, the self-pair is dismissed.
        let unique_insert = StepTemplate::insert("i2", table(1), vec![KeyAtom::Param("x")])
            .full_key(vec![KeyAtom::Param("x"), KeyAtom::Unique]);
        assert!(!templates_conflict(&unique_insert, &unique_insert));
        // But against a blind-keyed reader it still conflicts.
        assert!(templates_conflict(&unique_insert, &reader));
    }

    #[test]
    fn secondary_templates_only_feed_the_coverage_report() {
        let sec = StepTemplate::secondary("scan", table(1));
        let writer = StepTemplate::write("w", table(1), vec![KeyAtom::Param("x")]).writes([1]);
        assert!(!templates_conflict(&sec, &writer));

        let programs = vec![
            ProgramTemplate::new("p").step(sec).step(writer.clone()),
            ProgramTemplate::new("q").step(writer),
        ];
        let matrix = ConflictMatrix::analyze(&programs, 0.1);
        assert_eq!(matrix.coverage_gaps().len(), 1);
        assert!(matrix.coverage_gaps()[0].declared);
        assert!(!matrix.is_probe_free("p", "scan"));
    }

    #[test]
    fn matrix_elides_isolated_steps_and_serializes_high_abort_programs() {
        // "lookup" reads column 3, the only writer writes column 2 → the
        // read is dismissed against it and (being no writer itself) is
        // probe-free. The writer self-conflicts, so it keeps its probe.
        let programs = vec![
            ProgramTemplate::new("reader")
                .step(StepTemplate::read("lookup", table(1), vec![KeyAtom::Param("k")]).reads([3])),
            ProgramTemplate::new("writer")
                .step(
                    StepTemplate::write("bump", table(1), vec![KeyAtom::Param("k")])
                        .writes([2])
                        .abort_rate(0.5),
                )
                .step(
                    StepTemplate::write("bump2", table(2), vec![KeyAtom::Param("k")]).writes([1]),
                ),
        ];
        let matrix = ConflictMatrix::analyze(&programs, 0.1);
        assert!(matrix.is_probe_free("reader", "lookup"));
        assert!(!matrix.is_probe_free("writer", "bump"));
        assert!(matrix.should_serialize("writer"), "0.5 ≥ 0.1, 2 steps");
        assert!(!matrix.should_serialize("reader"));
        assert!(matrix.knows_program("reader"));
        assert!(!matrix.knows_program("adhoc"));
        let report = matrix.report(&|t| format!("table{}", t.0));
        assert!(report.contains("probe-free: reader / lookup"));
        assert!(report.contains("auto-serialized (DORA-S): writer"));
        assert!(report.contains("routing coverage: complete"));
    }

    #[test]
    fn single_step_or_conflict_free_programs_are_not_serialized() {
        let programs = vec![
            // High abort rate but only one step: nothing to serialize.
            ProgramTemplate::new("one").step(
                StepTemplate::write("w", table(1), vec![KeyAtom::Param("k")])
                    .writes([1])
                    .abort_rate(0.9),
            ),
            // High abort rate but conflict-free: serialization buys nothing.
            ProgramTemplate::new("free")
                .step(
                    StepTemplate::read("a", table(2), vec![KeyAtom::Param("k")])
                        .reads([1])
                        .abort_rate(0.5),
                )
                .step(StepTemplate::read("b", table(3), vec![KeyAtom::Param("k")]).reads([1])),
        ];
        let matrix = ConflictMatrix::analyze(&programs, 0.1);
        assert!(!matrix.should_serialize("one"));
        assert!(!matrix.should_serialize("free"));
        assert!(matrix.is_probe_free("free", "a"));
    }
}
