//! The baseline engine: conventional thread-to-transaction execution.
//!
//! Each client (worker) thread executes whole transactions against the
//! storage manager with full centralized concurrency control — the
//! uncoordinated access pattern whose lock-manager contention Section 3 of
//! the paper dissects. Deadlock victims are retried, mirroring how OLTP
//! systems resubmit aborted transactions.

use std::sync::Arc;

use dora_common::prelude::*;
use dora_metrics::{incr, CounterKind};
use dora_storage::{Database, TxnHandle};

pub use dora_common::outcome::BaselineOutcome;

/// The conventional execution engine.
///
/// It holds nothing but the database handle: in the thread-to-transaction
/// model there is no routing, no executors and no per-thread data — any
/// thread may touch any record, which is precisely why every access must go
/// through the centralized lock manager.
#[derive(Clone)]
pub struct BaselineEngine {
    db: Arc<Database>,
    max_retries: usize,
    /// Workload bound through [`crate::exec::ExecutionEngine::bind`]; in an
    /// `Arc` so clones share the binding, in a `OnceLock` so the per-txn
    /// read path stays lock-free.
    bound: Arc<std::sync::OnceLock<Arc<dyn dora_workloads::Workload>>>,
}

impl std::fmt::Debug for BaselineEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineEngine")
            .field("max_retries", &self.max_retries)
            .field("bound", &self.bound.get().map(|w| w.name()))
            .finish_non_exhaustive()
    }
}

impl BaselineEngine {
    /// Creates a baseline engine over `db`.
    pub fn new(db: Arc<Database>) -> Self {
        let max_retries = db.config().max_retries;
        Self {
            db,
            max_retries,
            bound: Arc::new(std::sync::OnceLock::new()),
        }
    }

    pub(crate) fn bound(&self) -> &std::sync::OnceLock<Arc<dyn dora_workloads::Workload>> {
        &self.bound
    }

    /// The underlying storage manager.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Executes `body` as one transaction with full concurrency control,
    /// retrying deadlock victims up to the configured limit.
    ///
    /// The commit rides the same durability path as DORA's: under group
    /// commit the worker thread *parks* on the log's LSN-keyed ticket queue
    /// until the flusher daemon hardens the group carrying its commit
    /// record (with ELR, its locks are already released by then) — so the
    /// Figure-style engine comparisons stay apples-to-apples across commit
    /// modes.
    ///
    /// Returns `Committed` if a (possibly retried) attempt committed,
    /// `Aborted` if the body requested an abort for workload reasons, and
    /// `GaveUp` if every retry ended in a deadlock (counted under
    /// `CounterKind::TxnGaveUp` so retry exhaustion stays visible).
    pub fn execute<F>(&self, body: F) -> DbResult<BaselineOutcome>
    where
        F: Fn(&Database, &TxnHandle) -> DbResult<()>,
    {
        for _attempt in 0..=self.max_retries {
            let txn = self.db.begin();
            // Worker supervision, symmetric to the DORA executors': a panic
            // in the transaction body — injected by the chaos plan or a
            // genuine bug — aborts this transaction instead of killing the
            // worker thread.
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let faults = self.db.faults();
                if faults.enabled() && faults.should_inject(FaultSite::ExecutorPanic) {
                    incr(CounterKind::FaultsInjected);
                    std::panic::panic_any(InjectedPanic);
                }
                body(&self.db, &txn)
            }))
            .unwrap_or_else(|_payload| {
                incr(CounterKind::ExecutorPanicsRecovered);
                Err(DbError::TxnAborted {
                    txn: txn.id(),
                    reason: "transaction body panicked; quarantined by worker supervision".into(),
                })
            });
            match attempt {
                Ok(()) => {
                    self.db.commit(&txn)?;
                    return Ok(BaselineOutcome::Committed);
                }
                Err(DbError::Deadlock { .. }) => {
                    self.db.abort(&txn)?;
                    // Retry the transaction from scratch.
                    continue;
                }
                Err(DbError::TxnAborted { .. }) => {
                    self.db.abort(&txn)?;
                    return Ok(BaselineOutcome::Aborted);
                }
                Err(other) => {
                    self.db.abort(&txn)?;
                    return Err(other);
                }
            }
        }
        incr(CounterKind::TxnGaveUp);
        Ok(BaselineOutcome::GaveUp)
    }

    /// Compiles `program` for this engine and runs it to completion.
    pub fn execute_program(&self, program: dora_core::TxnProgram) -> DbResult<BaselineOutcome> {
        self.execute(program.compile_baseline())
    }

    /// Runs one instance of a prepared program (compile-once/execute-many:
    /// the handle's shared step list is executed directly, no per-call
    /// lowering).
    pub fn execute_prepared(
        &self,
        prepared: &dora_core::PreparedProgram,
    ) -> DbResult<BaselineOutcome> {
        self.execute(|db, txn| prepared.run_baseline(db, txn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_storage::{ColumnDef, TableSchema};

    fn db_with_counter() -> (Arc<Database>, TableId) {
        let db = Database::for_tests();
        let table = db
            .create_table(TableSchema::new(
                "counters",
                vec![
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("n", ValueType::Int),
                ],
                vec![0],
            ))
            .unwrap();
        db.load_row(table, vec![Value::Int(1), Value::Int(0)])
            .unwrap();
        db.load_row(table, vec![Value::Int(2), Value::Int(0)])
            .unwrap();
        (db, table)
    }

    #[test]
    fn committed_transaction_applies_changes() {
        let (db, table) = db_with_counter();
        let engine = BaselineEngine::new(Arc::clone(&db));
        let outcome = engine
            .execute(|db, txn| {
                db.update_primary(txn, table, &Key::int(1), CcMode::Full, |row| {
                    row[1] = Value::Int(5);
                    Ok(())
                })
            })
            .unwrap();
        assert_eq!(outcome, BaselineOutcome::Committed);
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(5));
        db.commit(&check).unwrap();
    }

    #[test]
    fn workload_abort_rolls_back_without_retry() {
        let (db, table) = db_with_counter();
        let engine = BaselineEngine::new(Arc::clone(&db));
        let outcome = engine
            .execute(|db, txn| {
                db.update_primary(txn, table, &Key::int(1), CcMode::Full, |row| {
                    row[1] = Value::Int(77);
                    Ok(())
                })?;
                Err(DbError::TxnAborted {
                    txn: txn.id(),
                    reason: "invalid input".into(),
                })
            })
            .unwrap();
        assert_eq!(outcome, BaselineOutcome::Aborted);
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(1), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(0), "aborted change must not be visible");
        db.commit(&check).unwrap();
    }

    #[test]
    fn concurrent_increments_are_serialized_by_locks() {
        let (db, table) = db_with_counter();
        let engine = BaselineEngine::new(Arc::clone(&db));
        let threads = 4i64;
        let per_thread = 50i64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let engine = engine.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        let outcome = engine
                            .execute(|db, txn| {
                                db.update_primary(txn, table, &Key::int(2), CcMode::Full, |row| {
                                    let n = row[1].as_int()?;
                                    row[1] = Value::Int(n + 1);
                                    Ok(())
                                })
                            })
                            .unwrap();
                        assert_eq!(outcome, BaselineOutcome::Committed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let check = db.begin();
        let (_, row) = db
            .probe_primary(&check, table, &Key::int(2), false, CcMode::Full)
            .unwrap()
            .unwrap();
        assert_eq!(row[1], Value::Int(threads * per_thread));
        db.commit(&check).unwrap();
    }

    #[test]
    fn panicking_body_is_quarantined_and_the_worker_survives() {
        silence_injected_panics();
        let (db, table) = db_with_counter();
        let engine = BaselineEngine::new(Arc::clone(&db));
        let outcome = engine
            .execute(|db, txn| {
                db.update_primary(txn, table, &Key::int(1), CcMode::Full, |row| {
                    row[1] = Value::Int(42);
                    Ok(())
                })?;
                std::panic::panic_any(InjectedPanic)
            })
            .unwrap();
        assert_eq!(outcome, BaselineOutcome::Aborted);
        // The partial update rolled back and the same engine keeps serving.
        let check = engine
            .execute(|db, txn| {
                let (_, row) = db
                    .probe_primary(txn, table, &Key::int(1), false, CcMode::Full)?
                    .expect("row 1 exists");
                assert_eq!(row[1], Value::Int(0), "panicked change must roll back");
                Ok(())
            })
            .unwrap();
        assert_eq!(check, BaselineOutcome::Committed);
    }

    #[test]
    fn unexpected_errors_are_propagated() {
        let (db, _table) = db_with_counter();
        let engine = BaselineEngine::new(db);
        let result = engine.execute(|_, _| Err(DbError::Corruption("boom".into())));
        assert!(matches!(result, Err(DbError::Corruption(_))));
    }
}
