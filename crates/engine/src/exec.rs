//! The unified execution-engine abstraction.
//!
//! The paper compares two execution architectures — conventional
//! thread-to-transaction (the Baseline) and data-oriented thread-to-data
//! (DORA) — over the same storage manager and the same workloads.
//! [`ExecutionEngine`] is the single seam through which the load driver, the
//! benchmark harness, the equivalence tests and the examples drive either
//! one: bind a [`Workload`], then repeatedly execute transactions drawn from
//! its mix.
//!
//! Adding a third architecture (e.g. a physiologically-partitioned or
//! HTAP-style engine) requires implementing this trait and registering a
//! factory arm in [`build_engine_with`] — no workload, driver, test or
//! experiment code changes.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{
    AdaptiveController, ConflictMatrix, DoraConfig, DoraEngine, PreparedProgram, TxnProgram,
};
use dora_storage::{Database, Snapshot};
use dora_workloads::{Workload, WorkloadStats};

use crate::baseline::BaselineEngine;

/// One execution architecture bound to one workload.
///
/// Implementations hold whatever per-architecture state they need (executor
/// threads, routing tables, retry policy); callers see only:
/// *setup* — [`bind`](Self::bind) a workload once, *execute* —
/// [`execute_one`](Self::execute_one) transaction from the bound workload's
/// mix, and *teardown* — [`shutdown`](Self::shutdown).
pub trait ExecutionEngine: Send + Sync {
    /// Which registered architecture this is.
    fn kind(&self) -> EngineKind;

    /// Label matching the paper's figures ("Baseline", "DORA").
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// The underlying storage manager.
    fn db(&self) -> &Arc<Database>;

    /// Binds `workload` to this engine: whatever per-architecture setup the
    /// workload needs (DORA binds tables to executors; the baseline has no
    /// setup). Must be called exactly once, before `execute_one`.
    fn bind(&self, workload: Arc<dyn Workload>, executors_per_table: usize) -> DbResult<()>;

    /// Runs one transaction drawn from the bound workload's mix.
    ///
    /// # Panics
    /// Panics if no workload has been bound.
    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome;

    /// Like [`execute_one`](Self::execute_one), but also times the
    /// transaction and tallies its outcome under its transaction-type label
    /// in `stats` — the feed for the per-type summary tables (commits,
    /// aborts, gave-up, error rate, response times) the benchmark reports
    /// print. The default runs untimed and records nothing; both registered
    /// architectures override it.
    fn execute_one_timed(&self, rng: &mut SmallRng, stats: &WorkloadStats) -> TxnOutcome {
        let _ = stats;
        self.execute_one(rng)
    }

    /// Compiles `program` once into a reusable [`PreparedProgram`] handle —
    /// the compile-once/execute-many seam servers hold on to. The default
    /// just lowers; an architecture may also validate (e.g. that every
    /// routed table is bound).
    fn prepare(&self, program: TxnProgram) -> DbResult<PreparedProgram> {
        Ok(program.prepare())
    }

    /// Executes one instance of a prepared program, surfacing the terminal
    /// error instead of folding every failure into an outcome. The serving
    /// front-end uses this to tell a retryable abort apart from a
    /// non-retryable failure such as [`DbError::DurabilityLost`] (a ghost
    /// commit must never be re-run). Unlike [`execute_one`](Self::execute_one)
    /// this needs no bound workload: the program *is* the work.
    fn execute_prepared_checked(&self, prepared: &PreparedProgram) -> DbResult<TxnOutcome>;

    /// Outcome-folding convenience over
    /// [`execute_prepared_checked`](Self::execute_prepared_checked): every
    /// error becomes `Aborted`. Kept for callers that never need to
    /// distinguish failure modes (the load driver, the equivalence tests).
    fn execute_prepared(&self, prepared: &PreparedProgram) -> TxnOutcome {
        match self.execute_prepared_checked(prepared) {
            Ok(outcome) => outcome,
            Err(_) => TxnOutcome::Aborted,
        }
    }

    /// Checked compile-per-call path: prepares `program` and executes it
    /// once, surfacing terminal errors like the prepared variant.
    fn execute_program_checked(&self, program: TxnProgram) -> DbResult<TxnOutcome> {
        let prepared = self.prepare(program)?;
        self.execute_prepared_checked(&prepared)
    }

    /// Compile-per-call convenience: prepares `program` and executes it
    /// once. Source-compatible with the pre-prepared-handle API; hot paths
    /// should [`prepare`](Self::prepare) once instead.
    fn execute_program(&self, program: TxnProgram) -> TxnOutcome {
        match self.execute_program_checked(program) {
            Ok(outcome) => outcome,
            Err(_) => TxnOutcome::Aborted,
        }
    }

    /// Pins a [`Snapshot`] at the current published commit-ticket horizon.
    /// Engine-agnostic: snapshots live in the storage manager, below the
    /// execution architecture, so both registered engines share this.
    fn snapshot(&self) -> Snapshot {
        self.db().snapshot()
    }

    /// Executes a read-only prepared program against an already-pinned
    /// [`Snapshot`] — the HTAP scan path. The program runs on the calling
    /// thread with no DORA routing, no local-lock-table probes, and no
    /// centralized lock manager involvement; several scans may share one
    /// snapshot to amortize the pin.
    fn execute_on_snapshot(
        &self,
        prepared: &PreparedProgram,
        snapshot: &Arc<Snapshot>,
    ) -> DbResult<TxnOutcome> {
        prepared.run_snapshot(self.db(), snapshot)?;
        Ok(TxnOutcome::Committed)
    }

    /// Pins a fresh snapshot and executes a read-only prepared program on
    /// it. Rejects programs with write steps.
    fn execute_snapshot_checked(&self, prepared: &PreparedProgram) -> DbResult<TxnOutcome> {
        let snapshot = Arc::new(self.snapshot());
        self.execute_on_snapshot(prepared, &snapshot)
    }

    /// The bind-time conflict-analysis report (probe-free steps,
    /// auto-serialized programs, routing coverage), when the architecture ran
    /// one. `None` for architectures without conflict analysis or when the
    /// bound workload declares no templates.
    fn conflict_report(&self) -> Option<String> {
        None
    }

    /// Stops any engine-owned threads. Idempotent; the default is a no-op.
    fn shutdown(&self) {}
}

impl BaselineEngine {
    fn bound_workload(&self) -> &Arc<dyn Workload> {
        self.bound()
            .get()
            .expect("BaselineEngine: no workload bound")
    }
}

impl ExecutionEngine for BaselineEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Baseline
    }

    fn db(&self) -> &Arc<Database> {
        BaselineEngine::db(self)
    }

    fn bind(&self, workload: Arc<dyn Workload>, _executors_per_table: usize) -> DbResult<()> {
        // The conventional engine needs no per-workload setup: any thread may
        // touch any record, which is the whole point of the architecture.
        self.bound()
            .set(workload)
            .map_err(|_| DbError::InvalidOperation("workload already bound to this engine".into()))
    }

    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome {
        // Generic dispatch: draw the next declarative program from the bound
        // workload's mix and run its sequential (baseline) compilation on
        // the calling thread, retrying deadlock victims.
        let workload = self.bound_workload().clone();
        match workload
            .next_program(self.db(), rng)
            .and_then(|program| BaselineEngine::execute_program(self, program))
        {
            Ok(outcome) => outcome.into(),
            Err(_) => TxnOutcome::Aborted,
        }
    }

    fn execute_one_timed(&self, rng: &mut SmallRng, stats: &WorkloadStats) -> TxnOutcome {
        let workload = self.bound_workload().clone();
        let Ok(program) = workload.next_program(self.db(), rng) else {
            return TxnOutcome::Aborted;
        };
        let label = program.name();
        let start = Instant::now();
        let outcome = match BaselineEngine::execute_program(self, program) {
            Ok(outcome) => outcome.into(),
            Err(_) => TxnOutcome::Aborted,
        };
        stats.record_timed(label, outcome, start.elapsed());
        outcome
    }

    fn execute_prepared_checked(&self, prepared: &PreparedProgram) -> DbResult<TxnOutcome> {
        BaselineEngine::execute_prepared(self, prepared).map(TxnOutcome::from)
    }
}

/// Adapter presenting [`DoraEngine`] (which lives below the workload crate
/// and therefore cannot know about workloads) as an [`ExecutionEngine`].
pub struct DoraExecution {
    engine: Arc<DoraEngine>,
    bound: OnceLock<Arc<dyn Workload>>,
    /// The adaptive repartitioning controller, spawned at bind time when
    /// `DoraConfig::adaptive.enabled` is set. Stopped before the engine in
    /// [`ExecutionEngine::shutdown`] (a resize drains executors, so the
    /// controller must never outlive them).
    adaptive: Mutex<Option<AdaptiveController>>,
    /// The workload's conflict matrix, computed once at bind time when
    /// `DoraConfig::conflict_elision` is set and the workload declares step
    /// templates. Every program the mix produces is stamped against it
    /// before compilation (probe-free steps, DORA-S auto-serialization).
    conflicts: OnceLock<Arc<ConflictMatrix>>,
}

impl DoraExecution {
    /// Wraps an already-constructed DORA engine.
    pub fn new(engine: Arc<DoraEngine>) -> Self {
        Self {
            engine,
            bound: OnceLock::new(),
            adaptive: Mutex::new(None),
            conflicts: OnceLock::new(),
        }
    }

    /// The bind-time conflict matrix, when one was computed.
    pub fn conflict_matrix(&self) -> Option<&Arc<ConflictMatrix>> {
        self.conflicts.get()
    }

    /// Stamps `program` against the bind-time conflict matrix: marks
    /// probe-free steps and auto-serializes high-abort programs. A no-op when
    /// no matrix was computed or the program's name is unknown to it.
    fn with_conflicts(&self, program: TxnProgram) -> TxnProgram {
        match self.conflicts.get() {
            Some(matrix) => program.with_conflicts(matrix),
            None => program,
        }
    }

    /// The wrapped DORA engine, for callers that need architecture-specific
    /// access (routing tables, executor loads, flow-graph submission).
    pub fn dora(&self) -> &Arc<DoraEngine> {
        &self.engine
    }

    /// Resizes the adaptive controller has driven so far (0 when adaptivity
    /// is disabled).
    pub fn adaptive_resizes(&self) -> u64 {
        self.adaptive
            .lock()
            .as_ref()
            .map(AdaptiveController::resizes)
            .unwrap_or(0)
    }
}

impl ExecutionEngine for DoraExecution {
    fn kind(&self) -> EngineKind {
        EngineKind::Dora
    }

    fn db(&self) -> &Arc<Database> {
        self.engine.db()
    }

    fn bind(&self, workload: Arc<dyn Workload>, executors_per_table: usize) -> DbResult<()> {
        workload.bind_dora(&self.engine, executors_per_table)?;
        // Static conflict analysis, once per workload (DIBS-style): compare
        // every pair of declared step templates and record which steps can
        // skip the local-lock probe and which programs should run as DORA-S
        // serialized plans. Gated by `conflict_elision` so A/B runs (and the
        // Figure 11 plan comparison, which hand-picks plans) can turn the
        // whole mechanism off.
        if self.engine.config().conflict_elision {
            let templates = workload.conflict_templates(self.engine.db())?;
            if !templates.is_empty() {
                let matrix = ConflictMatrix::analyze(
                    &templates,
                    self.engine.config().serialize_abort_threshold,
                );
                let db = self.engine.db();
                let report = matrix.report(&|table| {
                    db.catalog()
                        .table(table)
                        .map(|meta| meta.schema.name.clone())
                        .unwrap_or_else(|_| table.to_string())
                });
                eprintln!("{report}");
                let _ = self.conflicts.set(Arc::new(matrix));
            }
        }
        self.bound.set(workload).map_err(|_| {
            DbError::InvalidOperation("workload already bound to this engine".into())
        })?;
        let adaptive_config = self.engine.config().adaptive.clone();
        if adaptive_config.enabled {
            *self.adaptive.lock() = Some(AdaptiveController::spawn(
                Arc::clone(&self.engine),
                adaptive_config,
            ));
        }
        Ok(())
    }

    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome {
        // Generic dispatch: the same program the baseline would run, lowered
        // to a transaction flow graph and submitted to the executors.
        let workload = self
            .bound
            .get()
            .expect("DoraExecution: no workload bound")
            .clone();
        match workload
            .next_program(self.engine.db(), rng)
            .and_then(|program| {
                self.engine
                    .execute(self.with_conflicts(program).compile_dora())
            }) {
            Ok(()) => TxnOutcome::Committed,
            Err(_) => TxnOutcome::Aborted,
        }
    }

    fn execute_one_timed(&self, rng: &mut SmallRng, stats: &WorkloadStats) -> TxnOutcome {
        let workload = self
            .bound
            .get()
            .expect("DoraExecution: no workload bound")
            .clone();
        let Ok(program) = workload.next_program(self.engine.db(), rng) else {
            return TxnOutcome::Aborted;
        };
        let label = program.name();
        let start = Instant::now();
        let outcome = match self
            .engine
            .execute(self.with_conflicts(program).compile_dora())
        {
            Ok(()) => TxnOutcome::Committed,
            Err(_) => TxnOutcome::Aborted,
        };
        stats.record_timed(label, outcome, start.elapsed());
        outcome
    }

    fn prepare(&self, program: TxnProgram) -> DbResult<PreparedProgram> {
        // Stamp conflict-analysis results *before* preparing: the prepared
        // handle shares its steps behind an `Arc`, so this is the last point
        // the program is mutable.
        Ok(self.with_conflicts(program).prepare())
    }

    fn conflict_report(&self) -> Option<String> {
        let matrix = self.conflicts.get()?;
        let db = self.engine.db();
        Some(matrix.report(&|table| {
            db.catalog()
                .table(table)
                .map(|meta| meta.schema.name.clone())
                .unwrap_or_else(|_| table.to_string())
        }))
    }

    fn execute_prepared_checked(&self, prepared: &PreparedProgram) -> DbResult<TxnOutcome> {
        // The prepared handle re-materializes only the per-instance action
        // shells; the step bodies are shared behind the handle's `Arc`.
        self.engine
            .execute(prepared.flow_graph())
            .map(|()| TxnOutcome::Committed)
    }

    fn shutdown(&self) {
        // Stop the controller first: it may be mid-resize, which needs live
        // executors to drain.
        if let Some(controller) = self.adaptive.lock().take() {
            controller.stop();
        }
        self.engine.shutdown();
    }
}

/// The engine registry: constructs the requested architecture over `db`.
/// This `match` is the *only* place in the workspace that branches on the
/// engine kind — everything downstream holds an `Arc<dyn ExecutionEngine>`.
pub fn build_engine_with(
    kind: EngineKind,
    db: Arc<Database>,
    dora_config: DoraConfig,
) -> Arc<dyn ExecutionEngine> {
    match kind {
        EngineKind::Baseline => Arc::new(BaselineEngine::new(db)),
        EngineKind::Dora => Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
            db,
            dora_config,
        )))),
    }
}

/// [`build_engine_with`] using the default DORA configuration.
pub fn build_engine(kind: EngineKind, db: Arc<Database>) -> Arc<dyn ExecutionEngine> {
    build_engine_with(kind, db, DoraConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_workloads::TpcB;
    use rand::SeedableRng;

    fn bound_engine(kind: EngineKind) -> Arc<dyn ExecutionEngine> {
        let db = Database::for_tests();
        let workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
        workload.setup(&db).unwrap();
        let engine = build_engine_with(kind, db, DoraConfig::for_tests());
        engine.bind(workload, 2).unwrap();
        engine
    }

    #[test]
    fn every_registered_engine_executes_transactions() {
        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.name(), kind.label());
            let mut rng = SmallRng::seed_from_u64(3);
            let mut committed = 0;
            for _ in 0..20 {
                if engine.execute_one(&mut rng) == TxnOutcome::Committed {
                    committed += 1;
                }
            }
            assert!(committed > 0, "{} committed nothing", engine.name());
            engine.shutdown();
        }
    }

    #[test]
    fn every_registered_engine_executes_prepared_programs() {
        for kind in EngineKind::ALL {
            let db = Database::for_tests();
            let workload = TpcB::with_accounts(2, 20);
            workload.setup(&db).unwrap();
            let engine = build_engine_with(kind, Arc::clone(&db), DoraConfig::for_tests());
            // DORA needs its executors even for prepared execution.
            let arc_workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
            engine.bind(arc_workload, 2).unwrap();
            // Prepare once, execute many: the same parameterized transfer.
            let program = workload.account_update_program(&db, 1, 1, 1, 10.0).unwrap();
            let prepared = engine.prepare(program).unwrap();
            for _ in 0..5 {
                assert_eq!(
                    engine.execute_prepared(&prepared),
                    TxnOutcome::Committed,
                    "{} failed a prepared execution",
                    engine.name()
                );
            }
            // Compile-per-call wrapper stays available on the same engine.
            let once = workload
                .account_update_program(&db, 1, 2, 11, -5.0)
                .unwrap();
            assert_eq!(engine.execute_program(once), TxnOutcome::Committed);
            engine.shutdown();
        }
    }

    #[test]
    fn timed_execution_feeds_per_type_stats() {
        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            let stats = WorkloadStats::new();
            let mut rng = SmallRng::seed_from_u64(7);
            for _ in 0..10 {
                engine.execute_one_timed(&mut rng, &stats);
            }
            let row = stats.type_stats(TpcB::ACCOUNT_UPDATE);
            assert_eq!(row.total(), 10, "{}: every run tallied", engine.name());
            assert_eq!(
                row.latency.count(),
                10,
                "{}: every run timed",
                engine.name()
            );
            engine.shutdown();
        }
    }

    #[test]
    fn checked_execution_surfaces_outcomes_for_every_engine() {
        for kind in EngineKind::ALL {
            let db = Database::for_tests();
            let workload = TpcB::with_accounts(2, 20);
            workload.setup(&db).unwrap();
            let engine = build_engine_with(kind, Arc::clone(&db), DoraConfig::for_tests());
            let arc_workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
            engine.bind(arc_workload, 2).unwrap();
            let program = workload.account_update_program(&db, 1, 1, 1, 10.0).unwrap();
            let prepared = engine.prepare(program).unwrap();
            assert_eq!(
                engine.execute_prepared_checked(&prepared).unwrap(),
                TxnOutcome::Committed,
                "{}: checked prepared path",
                engine.name()
            );
            let once = workload
                .account_update_program(&db, 1, 2, 11, -5.0)
                .unwrap();
            assert_eq!(
                engine.execute_program_checked(once).unwrap(),
                TxnOutcome::Committed,
                "{}: checked compile-per-call path",
                engine.name()
            );
            engine.shutdown();
        }
    }

    #[test]
    fn rebinding_is_rejected() {
        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            let other: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
            assert!(
                engine.bind(other, 2).is_err(),
                "{} allowed a second bind",
                engine.name()
            );
            engine.shutdown();
        }
    }

    #[test]
    #[should_panic(expected = "no workload bound")]
    fn executing_unbound_engine_panics() {
        let db = Database::for_tests();
        let engine = build_engine(EngineKind::Baseline, db);
        let mut rng = SmallRng::seed_from_u64(1);
        engine.execute_one(&mut rng);
    }

    #[test]
    fn every_registered_engine_serves_snapshot_reads() {
        use dora_core::{OnMissing, TxnProgram};

        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            let table = engine.db().table_id("account").unwrap();

            let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            let program = TxnProgram::new("snapshot-read").read(
                "read-account",
                table,
                Key::int(1),
                Key::int(1),
                OnMissing::Error,
                move |_, row| {
                    sink.lock().push(row[2].clone());
                    Ok(())
                },
            );
            let prepared = program.prepare();
            assert!(prepared.is_read_only());
            assert_eq!(
                engine.execute_snapshot_checked(&prepared).unwrap(),
                TxnOutcome::Committed,
                "{}: snapshot execution",
                engine.name()
            );
            assert_eq!(seen.lock().len(), 1);

            // A program with a write step is rejected before it runs.
            let writer = TxnProgram::new("snapshot-write").update(
                "bump",
                table,
                Key::int(1),
                Key::int(1),
                OnMissing::Error,
                |_, _| Ok(()),
            );
            let prepared = writer.prepare();
            assert!(!prepared.is_read_only());
            assert!(
                engine.execute_snapshot_checked(&prepared).is_err(),
                "{}: write program must be rejected",
                engine.name()
            );
            engine.shutdown();
        }
    }
}
