//! The unified execution-engine abstraction.
//!
//! The paper compares two execution architectures — conventional
//! thread-to-transaction (the Baseline) and data-oriented thread-to-data
//! (DORA) — over the same storage manager and the same workloads.
//! [`ExecutionEngine`] is the single seam through which the load driver, the
//! benchmark harness, the equivalence tests and the examples drive either
//! one: bind a [`Workload`], then repeatedly execute transactions drawn from
//! its mix.
//!
//! Adding a third architecture (e.g. a physiologically-partitioned or
//! HTAP-style engine) requires implementing this trait and registering a
//! factory arm in [`build_engine_with`] — no workload, driver, test or
//! experiment code changes.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{AdaptiveController, DoraConfig, DoraEngine};
use dora_storage::Database;
use dora_workloads::Workload;

use crate::baseline::BaselineEngine;

/// One execution architecture bound to one workload.
///
/// Implementations hold whatever per-architecture state they need (executor
/// threads, routing tables, retry policy); callers see only:
/// *setup* — [`bind`](Self::bind) a workload once, *execute* —
/// [`execute_one`](Self::execute_one) transaction from the bound workload's
/// mix, and *teardown* — [`shutdown`](Self::shutdown).
pub trait ExecutionEngine: Send + Sync {
    /// Which registered architecture this is.
    fn kind(&self) -> EngineKind;

    /// Label matching the paper's figures ("Baseline", "DORA").
    fn name(&self) -> &'static str {
        self.kind().label()
    }

    /// The underlying storage manager.
    fn db(&self) -> &Arc<Database>;

    /// Binds `workload` to this engine: whatever per-architecture setup the
    /// workload needs (DORA binds tables to executors; the baseline has no
    /// setup). Must be called exactly once, before `execute_one`.
    fn bind(&self, workload: Arc<dyn Workload>, executors_per_table: usize) -> DbResult<()>;

    /// Runs one transaction drawn from the bound workload's mix.
    ///
    /// # Panics
    /// Panics if no workload has been bound.
    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome;

    /// Stops any engine-owned threads. Idempotent; the default is a no-op.
    fn shutdown(&self) {}
}

impl BaselineEngine {
    fn bound_workload(&self) -> &Arc<dyn Workload> {
        self.bound()
            .get()
            .expect("BaselineEngine: no workload bound")
    }
}

impl ExecutionEngine for BaselineEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Baseline
    }

    fn db(&self) -> &Arc<Database> {
        BaselineEngine::db(self)
    }

    fn bind(&self, workload: Arc<dyn Workload>, _executors_per_table: usize) -> DbResult<()> {
        // The conventional engine needs no per-workload setup: any thread may
        // touch any record, which is the whole point of the architecture.
        self.bound()
            .set(workload)
            .map_err(|_| DbError::InvalidOperation("workload already bound to this engine".into()))
    }

    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome {
        // Generic dispatch: draw the next declarative program from the bound
        // workload's mix and run its sequential (baseline) compilation on
        // the calling thread, retrying deadlock victims.
        let workload = self.bound_workload().clone();
        match workload
            .next_program(self.db(), rng)
            .and_then(|program| self.execute_program(program))
        {
            Ok(outcome) => outcome.into(),
            Err(_) => TxnOutcome::Aborted,
        }
    }
}

/// Adapter presenting [`DoraEngine`] (which lives below the workload crate
/// and therefore cannot know about workloads) as an [`ExecutionEngine`].
pub struct DoraExecution {
    engine: Arc<DoraEngine>,
    bound: OnceLock<Arc<dyn Workload>>,
    /// The adaptive repartitioning controller, spawned at bind time when
    /// `DoraConfig::adaptive.enabled` is set. Stopped before the engine in
    /// [`ExecutionEngine::shutdown`] (a resize drains executors, so the
    /// controller must never outlive them).
    adaptive: Mutex<Option<AdaptiveController>>,
}

impl DoraExecution {
    /// Wraps an already-constructed DORA engine.
    pub fn new(engine: Arc<DoraEngine>) -> Self {
        Self {
            engine,
            bound: OnceLock::new(),
            adaptive: Mutex::new(None),
        }
    }

    /// The wrapped DORA engine, for callers that need architecture-specific
    /// access (routing tables, executor loads, flow-graph submission).
    pub fn dora(&self) -> &Arc<DoraEngine> {
        &self.engine
    }

    /// Resizes the adaptive controller has driven so far (0 when adaptivity
    /// is disabled).
    pub fn adaptive_resizes(&self) -> u64 {
        self.adaptive
            .lock()
            .as_ref()
            .map(AdaptiveController::resizes)
            .unwrap_or(0)
    }
}

impl ExecutionEngine for DoraExecution {
    fn kind(&self) -> EngineKind {
        EngineKind::Dora
    }

    fn db(&self) -> &Arc<Database> {
        self.engine.db()
    }

    fn bind(&self, workload: Arc<dyn Workload>, executors_per_table: usize) -> DbResult<()> {
        workload.bind_dora(&self.engine, executors_per_table)?;
        self.bound.set(workload).map_err(|_| {
            DbError::InvalidOperation("workload already bound to this engine".into())
        })?;
        let adaptive_config = self.engine.config().adaptive.clone();
        if adaptive_config.enabled {
            *self.adaptive.lock() = Some(AdaptiveController::spawn(
                Arc::clone(&self.engine),
                adaptive_config,
            ));
        }
        Ok(())
    }

    fn execute_one(&self, rng: &mut SmallRng) -> TxnOutcome {
        // Generic dispatch: the same program the baseline would run, lowered
        // to a transaction flow graph and submitted to the executors.
        let workload = self
            .bound
            .get()
            .expect("DoraExecution: no workload bound")
            .clone();
        match workload
            .next_program(self.engine.db(), rng)
            .and_then(|program| self.engine.execute(program.compile_dora()))
        {
            Ok(()) => TxnOutcome::Committed,
            Err(_) => TxnOutcome::Aborted,
        }
    }

    fn shutdown(&self) {
        // Stop the controller first: it may be mid-resize, which needs live
        // executors to drain.
        if let Some(controller) = self.adaptive.lock().take() {
            controller.stop();
        }
        self.engine.shutdown();
    }
}

/// The engine registry: constructs the requested architecture over `db`.
/// This `match` is the *only* place in the workspace that branches on the
/// engine kind — everything downstream holds an `Arc<dyn ExecutionEngine>`.
pub fn build_engine_with(
    kind: EngineKind,
    db: Arc<Database>,
    dora_config: DoraConfig,
) -> Arc<dyn ExecutionEngine> {
    match kind {
        EngineKind::Baseline => Arc::new(BaselineEngine::new(db)),
        EngineKind::Dora => Arc::new(DoraExecution::new(Arc::new(DoraEngine::new(
            db,
            dora_config,
        )))),
    }
}

/// [`build_engine_with`] using the default DORA configuration.
pub fn build_engine(kind: EngineKind, db: Arc<Database>) -> Arc<dyn ExecutionEngine> {
    build_engine_with(kind, db, DoraConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_workloads::TpcB;
    use rand::SeedableRng;

    fn bound_engine(kind: EngineKind) -> Arc<dyn ExecutionEngine> {
        let db = Database::for_tests();
        let workload: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
        workload.setup(&db).unwrap();
        let engine = build_engine_with(kind, db, DoraConfig::for_tests());
        engine.bind(workload, 2).unwrap();
        engine
    }

    #[test]
    fn every_registered_engine_executes_transactions() {
        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.name(), kind.label());
            let mut rng = SmallRng::seed_from_u64(3);
            let mut committed = 0;
            for _ in 0..20 {
                if engine.execute_one(&mut rng) == TxnOutcome::Committed {
                    committed += 1;
                }
            }
            assert!(committed > 0, "{} committed nothing", engine.name());
            engine.shutdown();
        }
    }

    #[test]
    fn rebinding_is_rejected() {
        for kind in EngineKind::ALL {
            let engine = bound_engine(kind);
            let other: Arc<dyn Workload> = Arc::new(TpcB::with_accounts(2, 20));
            assert!(
                engine.bind(other, 2).is_err(),
                "{} allowed a second bind",
                engine.name()
            );
            engine.shutdown();
        }
    }

    #[test]
    #[should_panic(expected = "no workload bound")]
    fn executing_unbound_engine_panics() {
        let db = Database::for_tests();
        let engine = build_engine(EngineKind::Baseline, db);
        let mut rng = SmallRng::seed_from_u64(1);
        engine.execute_one(&mut rng);
    }
}
