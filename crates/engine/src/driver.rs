//! Closed-loop load driver.
//!
//! The paper's experiments spawn a number of clients that repeatedly submit
//! transactions; the x-axis of most figures is the *offered CPU load*
//! (measured utilization plus time spent runnable), swept by varying the
//! number of clients. [`ClientDriver`] reproduces that methodology for both
//! engines: the job closure it runs may call the baseline engine or submit
//! DORA flow graphs — the driver neither knows nor cares.
//!
//! Besides throughput and latency it captures the delta of every metric the
//! figures need: the time-breakdown categories (Figures 1–3), the lock counts
//! per class (Figure 5) and the process CPU time, from which the measured CPU
//! utilization is derived.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use dora_metrics::{global, CounterKind, LatencyHistogram, Snapshot, TimeBreakdown, TimeCategory};

use crate::exec::ExecutionEngine;

pub use dora_common::outcome::TxnOutcome;

/// Driver parameters.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of client threads submitting transactions.
    pub clients: usize,
    /// Measured interval length.
    pub duration: Duration,
    /// Warm-up interval excluded from the measurements.
    pub warmup: Duration,
    /// Number of hardware contexts the offered load is normalized against.
    pub hardware_contexts: usize,
}

impl DriverConfig {
    /// A configuration suitable for quick tests.
    pub fn quick(clients: usize) -> Self {
        Self {
            clients,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            hardware_contexts: dora_common::config::num_cpus(),
        }
    }
}

/// Everything measured during one driver run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Number of client threads used.
    pub clients: usize,
    /// Length of the measured interval.
    pub elapsed: Duration,
    /// Transactions committed during the measured interval.
    pub committed: u64,
    /// Transactions aborted for workload reasons during the measured
    /// interval.
    pub aborted: u64,
    /// Transactions that exhausted their deadlock-retry budget during the
    /// measured interval (conventional engines only; kept separate from
    /// `aborted` so retry exhaustion is visible in reports).
    pub gave_up: u64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Client-observed latency distribution.
    pub latency: LatencyHistogram,
    /// Delta of every metric counter/timer over the measured interval.
    pub metrics: Snapshot,
    /// Time breakdown derived from `metrics`.
    pub breakdown: TimeBreakdown,
    /// Offered CPU load in percent (clients / hardware contexts).
    pub offered_load_percent: f64,
    /// Measured CPU utilization in percent (process CPU time over wall-clock
    /// time, normalized by the hardware contexts). `None` when the platform
    /// does not expose process CPU time.
    pub cpu_utilization_percent: Option<f64>,
}

impl RunResult {
    /// Locks acquired per 100 committed transactions, split the way Figure 5
    /// plots them: (row-level, higher-level, DORA thread-local).
    pub fn locks_per_100_txns(&self) -> (f64, f64, f64) {
        let txns = self.committed.max(1) as f64;
        (
            100.0 * self.metrics.counter(CounterKind::RowLevelLock) as f64 / txns,
            100.0 * self.metrics.counter(CounterKind::HigherLevelLock) as f64 / txns,
            100.0 * self.metrics.counter(CounterKind::DoraLocalLock) as f64 / txns,
        )
    }

    /// Throughput divided by measured CPU utilization — the y-axis of
    /// Figure 1(a). Falls back to offered load when utilization is
    /// unavailable.
    pub fn throughput_per_cpu_util(&self) -> f64 {
        let util = self
            .cpu_utilization_percent
            .unwrap_or(self.offered_load_percent)
            .max(1.0);
        self.throughput_tps / util
    }

    /// Mean client-visible commit wait (precommit to durable) per committed
    /// transaction, from the [`TimeCategory::CommitWait`] delta. This is the
    /// commit-latency share of the client latency, recorded separately so
    /// group-commit experiments can tell durability stalls from execution
    /// time.
    pub fn mean_commit_wait(&self) -> Duration {
        if self.committed == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.metrics.nanos(TimeCategory::CommitWait) / self.committed)
    }

    /// Mean execute latency: the client-observed mean latency minus the mean
    /// commit wait (floored at zero) — the time a transaction spends doing
    /// work and waiting on locks rather than on the log.
    ///
    /// Under asynchronous DORA commit the commit wait is spent on the
    /// flusher thread, not the client's; it is still subtracted here because
    /// the client's observed latency includes waiting for its completion
    /// signal, which fires from the flusher.
    pub fn mean_execute_latency(&self) -> Duration {
        self.latency.mean().saturating_sub(self.mean_commit_wait())
    }

    /// Abort rate over the measured interval (workload aborts plus retry
    /// give-ups, over all finished transactions).
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted + self.gave_up;
        if total == 0 {
            0.0
        } else {
            (self.aborted + self.gave_up) as f64 / total as f64
        }
    }

    /// Share of finished transactions that exhausted their retry budget.
    pub fn give_up_rate(&self) -> f64 {
        let total = self.committed + self.aborted + self.gave_up;
        if total == 0 {
            0.0
        } else {
            self.gave_up as f64 / total as f64
        }
    }
}

/// A one-way completion latch coordinating a driver run.
///
/// Client threads read the cheap atomic flag once per transaction; the
/// coordinating thread *sleeps on the condvar* for the warm-up and measured
/// intervals instead of sleep-polling in fixed slices, so it wakes the
/// moment the run completes early (e.g. every client thread exited) rather
/// than burning the rest of the interval driving nothing.
#[derive(Debug, Default)]
pub struct StopLatch {
    tripped: AtomicBool,
    state: Mutex<bool>,
    cond: Condvar,
}

impl StopLatch {
    /// Creates an untripped latch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the latch and wakes every waiter. Idempotent.
    pub fn trip(&self) {
        let mut done = self.state.lock();
        *done = true;
        self.tripped.store(true, Ordering::Release);
        self.cond.notify_all();
    }

    /// Cheap check for the client hot path.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Blocks until the latch trips or `timeout` elapses; returns `true` if
    /// the latch tripped.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut done = self.state.lock();
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cond.wait_for(&mut done, deadline - now);
        }
        true
    }
}

/// Drop guard run by every client thread: the last client to exit — whether
/// normally or by unwinding out of a panicked job — trips the latch so the
/// coordinator stops waiting on a run nobody is driving.
struct ClientExit {
    active: Arc<AtomicUsize>,
    latch: Arc<StopLatch>,
}

impl Drop for ClientExit {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.trip();
        }
    }
}

/// Reads the process's accumulated CPU time from `/proc/self/stat`
/// (user + system). Returns `None` on platforms without procfs.
pub fn process_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // The command field may contain spaces but is wrapped in parentheses;
    // split after the closing parenthesis.
    let after = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // Fields after the comm field: state is index 0, utime is index 11,
    // stime index 12 (see proc(5)).
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration we target.
    Some(Duration::from_millis((utime + stime) * 10))
}

/// The closed-loop driver.
#[derive(Debug, Clone)]
pub struct ClientDriver {
    config: DriverConfig,
}

impl ClientDriver {
    /// Creates a driver with the given configuration.
    pub fn new(config: DriverConfig) -> Self {
        Self { config }
    }

    /// The driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// Runs `job` on every client thread until the configured duration
    /// elapses. The job receives the client index and a per-client RNG and
    /// returns the outcome of one transaction.
    pub fn run<J>(&self, job: J) -> RunResult
    where
        J: Fn(usize, &mut SmallRng) -> TxnOutcome + Send + Sync + 'static,
    {
        let job = Arc::new(job);
        let recording = Arc::new(AtomicBool::new(false));
        let latch = Arc::new(StopLatch::new());
        let active = Arc::new(AtomicUsize::new(self.config.clients));
        let committed = Arc::new(AtomicU64::new(0));
        let aborted = Arc::new(AtomicU64::new(0));
        let gave_up = Arc::new(AtomicU64::new(0));
        let latencies = Arc::new(Mutex::new(LatencyHistogram::new()));

        let handles: Vec<_> = (0..self.config.clients)
            .map(|client| {
                let job = Arc::clone(&job);
                let recording = Arc::clone(&recording);
                let latch = Arc::clone(&latch);
                let active = Arc::clone(&active);
                let committed = Arc::clone(&committed);
                let aborted = Arc::clone(&aborted);
                let gave_up = Arc::clone(&gave_up);
                let latencies = Arc::clone(&latencies);
                std::thread::Builder::new()
                    .name(format!("client-{client}"))
                    .spawn(move || {
                        let _exit = ClientExit {
                            active,
                            latch: Arc::clone(&latch),
                        };
                        let mut rng = SmallRng::seed_from_u64(0x5EED_0000 + client as u64);
                        let mut local_latency = LatencyHistogram::new();
                        while !latch.is_tripped() {
                            let start = Instant::now();
                            let outcome = job(client, &mut rng);
                            if recording.load(Ordering::Relaxed) {
                                local_latency.record(start.elapsed());
                                match outcome {
                                    TxnOutcome::Committed => {
                                        committed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    TxnOutcome::Aborted => {
                                        aborted.fetch_add(1, Ordering::Relaxed);
                                    }
                                    TxnOutcome::GaveUp => {
                                        gave_up.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        latencies.lock().merge(&local_latency);
                    })
                    .expect("spawn client thread")
            })
            .collect();

        // The coordinator parks on the latch for the warm-up and measured
        // intervals; if every client exits early the wait returns
        // immediately instead of sleeping out the schedule.
        latch.wait_for(self.config.warmup);
        let metrics_before = global().snapshot();
        let cpu_before = process_cpu_time();
        let started = Instant::now();
        recording.store(true, Ordering::SeqCst);

        latch.wait_for(self.config.duration);

        recording.store(false, Ordering::SeqCst);
        let elapsed = started.elapsed();
        let metrics_after = global().snapshot();
        let cpu_after = process_cpu_time();
        latch.trip();
        for handle in handles {
            let _ = handle.join();
        }

        let metrics = metrics_after.since(&metrics_before);
        let breakdown = TimeBreakdown::from_snapshot(&metrics);
        let committed = committed.load(Ordering::Relaxed);
        let aborted = aborted.load(Ordering::Relaxed);
        let gave_up = gave_up.load(Ordering::Relaxed);
        let cpu_utilization_percent = match (cpu_before, cpu_after) {
            (Some(before), Some(after)) => {
                let busy = after.saturating_sub(before).as_secs_f64();
                let capacity = elapsed.as_secs_f64() * self.config.hardware_contexts as f64;
                Some((100.0 * busy / capacity).min(120.0))
            }
            _ => None,
        };

        let latency = latencies.lock().clone();
        RunResult {
            clients: self.config.clients,
            elapsed,
            committed,
            aborted,
            gave_up,
            throughput_tps: committed as f64 / elapsed.as_secs_f64(),
            latency,
            metrics,
            breakdown,
            offered_load_percent: 100.0 * self.config.clients as f64
                / self.config.hardware_contexts as f64,
            cpu_utilization_percent,
        }
    }

    /// Runs a closed-loop load against `engine`: every client thread draws
    /// transactions from the engine's bound workload via
    /// [`ExecutionEngine::execute_one`]. This is how every sweep-path caller
    /// drives an engine — the driver knows nothing about which execution
    /// architecture is behind the trait object.
    pub fn run_engine(&self, engine: Arc<dyn ExecutionEngine>) -> RunResult {
        self.run(move |_client, rng| engine.execute_one(rng))
    }

    /// Single-client latency measurement against `engine`, the methodology
    /// of Figure 7.
    pub fn measure_engine(
        &self,
        iterations: usize,
        engine: &dyn ExecutionEngine,
    ) -> LatencyHistogram {
        self.measure_single(iterations, |rng| engine.execute_one(rng))
    }

    /// Runs `job` exactly once on a single client and reports the observed
    /// latency — the single-transaction response-time methodology of
    /// Figure 7.
    pub fn measure_single<J>(&self, iterations: usize, mut job: J) -> LatencyHistogram
    where
        J: FnMut(&mut SmallRng) -> TxnOutcome,
    {
        let mut rng = SmallRng::seed_from_u64(0xFEED);
        let mut histogram = LatencyHistogram::new();
        for _ in 0..iterations {
            let start = Instant::now();
            let _ = job(&mut rng);
            histogram.record(start.elapsed());
        }
        histogram
    }
}

/// Convenience: the share of the measured interval that client threads spent
/// blocked rather than running, derived from the metric categories that
/// correspond to sleeping (logical lock waits, DORA local waits, commit
/// waits). `CommitWait` — not `LogWait` — is the client-side stall: in
/// synchronous mode it *contains* the device time, and under group commit
/// the device time moves to the flusher daemon while clients park.
pub fn blocked_fraction(metrics: &Snapshot, clients: usize, elapsed: Duration) -> f64 {
    let blocked = metrics.nanos(TimeCategory::LockWait)
        + metrics.nanos(TimeCategory::DoraLocalWait)
        + metrics.nanos(TimeCategory::CommitWait);
    let capacity = elapsed.as_nanos() as f64 * clients.max(1) as f64;
    (blocked as f64 / capacity).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_counts_outcomes_and_reports_throughput() {
        let driver = ClientDriver::new(DriverConfig {
            clients: 2,
            duration: Duration::from_millis(100),
            warmup: Duration::from_millis(10),
            hardware_contexts: 4,
        });
        let result = driver.run(|_client, rng| {
            use rand::Rng;
            // Simulate a fast transaction that aborts 25% of the time and
            // exhausts its retry budget another 12.5%.
            std::thread::sleep(Duration::from_micros(100));
            match rng.random_range(0..8) {
                0..=1 => TxnOutcome::Aborted,
                2 => TxnOutcome::GaveUp,
                _ => TxnOutcome::Committed,
            }
        });
        assert!(result.committed > 0);
        assert!(result.gave_up > 0, "give-ups must be counted distinctly");
        assert!(result.throughput_tps > 0.0);
        assert!(result.abort_rate() > 0.0 && result.abort_rate() < 1.0);
        assert!(result.give_up_rate() > 0.0 && result.give_up_rate() < result.abort_rate());
        assert_eq!(result.clients, 2);
        assert!((result.offered_load_percent - 50.0).abs() < 1e-9);
        assert!(result.latency.count() == result.committed + result.aborted + result.gave_up);
    }

    #[test]
    fn dead_clients_wake_the_coordinator_early() {
        // Every client panics immediately; the latch must wake the
        // coordinator instead of letting it sleep out warmup + duration.
        let driver = ClientDriver::new(DriverConfig {
            clients: 2,
            duration: Duration::from_secs(30),
            warmup: Duration::from_secs(30),
            hardware_contexts: 4,
        });
        let wall = Instant::now();
        let result = driver.run(|_, _| panic!("client dies"));
        assert!(
            wall.elapsed() < Duration::from_secs(10),
            "coordinator must not sleep out the full schedule"
        );
        assert_eq!(result.committed, 0);
    }

    #[test]
    fn stop_latch_trips_waiters_and_is_idempotent() {
        let latch = Arc::new(StopLatch::new());
        assert!(!latch.is_tripped());
        assert!(!latch.wait_for(Duration::from_millis(5)), "timeout path");
        let latch2 = Arc::clone(&latch);
        let waiter = std::thread::spawn(move || latch2.wait_for(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(10));
        latch.trip();
        latch.trip();
        assert!(waiter.join().unwrap(), "waiter must observe the trip");
        assert!(latch.is_tripped());
        assert!(latch.wait_for(Duration::from_millis(1)));
    }

    #[test]
    fn process_cpu_time_is_monotonic_on_linux() {
        if let Some(before) = process_cpu_time() {
            // Burn a little CPU.
            let mut x = 0u64;
            for i in 0..5_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            let after = process_cpu_time().expect("still available");
            assert!(after >= before);
        }
    }

    #[test]
    fn commit_wait_is_reported_separately_from_execute_latency() {
        let driver = ClientDriver::new(DriverConfig {
            clients: 1,
            duration: Duration::from_millis(80),
            warmup: Duration::from_millis(10),
            hardware_contexts: 2,
        });
        let result = driver.run(|_, _| {
            // Simulate a transaction whose commit stalls 200us on the log.
            std::thread::sleep(Duration::from_micros(300));
            dora_metrics::record_time(TimeCategory::CommitWait, Duration::from_micros(200));
            TxnOutcome::Committed
        });
        assert!(result.committed > 0);
        // Other tests in this process may add CommitWait time concurrently,
        // so only the lower bound is exact.
        assert!(result.mean_commit_wait() >= Duration::from_micros(150));
        assert!(result.mean_execute_latency() <= result.latency.mean());
    }

    #[test]
    fn measure_single_records_every_iteration() {
        let driver = ClientDriver::new(DriverConfig::quick(1));
        let histogram = driver.measure_single(10, |_| TxnOutcome::Committed);
        assert_eq!(histogram.count(), 10);
    }

    #[test]
    fn locks_per_100_txns_normalizes_by_commits() {
        let driver = ClientDriver::new(DriverConfig {
            clients: 1,
            duration: Duration::from_millis(50),
            warmup: Duration::from_millis(5),
            hardware_contexts: 2,
        });
        let result = driver.run(|_, _| {
            dora_metrics::incr(CounterKind::RowLevelLock);
            dora_metrics::incr(CounterKind::RowLevelLock);
            TxnOutcome::Committed
        });
        let (row, _higher, _local) = result.locks_per_100_txns();
        // Roughly two row locks per transaction => ~200 per 100 transactions.
        // Other tests running concurrently may inflate the numerator, so only
        // check the lower bound.
        assert!(row >= 150.0, "row locks per 100 txns was {row}");
    }
}
