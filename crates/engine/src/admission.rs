//! Perfect admission control.
//!
//! Figure 8 of the paper compares the *maximum* throughput each system can
//! reach if a perfect admission-control mechanism limits the number of
//! outstanding transactions — i.e. the best point of the load sweep, even if
//! it leaves the machine underutilized. This module implements that sweep.

use crate::driver::RunResult;

/// The best operating point found by an admission-control sweep.
#[derive(Debug, Clone)]
pub struct PeakResult {
    /// Client count that achieved the peak.
    pub best_clients: usize,
    /// Peak committed-transactions-per-second.
    pub best_tps: f64,
    /// Measured CPU utilization at the peak (percent), when available.
    pub cpu_utilization_at_peak: Option<f64>,
    /// Every point of the sweep, for reporting the full curve.
    pub sweep: Vec<RunResult>,
}

impl PeakResult {
    /// Offered CPU load at the peak, in percent.
    pub fn offered_load_at_peak(&self) -> f64 {
        self.sweep
            .iter()
            .find(|r| r.clients == self.best_clients)
            .map(|r| r.offered_load_percent)
            .unwrap_or(0.0)
    }
}

/// Sweeps the given client counts, calling `run_at` for each, and returns the
/// point with the highest throughput — what a perfectly tuned admission
/// controller would pick.
pub fn find_peak(
    client_counts: &[usize],
    mut run_at: impl FnMut(usize) -> RunResult,
) -> PeakResult {
    assert!(
        !client_counts.is_empty(),
        "sweep needs at least one client count"
    );
    let mut sweep = Vec::with_capacity(client_counts.len());
    for &clients in client_counts {
        sweep.push(run_at(clients));
    }
    let best = sweep
        .iter()
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("non-empty sweep");
    PeakResult {
        best_clients: best.clients,
        best_tps: best.throughput_tps,
        cpu_utilization_at_peak: best.cpu_utilization_percent,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_metrics::{LatencyHistogram, Snapshot, TimeBreakdown};
    use std::time::Duration;

    fn fake_result(clients: usize, tps: f64) -> RunResult {
        RunResult {
            clients,
            elapsed: Duration::from_secs(1),
            committed: tps as u64,
            aborted: 0,
            gave_up: 0,
            throughput_tps: tps,
            latency: LatencyHistogram::new(),
            metrics: Snapshot::default(),
            breakdown: TimeBreakdown::default(),
            offered_load_percent: clients as f64 * 10.0,
            cpu_utilization_percent: Some(clients as f64 * 9.0),
        }
    }

    #[test]
    fn find_peak_picks_the_maximum() {
        // Throughput rises then collapses — the classic over-saturation curve.
        let curve = [(1, 100.0), (2, 180.0), (4, 300.0), (8, 240.0), (16, 60.0)];
        let peak = find_peak(&[1, 2, 4, 8, 16], |clients| {
            let tps = curve.iter().find(|(c, _)| *c == clients).unwrap().1;
            fake_result(clients, tps)
        });
        assert_eq!(peak.best_clients, 4);
        assert_eq!(peak.best_tps, 300.0);
        assert_eq!(peak.cpu_utilization_at_peak, Some(36.0));
        assert_eq!(peak.sweep.len(), 5);
        assert!((peak.offered_load_at_peak() - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one client count")]
    fn empty_sweep_panics() {
        find_peak(&[], |clients| fake_result(clients, 0.0));
    }
}
