//! Admission control.
//!
//! Figure 8 of the paper compares the *maximum* throughput each system can
//! reach if a perfect admission-control mechanism limits the number of
//! outstanding transactions — i.e. the best point of the load sweep, even if
//! it leaves the machine underutilized. This module implements that sweep
//! ([`find_peak`]) plus the runtime half of the mechanism: a bounded
//! [`AdmissionController`] that decides, per arriving transaction, whether
//! to run it now, queue it, or shed it once the queue is also full.

use parking_lot::Mutex;

use crate::driver::RunResult;

/// What the controller decided for one arriving transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Run now: an execution slot was free and is now taken.
    Admit,
    /// All execution slots busy; the arrival holds a queue slot and should
    /// wait to be promoted when a running transaction finishes.
    Queue,
    /// Execution slots *and* queue slots exhausted — the arrival is rejected
    /// outright (the overload response that keeps the saturated system at
    /// its peak instead of past it).
    Shed,
}

#[derive(Debug, Default)]
struct AdmissionState {
    active: usize,
    queued: usize,
}

/// A bounded admission controller: at most `max_active` transactions run
/// concurrently, at most `max_queued` wait behind them, and everything else
/// is shed. [`finish`](Self::finish) frees a slot and promotes the
/// longest-waiting queued transaction, if any.
#[derive(Debug)]
pub struct AdmissionController {
    max_active: usize,
    max_queued: usize,
    state: Mutex<AdmissionState>,
}

impl AdmissionController {
    /// Creates a controller with `max_active` execution slots and
    /// `max_queued` waiting slots. `max_active` is clamped to at least one
    /// (a controller that can run nothing would shed every arrival).
    pub fn new(max_active: usize, max_queued: usize) -> Self {
        Self {
            max_active: max_active.max(1),
            max_queued,
            state: Mutex::new(AdmissionState::default()),
        }
    }

    /// Decides what to do with one arriving transaction.
    pub fn admit(&self) -> AdmissionDecision {
        let mut state = self.state.lock();
        if state.active < self.max_active {
            state.active += 1;
            AdmissionDecision::Admit
        } else if state.queued < self.max_queued {
            state.queued += 1;
            AdmissionDecision::Queue
        } else {
            AdmissionDecision::Shed
        }
    }

    /// Reports one admitted transaction finished. If any transaction is
    /// queued it is promoted into the freed slot; returns `true` exactly
    /// when that happened (the caller should wake one waiter).
    pub fn finish(&self) -> bool {
        let mut state = self.state.lock();
        debug_assert!(state.active > 0, "finish without a matching admit");
        if state.queued > 0 {
            state.queued -= 1;
            true
        } else {
            state.active = state.active.saturating_sub(1);
            false
        }
    }

    /// Gives back one queue slot without ever running — a queued arrival
    /// that stopped waiting (e.g. its session is draining and no execution
    /// slot was promoted to it). Returns `true` if a slot was actually
    /// released; callers count the cancelled arrival as shed so admission
    /// accounting stays exact.
    pub fn cancel_queued(&self) -> bool {
        let mut state = self.state.lock();
        if state.queued > 0 {
            state.queued -= 1;
            true
        } else {
            false
        }
    }

    /// Transactions currently holding execution slots.
    pub fn active(&self) -> usize {
        self.state.lock().active
    }

    /// Transactions currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.state.lock().queued
    }
}

/// The best operating point found by an admission-control sweep.
#[derive(Debug, Clone)]
pub struct PeakResult {
    /// Client count that achieved the peak.
    pub best_clients: usize,
    /// Peak committed-transactions-per-second.
    pub best_tps: f64,
    /// Measured CPU utilization at the peak (percent), when available.
    pub cpu_utilization_at_peak: Option<f64>,
    /// Every point of the sweep, for reporting the full curve.
    pub sweep: Vec<RunResult>,
}

impl PeakResult {
    /// Offered CPU load at the peak, in percent.
    pub fn offered_load_at_peak(&self) -> f64 {
        self.sweep
            .iter()
            .find(|r| r.clients == self.best_clients)
            .map(|r| r.offered_load_percent)
            .unwrap_or(0.0)
    }
}

/// Sweeps the given client counts, calling `run_at` for each, and returns the
/// point with the highest throughput — what a perfectly tuned admission
/// controller would pick.
pub fn find_peak(
    client_counts: &[usize],
    mut run_at: impl FnMut(usize) -> RunResult,
) -> PeakResult {
    assert!(
        !client_counts.is_empty(),
        "sweep needs at least one client count"
    );
    let mut sweep = Vec::with_capacity(client_counts.len());
    for &clients in client_counts {
        sweep.push(run_at(clients));
    }
    let best = sweep
        .iter()
        .max_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps))
        .expect("non-empty sweep");
    PeakResult {
        best_clients: best.clients,
        best_tps: best.throughput_tps,
        cpu_utilization_at_peak: best.cpu_utilization_percent,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dora_metrics::{LatencyHistogram, Snapshot, TimeBreakdown};
    use std::time::Duration;

    fn fake_result(clients: usize, tps: f64) -> RunResult {
        RunResult {
            clients,
            elapsed: Duration::from_secs(1),
            committed: tps as u64,
            aborted: 0,
            gave_up: 0,
            throughput_tps: tps,
            latency: LatencyHistogram::new(),
            metrics: Snapshot::default(),
            breakdown: TimeBreakdown::default(),
            offered_load_percent: clients as f64 * 10.0,
            cpu_utilization_percent: Some(clients as f64 * 9.0),
        }
    }

    #[test]
    fn find_peak_picks_the_maximum() {
        // Throughput rises then collapses — the classic over-saturation curve.
        let curve = [(1, 100.0), (2, 180.0), (4, 300.0), (8, 240.0), (16, 60.0)];
        let peak = find_peak(&[1, 2, 4, 8, 16], |clients| {
            let tps = curve.iter().find(|(c, _)| *c == clients).unwrap().1;
            fake_result(clients, tps)
        });
        assert_eq!(peak.best_clients, 4);
        assert_eq!(peak.best_tps, 300.0);
        assert_eq!(peak.cpu_utilization_at_peak, Some(36.0));
        assert_eq!(peak.sweep.len(), 5);
        assert!((peak.offered_load_at_peak() - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one client count")]
    fn empty_sweep_panics() {
        find_peak(&[], |clients| fake_result(clients, 0.0));
    }

    #[test]
    fn admits_until_slots_fill_then_queues_then_sheds() {
        let controller = AdmissionController::new(2, 3);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.active(), 2);
        // Saturated: the next three arrivals hold queue slots.
        for expected_depth in 1..=3 {
            assert_eq!(controller.admit(), AdmissionDecision::Queue);
            assert_eq!(controller.queued(), expected_depth);
        }
        // Queue full too: everything further is shed, repeatedly.
        assert_eq!(controller.admit(), AdmissionDecision::Shed);
        assert_eq!(controller.admit(), AdmissionDecision::Shed);
        assert_eq!(controller.active(), 2);
        assert_eq!(controller.queued(), 3);
    }

    #[test]
    fn finish_promotes_queued_work_before_freeing_slots() {
        let controller = AdmissionController::new(1, 2);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.admit(), AdmissionDecision::Queue);
        assert_eq!(controller.admit(), AdmissionDecision::Queue);
        // Finishing while work waits promotes instead of freeing the slot.
        assert!(controller.finish(), "must promote the queued transaction");
        assert_eq!(controller.active(), 1);
        assert_eq!(controller.queued(), 1);
        // New arrivals still queue (the freed capacity went to the promoted
        // waiter, not to late arrivals — FIFO fairness at saturation).
        assert_eq!(controller.admit(), AdmissionDecision::Queue);
        assert!(controller.finish());
        assert!(controller.finish());
        // Queue drained: the next finish genuinely frees the slot.
        assert!(!controller.finish());
        assert_eq!(controller.active(), 0);
        assert_eq!(controller.queued(), 0);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
    }

    #[test]
    fn zero_queue_sheds_immediately_at_saturation() {
        let controller = AdmissionController::new(1, 0);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.admit(), AdmissionDecision::Shed);
        assert!(!controller.finish());
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
    }

    #[test]
    fn cancel_queued_releases_exactly_the_held_slot() {
        let controller = AdmissionController::new(1, 1);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.admit(), AdmissionDecision::Queue);
        assert_eq!(controller.admit(), AdmissionDecision::Shed);
        // The queued arrival gives up: its slot opens for a later arrival.
        assert!(controller.cancel_queued());
        assert_eq!(controller.queued(), 0);
        assert!(!controller.cancel_queued(), "queue already empty");
        assert_eq!(controller.admit(), AdmissionDecision::Queue);
        // With the queue drained by cancellation, finish frees the slot
        // instead of promoting a ghost.
        assert!(controller.finish(), "promotes the re-queued arrival");
        assert!(!controller.finish());
        assert_eq!(controller.active(), 0);
    }

    #[test]
    fn max_active_is_clamped_to_one() {
        let controller = AdmissionController::new(0, 0);
        assert_eq!(controller.admit(), AdmissionDecision::Admit);
        assert_eq!(controller.admit(), AdmissionDecision::Shed);
    }

    #[test]
    fn concurrent_admissions_never_exceed_the_limits() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let controller = Arc::new(AdmissionController::new(4, 4));
        let shed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let controller = Arc::clone(&controller);
                let shed = Arc::clone(&shed);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        match controller.admit() {
                            AdmissionDecision::Admit | AdmissionDecision::Queue => {
                                assert!(controller.active() <= 4);
                                assert!(controller.queued() <= 4);
                                controller.finish();
                            }
                            AdmissionDecision::Shed => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(controller.queued(), 0);
        assert_eq!(controller.active(), 0);
    }
}
