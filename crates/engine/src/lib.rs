//! The conventional, thread-to-transaction execution engine (the paper's
//! "Baseline"), the unified [`ExecutionEngine`] abstraction over every
//! execution architecture, and the load-generation machinery shared by every
//! experiment.
//!
//! * [`exec`] — the [`ExecutionEngine`] trait and the engine registry:
//!   bind a workload, execute transactions from its mix, shut down. The
//!   baseline implements it directly; [`exec::DoraExecution`] adapts the
//!   DORA engine from `dora-core`.
//! * [`baseline`] — executes whole transactions on the calling thread with
//!   full centralized concurrency control, retrying deadlock victims, exactly
//!   like a worker thread of Shore-MT would.
//! * [`driver`] — a closed-loop multi-client load driver that runs any
//!   [`ExecutionEngine`] (or raw job closure) for a fixed duration on a
//!   configurable number of client threads and reports throughput, latency,
//!   the time-breakdown categories of Figures 1–3 and the lock counts of
//!   Figure 5.
//! * [`admission`] — the "perfect admission control" sweep used by the
//!   peak-throughput comparison of Figure 8.

pub mod admission;
pub mod baseline;
pub mod driver;
pub mod exec;

pub use admission::{find_peak, AdmissionController, AdmissionDecision, PeakResult};
pub use baseline::{BaselineEngine, BaselineOutcome};
pub use driver::{ClientDriver, DriverConfig, RunResult, StopLatch, TxnOutcome};
pub use exec::{build_engine, build_engine_with, DoraExecution, ExecutionEngine};
