//! The OLTP workloads the paper evaluates with: Nokia's TM1 (Network
//! Database Benchmark), transactions from TPC-C, and TPC-B.
//!
//! Each workload provides, like the paper's partially hard-coded transactions
//! (Section 4.3):
//!
//! * the schema and a scaled data loader;
//! * a **baseline body** for every transaction — ordinary code running under
//!   the conventional engine with full centralized concurrency control;
//! * a **DORA transaction flow graph** for every transaction — the same logic
//!   decomposed into actions with routing-field identifiers and rendezvous
//!   points.
//!
//! All workloads route on the leading primary-key column (subscriber id,
//! warehouse id, branch id, counter id), the choice the paper recommends.
//!
//! Beyond the paper's three benchmarks, [`skewed`] adds a zipfian
//! counter workload (backed by the [`zipf`] generators) whose hot range can
//! drift over time — the adversarial distribution the adaptive
//! repartitioning subsystem is exercised with — and [`fanout`] adds a
//! high-fan-out counter workload whose every transaction sprays actions
//! across the whole executor set, the stress test for the batched message
//! path measured by the `dispatch` benchmark.

pub mod fanout;
pub mod skewed;
pub mod spec;
pub mod tm1;
pub mod tpcb;
pub mod tpcc;
pub mod zipf;

pub use fanout::FanoutCounters;
pub use skewed::SkewedCounters;
pub use spec::{ConventionalExecutor, Workload, WorkloadStats};
pub use tm1::{Tm1, Tm1Mix};
pub use tpcb::TpcB;
pub use tpcc::{Tpcc, TpccMix};
pub use zipf::{DriftingHotSpot, Zipfian};
