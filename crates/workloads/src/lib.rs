//! The OLTP workloads the paper evaluates with: Nokia's TM1 (Network
//! Database Benchmark), transactions from TPC-C, and TPC-B.
//!
//! Each workload provides the schema, a scaled data loader and a transaction
//! mix in which every transaction is defined **exactly once** as a
//! declarative `dora_core::TxnProgram` — an ordered list of typed steps with
//! explicit rendezvous points. The execution engines compile that single
//! definition for their architecture: `compile_baseline` produces the
//! sequential body a conventional engine runs under full centralized
//! concurrency control, `compile_dora` produces the transaction flow graph
//! of Section 4.1.2 (actions with routing-field identifiers, phases split at
//! the RVPs).
//!
//! All workloads route on the leading primary-key column (subscriber id,
//! warehouse id, branch id, counter id), the choice the paper recommends.
//!
//! Beyond the paper's three benchmarks, [`skewed`] adds a zipfian
//! counter workload (backed by the [`zipf`] generators) whose hot range can
//! drift over time — the adversarial distribution the adaptive
//! repartitioning subsystem is exercised with — and [`fanout`] adds a
//! high-fan-out counter workload whose every transaction sprays actions
//! across the whole executor set, the stress test for the batched message
//! path measured by the `dispatch` benchmark.

pub mod analytics;
pub mod fanout;
pub mod skewed;
pub mod spec;
pub mod tm1;
pub mod tpcb;
pub mod tpcc;
pub mod zipf;

pub use analytics::{AnalyticalScan, ScanSink, ScanSummary};
pub use fanout::FanoutCounters;
pub use skewed::SkewedCounters;
pub use spec::{OutcomeCounts, TxnTypeStats, Workload, WorkloadStats};
pub use tm1::{Tm1, Tm1Mix};
pub use tpcb::TpcB;
pub use tpcc::{Tpcc, TpccMix};
pub use zipf::{DriftingHotSpot, Zipfian};
