//! A high-fan-out counter workload for exercising the executor message path.
//!
//! One table of integer counters, one transaction type: bump `fanout`
//! *distinct* counters spread evenly across the key domain in a single
//! phase. Routed on the counter id, the phase fans out across many (often
//! all) of the table's executors at once, which makes this the sharpest
//! probe the harness has for dispatch cost: per transaction it generates
//! `fanout` action messages, `fanout` RVP reports and up to `executors`
//! commit notifications — exactly the "additional inter-core communication"
//! the paper's appendix identifies as DORA's overhead. The `dispatch`
//! benchmark drives it with message batching off and on and compares
//! throughput and lock acquisitions per action.

use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::Rng;

use dora_common::prelude::*;
use dora_core::{DoraEngine, OnMissing, Step, TxnProgram};
use dora_storage::{ColumnDef, Database, TableSchema};

use crate::spec::Workload;

/// The fan-out counters workload.
#[derive(Debug)]
pub struct FanoutCounters {
    keys: i64,
    fanout: usize,
    table: OnceLock<TableId>,
}

impl FanoutCounters {
    /// Transaction label used in reports.
    pub const BUMP: &'static str = "fanout-bump";

    /// Creates the workload over keys `1..=keys`, each transaction touching
    /// `fanout` distinct counters (`fanout` is clamped to the key count).
    pub fn new(keys: i64, fanout: usize) -> Self {
        let keys = keys.max(1);
        Self {
            keys,
            fanout: fanout.clamp(1, keys as usize),
            table: OnceLock::new(),
        }
    }

    /// Number of counter rows.
    pub fn keys(&self) -> i64 {
        self.keys
    }

    /// Counters bumped per transaction.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    fn table(&self, db: &Database) -> DbResult<TableId> {
        if let Some(table) = self.table.get() {
            return Ok(*table);
        }
        let table = db.table_id("fanout_counters")?;
        let _ = self.table.set(table);
        Ok(table)
    }

    /// The `fanout` distinct keys one transaction touches: a random anchor
    /// plus equal strides around the domain, so consecutive keys of one
    /// transaction land on *different* executors under a range rule. Returned
    /// sorted ascending (a deterministic global order keeps the baseline's
    /// centralized lock acquisition deadlock-free).
    pub fn pick_keys(&self, rng: &mut SmallRng) -> Vec<i64> {
        let anchor = rng.random_range(0..self.keys as u64) as i64;
        let stride = self.keys / self.fanout as i64;
        let mut keys: Vec<i64> = (0..self.fanout as i64)
            .map(|i| 1 + (anchor + i * stride).rem_euclid(self.keys))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The bump transaction, defined once: one exclusive update per key, all
    /// in a single phase. Under DORA each update routes to its counter's
    /// executor (the fan-out); under the baseline they run sequentially in
    /// the keys' sorted order.
    pub fn bump_program(&self, db: &Database, keys: &[i64]) -> DbResult<TxnProgram> {
        let table = self.table(db)?;
        let mut program = TxnProgram::new(Self::BUMP);
        for &key in keys {
            program = program.step(Step::update(
                Self::BUMP,
                table,
                Key::int(key),
                Key::int(key),
                OnMissing::Error,
                |_ctx, row| {
                    let n = row[1].as_int()?;
                    row[1] = Value::Int(n + 1);
                    Ok(())
                },
            ));
        }
        Ok(program)
    }
}

impl Workload for FanoutCounters {
    fn name(&self) -> &'static str {
        "Fanout-Counters"
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "fanout_counters",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("n", ValueType::Int),
            ],
            vec![0],
        ))?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let table = self.table(db)?;
        for id in 1..=self.keys {
            db.load_row(table, vec![Value::Int(id), Value::Int(0)])?;
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let table = self.table(engine.db())?;
        engine.bind_table(table, executors_per_table, 1, self.keys)
    }

    fn txn_labels(&self) -> &'static [&'static str] {
        &[Self::BUMP]
    }

    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram> {
        let keys = self.pick_keys(rng);
        self.bump_program(db, &keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_baseline_mix, run_dora_mix};
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small() -> (Arc<Database>, FanoutCounters) {
        let db = Database::for_tests();
        let workload = FanoutCounters::new(64, 4);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    fn total(db: &Database, workload: &FanoutCounters) -> i64 {
        let table = workload.table(db).unwrap();
        let txn = db.begin();
        let mut sum = 0i64;
        db.scan_table(&txn, table, CcMode::Full, |_, row| {
            sum += row[1].as_int().unwrap();
        })
        .unwrap();
        db.commit(&txn).unwrap();
        sum
    }

    #[test]
    fn picked_keys_are_distinct_in_range_and_spread() {
        let workload = FanoutCounters::new(64, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..200 {
            let keys = workload.pick_keys(&mut rng);
            assert_eq!(keys.len(), 4, "strided keys must be distinct");
            assert!(keys.iter().all(|&k| (1..=64).contains(&k)));
            // Equal strides: consecutive picks are a full quarter-domain
            // apart, so an even 4-range rule maps them to 4 executors.
            let spread = keys.windows(2).map(|w| w[1] - w[0]).min().unwrap();
            assert!(spread >= 8, "keys too clustered: {keys:?}");
        }
    }

    #[test]
    fn program_fans_out_in_a_single_phase() {
        let (db, workload) = small();
        let program = workload.bump_program(&db, &[1, 17, 33, 49]).unwrap();
        assert_eq!(program.step_count(), 4);
        assert_eq!(program.phase_count(), 1);
        let graph = program.compile_dora();
        assert_eq!(graph.phase_count(), 1);
        assert_eq!(graph.actions_in(0), 4);
    }

    #[test]
    fn baseline_applies_every_bump_exactly_once() {
        let (db, workload) = small();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(
                run_baseline_mix(&workload, &db, &mut rng),
                TxnOutcome::Committed
            );
        }
        assert_eq!(total(&db, &workload), 400);
    }

    #[test]
    fn dora_fans_actions_across_every_executor() {
        let (db, workload) = small();
        let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
        workload.bind_dora(&engine, 4).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                run_dora_mix(&workload, &engine, &mut rng),
                TxnOutcome::Committed
            );
        }
        assert_eq!(total(&db, &workload), 400);
        let table = workload.table(&db).unwrap();
        let loads = engine.executor_loads(table).unwrap();
        assert!(
            loads.iter().all(|&load| load > 0),
            "every executor must see work: {loads:?}"
        );
        engine.shutdown();
    }
}
