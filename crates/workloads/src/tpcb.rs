//! TPC-B: the classic bank-transfer benchmark.
//!
//! One transaction type: deposit/withdraw an amount from an account, updating
//! the account, its teller and its branch balances and appending a history
//! record. The paper uses TPC-B (100 branches) for the lock-manager-internal
//! time breakdown of Figure 3 and the load sweeps of Figures 5 and 6, noting
//! that its 2:1 ratio of row-level to higher-level locks makes the baseline's
//! lock-manager contention somewhat milder than TM1's.
//!
//! Scaling: one branch has 10 tellers and `accounts_per_branch` accounts. All
//! tables route on the branch id; the account id encodes its branch so the
//! Account table's routing field is still the leading primary-key column.

use std::sync::OnceLock;

use rand::rngs::SmallRng;

use dora_common::prelude::*;
use dora_core::{DoraEngine, OnDuplicate, OnMissing, TxnProgram};

use dora_storage::{ColumnDef, Database, TableSchema};

use crate::spec::{chance, uniform, Workload};

/// Tellers per branch (fixed by the TPC-B specification).
pub const TELLERS_PER_BRANCH: i64 = 10;

#[derive(Debug, Clone, Copy)]
struct TpcbTables {
    branch: TableId,
    teller: TableId,
    account: TableId,
    history: TableId,
}

/// The TPC-B workload.
#[derive(Debug)]
pub struct TpcB {
    branches: i64,
    accounts_per_branch: i64,
    /// Fraction (percent) of transactions that touch an account of a remote
    /// branch (15% in the specification, like TPC-C Payment's remote
    /// customers).
    remote_percent: u32,
    tables: OnceLock<TpcbTables>,
}

impl TpcB {
    /// Transaction label used in reports.
    pub const ACCOUNT_UPDATE: &'static str = "tpcb-account-update";

    /// Creates a TPC-B workload with the given number of branches and 1 000
    /// accounts per branch.
    pub fn new(branches: i64) -> Self {
        Self::with_accounts(branches, 1_000)
    }

    /// Creates a TPC-B workload with an explicit accounts-per-branch scale
    /// (tests use small values).
    pub fn with_accounts(branches: i64, accounts_per_branch: i64) -> Self {
        Self {
            branches: branches.max(1),
            accounts_per_branch: accounts_per_branch.max(1),
            remote_percent: 15,
            tables: OnceLock::new(),
        }
    }

    /// Number of branches.
    pub fn branches(&self) -> i64 {
        self.branches
    }

    fn tables(&self, db: &Database) -> DbResult<TpcbTables> {
        if let Some(tables) = self.tables.get() {
            return Ok(*tables);
        }
        let tables = TpcbTables {
            branch: db.table_id("branch")?,
            teller: db.table_id("teller")?,
            account: db.table_id("account")?,
            history: db.table_id("history_b")?,
        };
        let _ = self.tables.set(tables);
        Ok(tables)
    }

    fn account_id(&self, branch: i64, local_account: i64) -> i64 {
        (branch - 1) * self.accounts_per_branch + local_account
    }

    fn teller_id(branch: i64, local_teller: i64) -> i64 {
        (branch - 1) * TELLERS_PER_BRANCH + local_teller
    }

    /// Generates the inputs of one transaction: (branch of the teller,
    /// account branch, account id, teller id, amount). Public so external
    /// drivers (e.g. a serving front-end submitting parameter batches) can
    /// draw spec-conformant inputs without going through
    /// [`Workload::next_program`].
    pub fn inputs(&self, rng: &mut SmallRng) -> (i64, i64, i64, i64, f64) {
        let home_branch = uniform(rng, 1, self.branches);
        let teller = Self::teller_id(home_branch, uniform(rng, 1, TELLERS_PER_BRANCH));
        let account_branch = if self.branches > 1 && chance(rng, self.remote_percent) {
            // Remote account: uniformly among the other branches.
            let mut other = uniform(rng, 1, self.branches - 1);
            if other >= home_branch {
                other += 1;
            }
            other
        } else {
            home_branch
        };
        let account = self.account_id(account_branch, uniform(rng, 1, self.accounts_per_branch));
        let amount = uniform(rng, -99_999, 99_999) as f64 / 100.0;
        (home_branch, account_branch, account, teller, amount)
    }

    /// The account-update transaction, defined once: the three balance
    /// updates form one phase (under DORA they run in parallel, possibly on
    /// three different executors — the account may even belong to a remote
    /// branch); after the RVP, the History append runs, like Payment's in
    /// Figure 4.
    pub fn account_update_program(
        &self,
        db: &Database,
        home_branch: i64,
        account: i64,
        teller: i64,
        amount: f64,
    ) -> DbResult<TxnProgram> {
        let tables = self.tables(db)?;
        Ok(TxnProgram::new(Self::ACCOUNT_UPDATE)
            .update(
                "update-account",
                tables.account,
                Key::int(account),
                Key::int(account),
                OnMissing::Error,
                move |_ctx, row| {
                    let balance = row[2].as_float()?;
                    row[2] = Value::Float(balance + amount);
                    Ok(())
                },
            )
            .update(
                "update-teller",
                tables.teller,
                Key::int(teller),
                Key::int(teller),
                OnMissing::Error,
                move |_ctx, row| {
                    let balance = row[2].as_float()?;
                    row[2] = Value::Float(balance + amount);
                    Ok(())
                },
            )
            .update(
                "update-branch",
                tables.branch,
                Key::int(home_branch),
                Key::int(home_branch),
                OnMissing::Error,
                move |_ctx, row| {
                    let balance = row[1].as_float()?;
                    row[1] = Value::Float(balance + amount);
                    Ok(())
                },
            )
            .rvp()
            .insert(
                "insert-history",
                tables.history,
                Key::int(home_branch),
                OnDuplicate::Error,
                move |ctx| {
                    Ok(vec![
                        Value::Int(home_branch),
                        Value::Int(teller),
                        Value::Int(account),
                        Value::Float(amount),
                        Value::Int(ctx.txn.id().0 as i64),
                    ])
                },
            ))
    }
}

impl Workload for TpcB {
    fn name(&self) -> &'static str {
        "TPC-B"
    }

    fn create_schema(&self, db: &Database) -> DbResult<()> {
        db.create_table(TableSchema::new(
            "branch",
            vec![
                ColumnDef::new("b_id", ValueType::Int),
                ColumnDef::new("b_balance", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "teller",
            vec![
                ColumnDef::new("t_id", ValueType::Int),
                ColumnDef::new("t_b_id", ValueType::Int),
                ColumnDef::new("t_balance", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "account",
            vec![
                ColumnDef::new("a_id", ValueType::Int),
                ColumnDef::new("a_b_id", ValueType::Int),
                ColumnDef::new("a_balance", ValueType::Float),
            ],
            vec![0],
        ))?;
        db.create_table(TableSchema::new(
            "history_b",
            vec![
                ColumnDef::new("h_b_id", ValueType::Int),
                ColumnDef::new("h_t_id", ValueType::Int),
                ColumnDef::new("h_a_id", ValueType::Int),
                ColumnDef::new("h_amount", ValueType::Float),
                ColumnDef::new("h_tid", ValueType::Int),
            ],
            // History has no natural primary key in TPC-B; the appending
            // transaction's id makes the synthetic key unique while keeping
            // the branch id as the leading (routing) column.
            vec![0, 4],
        ))?;
        Ok(())
    }

    fn load(&self, db: &Database) -> DbResult<()> {
        let tables = self.tables(db)?;
        for branch in 1..=self.branches {
            db.load_row(tables.branch, vec![Value::Int(branch), Value::Float(0.0)])?;
            for teller in 1..=TELLERS_PER_BRANCH {
                db.load_row(
                    tables.teller,
                    vec![
                        Value::Int(Self::teller_id(branch, teller)),
                        Value::Int(branch),
                        Value::Float(0.0),
                    ],
                )?;
            }
            for account in 1..=self.accounts_per_branch {
                db.load_row(
                    tables.account,
                    vec![
                        Value::Int(self.account_id(branch, account)),
                        Value::Int(branch),
                        Value::Float(0.0),
                    ],
                )?;
            }
        }
        Ok(())
    }

    fn bind_dora(&self, engine: &DoraEngine, executors_per_table: usize) -> DbResult<()> {
        let tables = self.tables(engine.db())?;
        engine.bind_table(tables.branch, executors_per_table, 1, self.branches)?;
        engine.bind_table(
            tables.teller,
            executors_per_table,
            1,
            self.branches * TELLERS_PER_BRANCH,
        )?;
        engine.bind_table(
            tables.account,
            executors_per_table,
            1,
            self.branches * self.accounts_per_branch,
        )?;
        engine.bind_table(tables.history, executors_per_table, 1, self.branches)?;
        Ok(())
    }

    fn txn_labels(&self) -> &'static [&'static str] {
        &[Self::ACCOUNT_UPDATE]
    }

    fn next_program(&self, db: &Database, rng: &mut SmallRng) -> DbResult<TxnProgram> {
        let (home_branch, _account_branch, account, teller, amount) = self.inputs(rng);
        self.account_update_program(db, home_branch, account, teller, amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_baseline_mix, run_dora_mix};
    use dora_core::DoraConfig;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small_tpcb() -> (Arc<Database>, TpcB) {
        let db = Database::for_tests();
        let workload = TpcB::with_accounts(4, 25);
        workload.setup(&db).unwrap();
        (db, workload)
    }

    fn total_balance(db: &Database, workload: &TpcB) -> (f64, f64, f64) {
        let tables = workload.tables(db).unwrap();
        let txn = db.begin();
        let mut branches = 0.0;
        let mut tellers = 0.0;
        let mut accounts = 0.0;
        db.scan_table(&txn, tables.branch, CcMode::Full, |_, row| {
            branches += row[1].as_float().unwrap();
        })
        .unwrap();
        db.scan_table(&txn, tables.teller, CcMode::Full, |_, row| {
            tellers += row[2].as_float().unwrap();
        })
        .unwrap();
        db.scan_table(&txn, tables.account, CcMode::Full, |_, row| {
            accounts += row[2].as_float().unwrap();
        })
        .unwrap();
        db.commit(&txn).unwrap();
        (branches, tellers, accounts)
    }

    #[test]
    fn load_creates_expected_row_counts() {
        let (db, workload) = small_tpcb();
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.branch).unwrap(), 4);
        assert_eq!(db.row_count(tables.teller).unwrap(), 40);
        assert_eq!(db.row_count(tables.account).unwrap(), 100);
        assert_eq!(db.row_count(tables.history).unwrap(), 0);
    }

    #[test]
    fn program_has_the_figure4_shape() {
        let (db, workload) = small_tpcb();
        let program = workload.account_update_program(&db, 1, 1, 1, 10.0).unwrap();
        assert_eq!(program.name(), TpcB::ACCOUNT_UPDATE);
        assert_eq!(program.step_count(), 4);
        assert_eq!(program.phase_count(), 2);
        let graph = program.compile_dora();
        assert_eq!(graph.phase_count(), 2);
        assert_eq!(graph.actions_in(0), 3);
        assert_eq!(graph.actions_in(1), 1);
    }

    #[test]
    fn baseline_preserves_balance_invariant() {
        let (db, workload) = small_tpcb();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(
                run_baseline_mix(&workload, &db, &mut rng),
                TxnOutcome::Committed
            );
        }
        let (branches, tellers, accounts) = total_balance(&db, &workload);
        // Every transaction adds the same amount to one branch, one teller
        // and one account, so the three totals must agree.
        assert!((branches - tellers).abs() < 1e-6);
        assert!((branches - accounts).abs() < 1e-6);
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.history).unwrap(), 100);
    }

    #[test]
    fn dora_preserves_balance_invariant_under_concurrency() {
        let (db, workload) = small_tpcb();
        let workload = Arc::new(workload);
        let engine = Arc::new(DoraEngine::new(Arc::clone(&db), DoraConfig::for_tests()));
        workload.bind_dora(&engine, 2).unwrap();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let engine = Arc::clone(&engine);
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(100 + t);
                    for _ in 0..50 {
                        assert_eq!(
                            run_dora_mix(workload.as_ref(), &engine, &mut rng),
                            TxnOutcome::Committed
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let (branches, tellers, accounts) = total_balance(&db, &workload);
        assert!(
            (branches - tellers).abs() < 1e-6,
            "branch={branches} teller={tellers}"
        );
        assert!(
            (branches - accounts).abs() < 1e-6,
            "branch={branches} accounts={accounts}"
        );
        let tables = workload.tables(&db).unwrap();
        assert_eq!(db.row_count(tables.history).unwrap(), 200);
        engine.shutdown();
    }

    #[test]
    fn remote_accounts_route_to_other_branches() {
        let workload = TpcB::new(10);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut remote = 0;
        let total = 2_000;
        for _ in 0..total {
            let (home, account_branch, _, _, _) = workload.inputs(&mut rng);
            if home != account_branch {
                remote += 1;
            }
        }
        let rate = remote as f64 / total as f64;
        assert!(
            rate > 0.10 && rate < 0.20,
            "remote rate {rate} should be near 15%"
        );
    }
}
