//! Analytical (HTAP) scan transactions that run concurrently with OLTP.
//!
//! The paper's closing discussion positions DORA's partitioned execution as
//! a substrate for hybrid workloads; this module provides the analytical
//! half. Each scan is an ordinary read-only [`TxnProgram`] — a single
//! secondary (unrouted) step that sweeps a whole table — so it can be
//! executed three ways from the same definition:
//!
//! * on the **baseline** engine, where it takes a table-level shared lock
//!   and blocks every concurrent writer of that table;
//! * on **DORA**, where it runs as a secondary action on the submitting
//!   thread (still under centralized shared locks);
//! * on a pinned **snapshot** (`PreparedProgram::run_snapshot`), where it
//!   reads a consistent commit-ticket horizon from the version chains with
//!   **no locks of any kind** — the HTAP path the `htap` experiment
//!   measures.
//!
//! Results land in a caller-supplied [`ScanSink`]; each scan thread owns its
//! own sink plus prepared program, so concurrent scans never contend.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dora_common::prelude::*;
use dora_core::{Step, TxnProgram};
use dora_storage::Database;

/// The result of one analytical scan execution: per-group aggregates plus
/// row accounting. Overwritten on every execution of the owning program.
#[derive(Debug, Default, Clone)]
pub struct ScanSummary {
    /// Rows visited by the scan.
    pub rows_scanned: u64,
    /// Aggregate per group: branch id → balance total for the TPC-B scan,
    /// warehouse id → below-threshold item count for the TPC-C sweep.
    pub group_totals: BTreeMap<i64, f64>,
}

impl ScanSummary {
    /// Sum of every group's aggregate (total bank balance / total low-stock
    /// count).
    pub fn grand_total(&self) -> f64 {
        self.group_totals.values().sum()
    }

    /// Number of distinct groups seen.
    pub fn groups(&self) -> usize {
        self.group_totals.len()
    }
}

/// Shared landing pad for scan results: the program writes the latest
/// execution's [`ScanSummary`] into it, the owner reads it between runs.
pub type ScanSink = Mutex<ScanSummary>;

/// Factory for the analytical scan programs.
#[derive(Debug)]
pub struct AnalyticalScan;

impl AnalyticalScan {
    /// Transaction label of the TPC-B branch-balance aggregation.
    pub const BRANCH_BALANCES: &'static str = "analytics-branch-balances";
    /// Transaction label of the TPC-C stock-level sweep.
    pub const STOCK_LEVEL_SWEEP: &'static str = "analytics-stock-level-sweep";

    /// Creates a fresh result sink.
    pub fn sink() -> Arc<ScanSink> {
        Arc::new(Mutex::new(ScanSummary::default()))
    }

    /// Per-branch balance aggregation over TPC-B's `account` table: sweep
    /// every account, group by branch id (`a_b_id`), sum balances. Under a
    /// consistent read (any engine, or a snapshot) the grand total equals
    /// the sum over the `branch` table's balances — every transfer is
    /// balance-conserving — which the property tests exploit.
    pub fn tpcb_branch_balances(db: &Database, sink: Arc<ScanSink>) -> DbResult<TxnProgram> {
        let account = db.table_id("account")?;
        Ok(TxnProgram::new(Self::BRANCH_BALANCES).step(Step::secondary(
            "scan-accounts",
            account,
            move |ctx| {
                let mut summary = ScanSummary::default();
                ctx.db.scan_table(ctx.txn, account, ctx.cc(), |_, row| {
                    summary.rows_scanned += 1;
                    if let (Ok(branch), Ok(balance)) = (row[1].as_int(), row[2].as_float()) {
                        *summary.group_totals.entry(branch).or_insert(0.0) += balance;
                    }
                })?;
                *sink.lock() = summary;
                Ok(())
            },
        )))
    }

    /// Stock-level sweep over TPC-C's `stock` table: sweep every stock row,
    /// count items with `s_quantity` below `threshold`, grouped by
    /// warehouse.
    pub fn tpcc_stock_level_sweep(
        db: &Database,
        threshold: i64,
        sink: Arc<ScanSink>,
    ) -> DbResult<TxnProgram> {
        let stock = db.table_id("stock")?;
        Ok(
            TxnProgram::new(Self::STOCK_LEVEL_SWEEP).step(Step::secondary(
                "scan-stock",
                stock,
                move |ctx| {
                    let mut summary = ScanSummary::default();
                    ctx.db.scan_table(ctx.txn, stock, ctx.cc(), |_, row| {
                        summary.rows_scanned += 1;
                        if let (Ok(warehouse), Ok(quantity)) = (row[0].as_int(), row[2].as_int()) {
                            let entry = summary.group_totals.entry(warehouse).or_insert(0.0);
                            if quantity < threshold {
                                *entry += 1.0;
                            }
                        }
                    })?;
                    *sink.lock() = summary;
                    Ok(())
                },
            )),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Workload;
    use crate::tpcb::TpcB;
    use crate::tpcc::Tpcc;

    #[test]
    fn branch_balances_are_conserved_and_read_only() {
        let db = Database::for_tests();
        let workload = TpcB::with_accounts(3, 40);
        workload.setup(&db).unwrap();

        let sink = AnalyticalScan::sink();
        let program = AnalyticalScan::tpcb_branch_balances(&db, Arc::clone(&sink)).unwrap();
        let prepared = program.prepare();
        assert!(prepared.is_read_only());

        // Snapshot execution: no engine, no locks.
        let snapshot = Arc::new(db.snapshot());
        prepared.run_snapshot(&db, &snapshot).unwrap();
        let summary = sink.lock().clone();
        assert_eq!(summary.rows_scanned, 3 * 40);
        assert_eq!(summary.groups(), 3);
        // Freshly loaded accounts all carry a zero balance.
        assert_eq!(summary.grand_total(), 0.0);
    }

    #[test]
    fn stock_level_sweep_counts_low_stock_per_warehouse() {
        let db = Database::for_tests();
        let workload = Tpcc::with_scale(2, 30, 50);
        workload.setup(&db).unwrap();

        let sink = AnalyticalScan::sink();
        // Every item's initial quantity is below any generous threshold.
        let program =
            AnalyticalScan::tpcc_stock_level_sweep(&db, 10_000, Arc::clone(&sink)).unwrap();
        let prepared = program.prepare();
        assert!(prepared.is_read_only());

        let snapshot = Arc::new(db.snapshot());
        prepared.run_snapshot(&db, &snapshot).unwrap();
        let summary = sink.lock().clone();
        assert_eq!(summary.groups(), 2, "one group per warehouse");
        assert_eq!(summary.grand_total(), summary.rows_scanned as f64);
    }
}
